//! Run all six ranking methods of the paper's evaluation on one generated
//! corpus and print their NDCG@N — a one-command miniature of Figure 4.
//!
//! ```sh
//! cargo run --release --example method_shootout
//! ```

use cubelsi::baselines::{
    cubesim::CubeSimConfig, BowRanker, CubeLsiRanker, CubeSim, CubeSimMode, FolkRank,
    FolkRankConfig, FreqRanker, LsiConfig, LsiRanker, Ranker,
};
use cubelsi::core::{CubeLsi, CubeLsiConfig};
use cubelsi::datagen::{delicious_like, generate};
use cubelsi::eval::{generate_workload, ndcg_at, WorkloadConfig};
use cubelsi::folksonomy::{clean, CleaningConfig};

fn main() {
    let preset = delicious_like(0.02, 99);
    let dataset = generate(&preset.config);
    let (cleaned, _) = clean(&dataset.folksonomy, &CleaningConfig::default());
    let dataset = dataset.rebind(cleaned);
    let f = &dataset.folksonomy;
    println!("corpus: {}", f.stats());

    let queries = generate_workload(&dataset, &WorkloadConfig::default());
    println!("workload: {} queries\n", queries.len());

    let k = dataset.truth.concept_words.len();
    let min_j = (2 * k).max(8) as f64;
    let ratio = |dim: usize| (dim as f64 / min_j).clamp(1.0, 50.0);
    let rankers: Vec<Box<dyn Ranker>> = vec![
        Box::new(CubeLsiRanker(
            CubeLsi::build(
                f,
                &CubeLsiConfig {
                    num_concepts: Some(k),
                    reduction_ratios: (
                        ratio(f.num_users()),
                        ratio(f.num_tags()),
                        ratio(f.num_resources()),
                    ),
                    ..Default::default()
                },
            )
            .expect("CubeLSI"),
        )),
        Box::new(
            CubeSim::build(
                f,
                &CubeSimConfig {
                    mode: CubeSimMode::SparseOptimized,
                    num_concepts: Some(k),
                    ..Default::default()
                },
            )
            .expect("CubeSim"),
        ),
        Box::new(FolkRank::build(f, &FolkRankConfig::default())),
        Box::new(FreqRanker::build(f)),
        Box::new(
            LsiRanker::build(
                f,
                &LsiConfig {
                    num_concepts: Some(k),
                    rank: Some((min_j as usize).min(f.num_tags()).min(f.num_resources())),
                    ..Default::default()
                },
            )
            .expect("LSI"),
        ),
        Box::new(BowRanker::build(f)),
    ];

    println!(
        "{:<10} {:>8} {:>8} {:>8}",
        "method", "NDCG@5", "NDCG@10", "NDCG@20"
    );
    for ranker in &rankers {
        let mut scores = [0.0f64; 3];
        for q in &queries {
            for (slot, n) in [5usize, 10, 20].into_iter().enumerate() {
                let ranked = ranker.search_ids(&q.tags, n);
                let grades: Vec<u8> = ranked
                    .iter()
                    .map(|h| q.relevance[h.resource.index()])
                    .collect();
                scores[slot] += ndcg_at(&grades, &q.relevance, n);
            }
        }
        let nq = queries.len() as f64;
        println!(
            "{:<10} {:>8.3} {:>8.3} {:>8.3}",
            ranker.name(),
            scores[0] / nq,
            scores[1] / nq,
            scores[2] / nq
        );
    }
}
