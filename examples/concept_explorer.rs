//! Explore the distilled concept space of a generated corpus — the
//! Table IV view: which tags cluster together, what lexical relations the
//! clusters capture (synonyms, cognates, morphological variants,
//! abbreviations), and each concept's most representative resources.
//!
//! ```sh
//! cargo run --release --example concept_explorer
//! ```

use cubelsi::core::{CubeLsi, CubeLsiConfig};
use cubelsi::datagen::{generate, lastfm_like, WordKind};
use cubelsi::folksonomy::{clean, CleaningConfig, TagId};

fn main() {
    let preset = lastfm_like(0.03, 7);
    let dataset = generate(&preset.config);
    let (cleaned, _) = clean(&dataset.folksonomy, &CleaningConfig::default());
    let dataset = dataset.rebind(cleaned);
    let f = &dataset.folksonomy;
    let truth = &dataset.truth;
    println!("corpus: {}", f.stats());

    let engine = CubeLsi::build(
        f,
        &CubeLsiConfig {
            num_concepts: Some(truth.concept_words.len()),
            reduction_ratios: (8.0, 8.0, 8.0),
            ..Default::default()
        },
    )
    .expect("CubeLSI builds");
    let model = engine.concepts();
    println!(
        "distilled {} concepts over {} tags (σ = {:.3})\n",
        model.num_concepts(),
        model.num_tags(),
        model.sigma()
    );

    for concept in 0..model.num_concepts() {
        let tags = model.tags_of(concept);
        if tags.len() < 2 {
            continue;
        }
        let names: Vec<&str> = tags
            .iter()
            .take(8)
            .map(|&t| f.tag_name(TagId::from_index(t)))
            .collect();
        // Classify intra-cluster lexical relations via the lexicon oracle.
        let mut relations: Vec<&str> = Vec::new();
        for &a in tags {
            for &b in tags {
                if a >= b {
                    continue;
                }
                let wa = truth.lexicon.word(truth.tag_words[a]);
                let wb = truth.lexicon.word(truth.tag_words[b]);
                if wa.group != wb.group {
                    continue;
                }
                let label = match (wa.kind, wb.kind) {
                    (WordKind::Cognate, _) | (_, WordKind::Cognate) => "cognates",
                    (WordKind::MorphVariant, _) | (_, WordKind::MorphVariant) => "morphology",
                    (WordKind::Abbreviation, _) | (_, WordKind::Abbreviation) => "abbreviation",
                    _ => "synonyms",
                };
                if !relations.contains(&label) {
                    relations.push(label);
                }
            }
        }
        let relation_note = if relations.is_empty() {
            String::from("latent co-usage")
        } else {
            relations.join(" + ")
        };
        println!(
            "concept {concept:>3} [{relation_note}]: {}",
            names.join(", ")
        );

        // The concept's most characteristic resources (highest tf-idf).
        let mut best: Vec<(usize, f64)> = (0..f.num_resources())
            .filter_map(|r| {
                engine
                    .index()
                    .resource_vector(r)
                    .iter()
                    .find(|&(l, _)| l as usize == concept)
                    .map(|(_, w)| (r, w))
            })
            .collect();
        best.sort_by(|a, b| b.1.total_cmp(&a.1));
        let top: Vec<String> = best
            .iter()
            .take(3)
            .map(|&(r, w)| {
                format!(
                    "{} ({w:.2})",
                    f.resource_name(cubelsi::folksonomy::ResourceId::from_index(r))
                )
            })
            .collect();
        if !top.is_empty() {
            println!("      resources: {}", top.join(", "));
        }
    }
}
