//! Quickstart: build a tiny social-tagging dataset by hand, run the full
//! CubeLSI offline pipeline, and search it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cubelsi::core::{CubeLsi, CubeLsiConfig};
use cubelsi::folksonomy::FolksonomyBuilder;

fn main() {
    // 1. Assemble a folksonomy: (user, tag, resource) assignments.
    //    Three music lovers and two photographers tag five resources.
    let mut builder = FolksonomyBuilder::new();
    for (user, tag, resource) in [
        ("alice", "audio", "song1"),
        ("alice", "mp3", "song1"),
        ("alice", "audio", "song2"),
        ("bob", "music", "song1"),
        ("bob", "music", "song2"),
        ("bob", "audio", "album1"),
        ("carol", "mp3", "song2"),
        ("carol", "music", "album1"),
        ("dave", "photo", "shot1"),
        ("dave", "camera", "shot1"),
        ("dave", "photo", "shot2"),
        ("erin", "camera", "shot2"),
        ("erin", "photo", "shot1"),
        ("erin", "exposure", "shot2"),
    ] {
        builder.add(user, tag, resource);
    }
    let folksonomy = builder.build();
    println!("dataset: {}", folksonomy.stats());

    // 2. Run the offline component: tensor → Tucker → purified distances →
    //    concept distillation → tf-idf concept index.
    let config = CubeLsiConfig {
        // Tiny corpus: keep the full core (no trimming) and ask for the
        // two obvious concepts (music vs photography).
        core_dims: Some((5, 6, 5)),
        num_concepts: Some(2),
        sigma: Some(1.0),
        max_als_iters: 20,
        ..Default::default()
    };
    let engine = CubeLsi::build(&folksonomy, &config).expect("pipeline builds");
    println!(
        "tucker fit = {:.4}, {} concepts distilled",
        engine.decomposition().fit,
        engine.concepts().num_concepts()
    );
    for summary in engine.concepts().summaries(&folksonomy) {
        println!("  {summary}");
    }

    // 3. Online search. "mp3" never annotates album1, but CubeLSI bridges
    //    the vocabulary through the shared music concept.
    for query in [vec!["mp3"], vec!["camera"], vec!["music", "photo"]] {
        let hits = engine.search(&query, 5);
        println!("query {query:?}:");
        for hit in hits {
            println!(
                "  {}  (score {:.3})",
                folksonomy.resource_name(hit.resource),
                hit.score
            );
        }
    }
}
