//! Search a Delicious-like corpus: generate a synthetic social-bookmarking
//! dataset, clean it with the §VI-A pipeline, build CubeLSI and BOW side by
//! side, and compare their answers on vocabulary-mismatched queries.
//!
//! ```sh
//! cargo run --release --example delicious_search
//! ```

use cubelsi::baselines::{BowRanker, Ranker};
use cubelsi::core::{CubeLsi, CubeLsiConfig};
use cubelsi::datagen::{delicious_like, generate};
use cubelsi::folksonomy::{clean, CleaningConfig, TagId};

fn main() {
    // Generate at 2 % of the paper's Delicious scale and clean it.
    let preset = delicious_like(0.02, 42);
    let dataset = generate(&preset.config);
    let (cleaned, report) = clean(&dataset.folksonomy, &CleaningConfig::default());
    let dataset = dataset.rebind(cleaned);
    let f = &dataset.folksonomy;
    println!("raw:     {}", report.raw);
    println!("cleaned: {}", report.cleaned);

    let k = dataset.truth.concept_words.len();
    let engine = CubeLsi::build(
        f,
        &CubeLsiConfig {
            num_concepts: Some(k),
            reduction_ratios: (10.0, 10.0, 4.0),
            ..Default::default()
        },
    )
    .expect("CubeLSI builds");
    let bow = BowRanker::build(f);
    println!(
        "CubeLSI: fit {:.3}, {} concepts, offline time {:?}",
        engine.decomposition().fit,
        engine.concepts().num_concepts(),
        engine.timings().total()
    );

    // Pick a query tag and find a synonym (same concept, different word)
    // that annotates resources the query tag does not.
    let truth = &dataset.truth;
    let frequent: Vec<usize> = (0..f.num_tags())
        .filter(|&t| f.tag_assignments(TagId::from_index(t)).len() >= 8)
        .collect();
    let mut shown = 0;
    for &t in &frequent {
        if shown >= 3 {
            break;
        }
        let Some(&synonym) = frequent.iter().find(|&&o| {
            o != t && truth.tags_share_concept(t, o) && truth.tag_words[o] != truth.tag_words[t]
        }) else {
            continue;
        };
        shown += 1;
        let query = TagId::from_index(t);
        let name = f.tag_name(query);
        println!(
            "\nquery \"{name}\" (synonym in corpus: \"{}\"):",
            f.tag_name(TagId::from_index(synonym))
        );
        let cube_hits = engine.search_ids(&[query], 5);
        let bow_hits = bow.search_ids(&[query], 5);
        println!("  CubeLSI top-5:");
        for h in &cube_hits {
            let direct = f
                .resource_tag_counts(h.resource)
                .iter()
                .any(|&(tag, _)| tag == query);
            println!(
                "    {} score {:.3}{}",
                f.resource_name(h.resource),
                h.score,
                if direct {
                    ""
                } else {
                    "  ← no direct tag match (concept bridge)"
                }
            );
        }
        println!("  BOW top-5:");
        for h in &bow_hits {
            println!("    {} score {:.3}", f.resource_name(h.resource), h.score);
        }
        let cube_only = cube_hits
            .iter()
            .filter(|h| !bow_hits.iter().any(|b| b.resource == h.resource))
            .count();
        println!("  → {cube_only} of CubeLSI's top-5 are invisible to exact tag matching.");
    }
}
