//! Reproduces the paper's running example end-to-end: the Figure 2 data
//! (tags *folk*, *people*, *laptop*), the raw distance pathologies of
//! §IV-A/§IV-B, the purified distances of §IV-D, and the §V clustering —
//! printing each quantity next to the value the paper reports.
//!
//! ```sh
//! cargo run --release --example paper_walkthrough
//! ```

use cubelsi::core::pipeline::CubeLsi;
use cubelsi::core::{
    build_tensor, pairwise_distances_from_embedding, tag_embedding, CubeLsiConfig, SigmaSource,
};
use cubelsi::folksonomy::store::figure2_example;
use cubelsi::linalg::CsrMatrix;
use cubelsi::tensor::{tucker_als, TuckerConfig};

fn main() {
    let f = figure2_example();
    println!("Figure 2 data: {}", f.stats());

    // --- §IV-A: the traditional 2D view (Figure 3) and Eq. 6 distances.
    let matrix =
        CsrMatrix::from_triples(f.num_tags(), f.num_resources(), &f.tag_resource_triples())
            .unwrap();
    let d = |i: usize, j: usize| matrix.row_distance_sq(i, j).sqrt();
    println!("\n2D (tag x resource) distances, Eq. 6:");
    println!("  d(folk, people)   = {:.4}  (paper: √9 = 3.0000)", d(0, 1));
    println!(
        "  d(folk, laptop)   = {:.4}  (paper: √14 ≈ 3.7417)",
        d(0, 2)
    );
    println!("  d(people, laptop) = {:.4}  (paper: √5 ≈ 2.2361)", d(1, 2));
    println!("  → people looks closer to laptop than to folk: counter-intuitive (Eq. 11).");

    // --- §IV-A: the tensor view and Eq. 8 slice distances.
    let tensor = build_tensor(&f).unwrap();
    let slice = |t: usize| tensor.slice_mode2_csr(t).to_dense();
    let dd = |i: usize, j: usize| slice(i).sub(&slice(j)).unwrap().frobenius_norm();
    println!("\n3D raw tensor slice distances, Eq. 8:");
    println!(
        "  D(folk, people)   = {:.4}  (paper: √3 ≈ 1.7321)",
        dd(0, 1)
    );
    println!(
        "  D(folk, laptop)   = {:.4}  (paper: √6 ≈ 2.4495)",
        dd(0, 2)
    );
    println!(
        "  D(people, laptop) = {:.4}  (paper: √3 ≈ 1.7321)",
        dd(1, 2)
    );
    println!(
        "  → tie between (folk,people) and (people,laptop): better, still not right (Eq. 13)."
    );

    // --- §IV-C/D: Tucker decomposition with J₁ = J₂ = 3, J₃ = 2 and the
    // purified Theorem-1 distances.
    let config = TuckerConfig {
        core_dims: (3, 3, 2),
        max_iters: 50,
        fit_tol: 1e-12,
        ..Default::default()
    };
    let decomp = tucker_als(&tensor, &config).unwrap();
    let z = tag_embedding(&decomp, SigmaSource::CoreGram).unwrap();
    let dist = pairwise_distances_from_embedding(&z);
    println!("\npurified distances via Theorem 1 (J = 3,3,2):");
    println!(
        "  D̂(folk, people)   = {:.4}  (paper: √1.92 ≈ 1.3856)",
        dist.get(0, 1)
    );
    println!(
        "  D̂(folk, laptop)   = {:.4}  (paper: √5.94 ≈ 2.4372)",
        dist.get(0, 2)
    );
    println!(
        "  D̂(people, laptop) = {:.4}  (paper: √2.36 ≈ 1.5362)",
        dist.get(1, 2)
    );
    assert!(dist.get(0, 1) < dist.get(1, 2), "Eq. 19 must hold");
    assert!(dist.get(0, 1) < dist.get(0, 2), "Eq. 18 must hold");
    println!("  → D̂(folk, people) is now the smallest: consistent with intuition.");

    // --- Theorem 2: the Λ₂ shortcut gives the same distances.
    let z2 = tag_embedding(&decomp, SigmaSource::Lambda2).unwrap();
    let dist2 = pairwise_distances_from_embedding(&z2);
    let max_gap = (0..3)
        .flat_map(|i| (0..3).map(move |j| (i, j)))
        .map(|(i, j)| (dist.get(i, j) - dist2.get(i, j)).abs())
        .fold(0.0f64, f64::max);
    println!("\nTheorem 2 check: max |Σ_core − Λ₂²| distance gap = {max_gap:.2e}");

    // --- §V: spectral clustering groups folk+people vs laptop.
    let engine = CubeLsi::build(
        &f,
        &CubeLsiConfig {
            core_dims: Some((3, 3, 2)),
            num_concepts: Some(2),
            sigma: Some(1.0),
            max_als_iters: 50,
            als_fit_tol: 1e-12,
            ..Default::default()
        },
    )
    .unwrap();
    println!("\nconcept distillation (σ = 1, k = 2):");
    for summary in engine.concepts().summaries(&f) {
        println!("  {summary}");
    }
    let folk = f.tag_id("folk").unwrap().index();
    let people = f.tag_id("people").unwrap().index();
    let laptop = f.tag_id("laptop").unwrap().index();
    assert!(engine.concepts().same_concept(folk, people));
    assert!(!engine.concepts().same_concept(folk, laptop));
    println!("  → {{folk, people}} form one concept, {{laptop}} another — as in §V.");
}
