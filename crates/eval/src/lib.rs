//! Evaluation machinery for the CubeLSI experiments (§VI of the paper).
//!
//! * [`ndcg`] — NDCG@N exactly as Eq. 24 defines it, plus precision@K and
//!   MAP as supplementary metrics;
//! * [`jcn`] — the Table III tag-distance accuracy protocol: `JCN_avg`
//!   (Eq. 22) and `Rank_avg` (Eq. 23) against the synthetic taxonomy that
//!   substitutes for WordNet;
//! * [`workload`] — the query workload generator that substitutes for the
//!   paper's 16 assessors × 8 queries study: concept-targeted queries with
//!   graded 0/1/2 relevance from the generator's oracle plus assessor
//!   noise;
//! * [`memory`] — Table VII byte accounting (dense `F̂` versus `S`+`Y⁽²⁾`);
//! * [`tables`] — plain-text/markdown table rendering for the experiment
//!   binaries.

pub mod jcn;
pub mod memory;
pub mod ndcg;
pub mod tables;
pub mod workload;

pub use jcn::{evaluate_tag_distances, JcnEvaluation};
pub use memory::{format_bytes, MemoryAccounting};
pub use ndcg::{average_precision, ndcg_at, precision_at};
pub use tables::Table;
pub use workload::{generate_workload, Query, WorkloadConfig};
