//! Table VII memory accounting: the dense purified tensor `F̂` versus the
//! structures the theorems let CubeLSI keep.
//!
//! Reverse-engineering the paper's numbers shows the "S and Y⁽²⁾" column
//! counts `Σ ∈ R^{J₂×J₂}` plus `Y⁽²⁾ ∈ R^{I₂×J₂}` in 8-byte floats — e.g.
//! Last.fm at c = 50: `(67² + 3326·67) · 8 B = 1.8 MB`, exactly the
//! published figure. [`MemoryAccounting`] therefore reports three numbers:
//! the dense `F̂`, the paper's `Σ + Y⁽²⁾` pair, and the full decomposition
//! (`S` + all three factors) for completeness.

/// Byte accounting for one dataset / decomposition configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccounting {
    /// Tensor dimensions `(I₁, I₂, I₃)` = (users, tags, resources).
    pub dims: (usize, usize, usize),
    /// Core dimensions `(J₁, J₂, J₃)`.
    pub core_dims: (usize, usize, usize),
}

const F64_BYTES: u128 = 8;

impl MemoryAccounting {
    /// Builds the accounting from dimensions and reduction ratios
    /// (`Jₙ = round(Iₙ/cₙ)`, clamped to ≥ 1).
    pub fn from_ratios(dims: (usize, usize, usize), c: (f64, f64, f64)) -> Self {
        let j = |i: usize, c: f64| ((i as f64 / c).round() as usize).clamp(1, i.max(1));
        MemoryAccounting {
            dims,
            core_dims: (j(dims.0, c.0), j(dims.1, c.1), j(dims.2, c.2)),
        }
    }

    /// Bytes of the dense purified tensor `F̂` (`I₁·I₂·I₃` doubles) — what
    /// a theorem-less implementation would have to materialize.
    pub fn dense_purified_bytes(&self) -> u128 {
        let (i1, i2, i3) = self.dims;
        i1 as u128 * i2 as u128 * i3 as u128 * F64_BYTES
    }

    /// Bytes of the paper's Table VII "S and Y⁽²⁾" column: `Σ = J₂×J₂`
    /// plus `Y⁽²⁾ = I₂×J₂`.
    pub fn sigma_y2_bytes(&self) -> u128 {
        let i2 = self.dims.1 as u128;
        let j2 = self.core_dims.1 as u128;
        (j2 * j2 + i2 * j2) * F64_BYTES
    }

    /// Bytes of the complete decomposition: core `S` plus all three factor
    /// matrices.
    pub fn full_decomposition_bytes(&self) -> u128 {
        let (i1, i2, i3) = self.dims;
        let (j1, j2, j3) = self.core_dims;
        let core = j1 as u128 * j2 as u128 * j3 as u128;
        let factors = i1 as u128 * j1 as u128 + i2 as u128 * j2 as u128 + i3 as u128 * j3 as u128;
        (core + factors) * F64_BYTES
    }

    /// Compression ratio dense/compressed (Table VII's implicit headline).
    pub fn compression_ratio(&self) -> f64 {
        self.dense_purified_bytes() as f64 / self.sigma_y2_bytes().max(1) as f64
    }
}

/// Reads one `kB`-denominated field from `/proc/self/status`.
fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest
                .trim_start_matches(':')
                .split_whitespace()
                .next()?
                .parse()
                .ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// The process's current resident set (`VmRSS`), in bytes — the measured
/// counterpart to the analytical accounting above, used by the query
/// bench's memory columns. `None` on platforms without procfs.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS")
}

/// The process's peak resident set (`VmHWM`), in bytes. Monotonic over
/// the process lifetime (the kernel's high-water mark), so successive
/// readings report "the peak so far", not a per-phase peak. `None` on
/// platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM")
}

/// Formats a byte count the way the paper's Table VII does
/// ("7.0 TB", "98 GB", "8.8 MB").
pub fn format_bytes(bytes: u128) -> String {
    const UNITS: [(&str, u128); 5] = [
        ("PB", 1u128 << 50),
        ("TB", 1u128 << 40),
        ("GB", 1u128 << 30),
        ("MB", 1u128 << 20),
        ("KB", 1u128 << 10),
    ];
    for (unit, size) in UNITS {
        if bytes >= size {
            let v = bytes as f64 / size as f64;
            return if v >= 100.0 {
                format!("{v:.0} {unit}")
            } else {
                format!("{v:.1} {unit}")
            };
        }
    }
    format!("{bytes} B")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table II cleaned dimensions.
    const DELICIOUS: (usize, usize, usize) = (28_939, 7_342, 4_118);
    const BIBSONOMY: (usize, usize, usize) = (732, 4_702, 35_708);
    const LASTFM: (usize, usize, usize) = (3_897, 3_326, 2_849);
    const C50: (f64, f64, f64) = (50.0, 50.0, 50.0);

    #[test]
    fn lastfm_reproduces_paper_figures() {
        let m = MemoryAccounting::from_ratios(LASTFM, C50);
        assert_eq!(m.core_dims, (78, 67, 57));
        // Paper: "36.9 billion entries" in F (§IV-C) and S+Y⁽²⁾ = 1.8 MB.
        let entries = m.dense_purified_bytes() / F64_BYTES;
        assert!(
            (entries as f64 / 1e9 - 36.9).abs() < 0.1,
            "entries {entries}"
        );
        let decimal_mb = m.sigma_y2_bytes() as f64 / 1e6;
        assert!((decimal_mb - 1.8).abs() < 0.1, "decimal MB = {decimal_mb}");
    }

    #[test]
    fn delicious_reproduces_paper_figures() {
        let m = MemoryAccounting::from_ratios(DELICIOUS, C50);
        // Paper Table VII: 7.0 TB dense, 8.8 MB compressed (decimal units,
        // 8-byte floats — the only accounting that reproduces both).
        let decimal_tb = m.dense_purified_bytes() as f64 / 1e12;
        assert!((decimal_tb - 7.0).abs() < 0.1, "decimal TB = {decimal_tb}");
        let decimal_mb = m.sigma_y2_bytes() as f64 / 1e6;
        assert!((decimal_mb - 8.8).abs() < 0.2, "decimal MB = {decimal_mb}");
    }

    #[test]
    fn bibsonomy_orders_of_magnitude() {
        let m = MemoryAccounting::from_ratios(BIBSONOMY, C50);
        // The paper quotes 98 GB; f64·decimal accounting gives ~983 GB —
        // either way the compressed form wins by >10⁴× (the table's point).
        let decimal_mb = m.sigma_y2_bytes() as f64 / 1e6;
        assert!((decimal_mb - 3.6).abs() < 0.7, "decimal MB = {decimal_mb}"); // paper: 3.0 MB
        assert!(m.compression_ratio() > 1e4);
    }

    #[test]
    fn full_decomposition_larger_than_sigma_y2() {
        let m = MemoryAccounting::from_ratios(LASTFM, C50);
        assert!(m.full_decomposition_bytes() > m.sigma_y2_bytes());
        assert!(m.full_decomposition_bytes() < m.dense_purified_bytes());
    }

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.0 MB");
        assert_eq!(format_bytes(3 * (1u128 << 40)), "3.0 TB");
        assert_eq!(format_bytes(150 * (1u128 << 30)), "150 GB");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_readings_are_present_and_ordered() {
        let rss = current_rss_bytes().expect("VmRSS on linux");
        let peak = peak_rss_bytes().expect("VmHWM on linux");
        assert!(rss > 0);
        assert!(peak >= rss, "high-water mark below current RSS");
    }

    #[test]
    fn ratio_clamping() {
        let m = MemoryAccounting::from_ratios((3, 3, 3), (100.0, 100.0, 100.0));
        assert_eq!(m.core_dims, (1, 1, 1));
    }
}
