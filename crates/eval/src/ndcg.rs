//! Ranking-quality metrics.
//!
//! The paper's Figure 4 metric is NDCG@N (Eq. 24):
//!
//! ```text
//! NDCG@N = Z_N · Σ_{i=1}^{N} (2^{r(i)} − 1) / log(i + 1)
//! ```
//!
//! with `r(i)` the graded relevance (0/1/2) of the resource at rank `i` and
//! `Z_N` normalizing so the ideal ranking scores 1. The paper's discount
//! uses `log(i + 1)` with 1-based ranks — note rank 1 is *not* discounted
//! to zero because `log` here is applied to `i + 1 = 2`.

/// Discounted cumulative gain of a graded relevance sequence at cutoff `n`.
///
/// The gain `2^r − 1` is computed in floating point (`exp2`), not as an
/// integer shift: `1u32 << r` is undefined for `r ≥ 32` (debug panic,
/// release wrap-around) even though grades that large are permitted.
fn dcg(relevances: &[u8], n: usize) -> f64 {
    relevances
        .iter()
        .take(n)
        .enumerate()
        .map(|(idx, &r)| {
            let i = (idx + 1) as f64; // 1-based rank
            (f64::exp2(r as f64) - 1.0) / (i + 1.0).ln()
        })
        .sum()
}

/// NDCG@N (Eq. 24).
///
/// * `ranked_relevances` — relevance grades of the returned list, in rank
///   order (grades beyond ~20 are allowed but unusual; the paper uses 0–2);
/// * `all_relevances` — grades of *every* candidate resource, used to form
///   the ideal ranking for `Z_N`.
///
/// Returns 0 when the query has no relevant resources at all (ideal DCG is
/// zero), matching standard practice.
pub fn ndcg_at(ranked_relevances: &[u8], all_relevances: &[u8], n: usize) -> f64 {
    let mut ideal: Vec<u8> = all_relevances.to_vec();
    ideal.sort_unstable_by(|a, b| b.cmp(a));
    let ideal_dcg = dcg(&ideal, n);
    if ideal_dcg <= 0.0 {
        return 0.0;
    }
    dcg(ranked_relevances, n) / ideal_dcg
}

/// Precision@K with binary relevance (`grade > 0` counts as relevant).
pub fn precision_at(ranked_relevances: &[u8], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = ranked_relevances.iter().take(k).filter(|&&r| r > 0).count();
    hits as f64 / k as f64
}

/// Average precision with binary relevance; `total_relevant` is the number
/// of relevant resources in the whole corpus (denominator of recall).
pub fn average_precision(ranked_relevances: &[u8], total_relevant: usize) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut acc = 0.0;
    for (idx, &r) in ranked_relevances.iter().enumerate() {
        if r > 0 {
            hits += 1;
            acc += hits as f64 / (idx + 1) as f64;
        }
    }
    acc / total_relevant as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let all = vec![2, 1, 0, 0, 1];
        let ranked = vec![2, 1, 1, 0, 0]; // ideal order
        for n in [1, 3, 5] {
            let s = ndcg_at(&ranked, &all, n);
            assert!((s - 1.0).abs() < 1e-12, "NDCG@{n} = {s}");
        }
    }

    #[test]
    fn worst_ranking_scores_below_one() {
        let all = vec![2, 1, 0, 0, 1];
        let ranked = vec![0, 0, 1, 1, 2]; // worst order
        let s = ndcg_at(&ranked, &all, 5);
        assert!(s < 1.0 && s > 0.0);
    }

    #[test]
    fn eq24_hand_computed_example() {
        // ranked = [2, 0, 1] with ideal [2, 1, 0]:
        // DCG = (2²−1)/ln2 + 0 + (2¹−1)/ln4 = 3/ln2 + 1/ln4
        // IDCG = 3/ln2 + 1/ln3.
        let ranked = vec![2, 0, 1];
        let all = vec![2, 0, 1];
        let dcg_val = 3.0 / 2f64.ln() + 1.0 / 4f64.ln();
        let idcg_val = 3.0 / 2f64.ln() + 1.0 / 3f64.ln();
        let expected = dcg_val / idcg_val;
        assert!((ndcg_at(&ranked, &all, 3) - expected).abs() < 1e-12);
    }

    #[test]
    fn cutoff_only_counts_prefix() {
        let all = vec![2, 2];
        // Relevant item at rank 3 doesn't help NDCG@2.
        let ranked = vec![0, 0, 2, 2];
        assert_eq!(ndcg_at(&ranked, &all, 2), 0.0);
        assert!(ndcg_at(&ranked, &all, 4) > 0.0);
    }

    #[test]
    fn large_relevance_grades_do_not_overflow() {
        // Regression: gains used `1u32 << r`, which panics in debug (and
        // wraps in release) at r = 32 — `1u32 << 32` is undefined. The
        // doc comment has always permitted large grades.
        for r in [32u8, 33, 40, 63] {
            let ranked = vec![r];
            let all = vec![r];
            let s = ndcg_at(&ranked, &all, 1);
            assert!(
                (s - 1.0).abs() < 1e-12,
                "ideal ranking at grade {r} must score 1, got {s}"
            );
            // The raw gain is finite and strictly increasing in r.
            let lo = ndcg_at(&[r - 1], &all, 1);
            assert!(lo.is_finite() && lo < 1.0, "grade {}: {lo}", r - 1);
        }
        // Boundary pair: grade 31 (last shift-safe) vs 32 (first overflow).
        let s = ndcg_at(&[31], &[32], 1);
        assert!(s > 0.0 && s < 1.0, "31-vs-32 must discount, got {s}");
    }

    #[test]
    fn no_relevant_resources_gives_zero() {
        assert_eq!(ndcg_at(&[0, 0], &[0, 0, 0], 2), 0.0);
        assert_eq!(ndcg_at(&[], &[], 5), 0.0);
    }

    #[test]
    fn short_result_lists_are_fine() {
        // Returned fewer than N results: missing tail contributes nothing.
        let all = vec![2, 1];
        let ranked = vec![2];
        let s = ndcg_at(&ranked, &all, 5);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn precision_at_k() {
        let ranked = vec![2, 0, 1, 0];
        assert_eq!(precision_at(&ranked, 1), 1.0);
        assert_eq!(precision_at(&ranked, 2), 0.5);
        assert_eq!(precision_at(&ranked, 4), 0.5);
        assert_eq!(precision_at(&ranked, 0), 0.0);
        // K beyond the list length counts misses.
        assert_eq!(precision_at(&ranked, 8), 0.25);
    }

    #[test]
    fn average_precision_known_value() {
        // Relevant at ranks 1 and 3 of 2 total: AP = (1/1 + 2/3)/2.
        let ranked = vec![1, 0, 2, 0];
        let expected = (1.0 + 2.0 / 3.0) / 2.0;
        assert!((average_precision(&ranked, 2) - expected).abs() < 1e-12);
        assert_eq!(average_precision(&ranked, 0), 0.0);
    }
}
