//! The Table III protocol: tag-distance accuracy against taxonomy ground
//! truth.
//!
//! For every tag `t` in the covered set `D`, the method under test names
//! its most similar tag `t_sim`. Two scores are aggregated:
//!
//! * `JCN_avg` (Eq. 22) — the mean ground-truth JCN distance between `t`
//!   and `t_sim`: smaller ⇒ the method picks semantically closer tags;
//! * `Rank_avg` (Eq. 23) — the mean rank of `t_sim` among all tags of `D`
//!   ordered by ground-truth JCN distance from `t` (rank 1 ⇒ the method
//!   and the ground truth agree on the most similar tag).

use cubelsi_datagen::GroundTruth;

/// Aggregated Table III scores for one method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JcnEvaluation {
    /// Mean JCN distance of the method's `t_sim` picks (Eq. 22).
    pub jcn_avg: f64,
    /// Mean ground-truth rank of the picks (Eq. 23).
    pub rank_avg: f64,
    /// Number of tags evaluated (`k` in the equations).
    pub evaluated: usize,
}

/// Runs the protocol.
///
/// * `truth` — the generator's oracle (taxonomy + per-tag word mapping);
/// * `covered` — the tag ids constituting `D` (the paper restricts to tags
///   present in WordNet; pass all tag ids for full coverage);
/// * `nearest` — the method under test: maps a tag id to its most similar
///   tag id (`None` when the method cannot answer, e.g. a 1-tag corpus).
pub fn evaluate_tag_distances(
    truth: &GroundTruth,
    covered: &[usize],
    nearest: impl Fn(usize) -> Option<usize>,
) -> JcnEvaluation {
    let in_covered = |t: usize| covered.contains(&t);
    let mut jcn_sum = 0.0;
    let mut rank_sum = 0.0;
    let mut k = 0usize;
    for &t in covered {
        let Some(tsim) = nearest(t) else { continue };
        // The paper skips pairs whose t_sim is outside WordNet.
        if !in_covered(tsim) || tsim == t {
            continue;
        }
        let d = truth.tag_jcn(t, tsim);
        // Rank of t_sim among all covered tags ≠ t by true JCN distance;
        // ties count favourably (strictly-smaller predecessors only).
        let mut rank = 1usize;
        for &other in covered {
            if other == t || other == tsim {
                continue;
            }
            if truth.tag_jcn(t, other) < d {
                rank += 1;
            }
        }
        jcn_sum += d;
        rank_sum += rank as f64;
        k += 1;
    }
    if k == 0 {
        return JcnEvaluation {
            jcn_avg: f64::NAN,
            rank_avg: f64::NAN,
            evaluated: 0,
        };
    }
    JcnEvaluation {
        jcn_avg: jcn_sum / k as f64,
        rank_avg: rank_sum / k as f64,
        evaluated: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_datagen::{generate, GeneratorConfig};

    fn dataset() -> cubelsi_datagen::GeneratedDataset {
        generate(&GeneratorConfig {
            users: 30,
            resources: 25,
            concepts: 5,
            assignments: 1_500,
            seed: 3,
            ..Default::default()
        })
    }

    #[test]
    fn oracle_nearest_achieves_rank_one() {
        // A method that picks the true JCN-nearest tag must score the best
        // possible Rank_avg of exactly 1.
        let ds = dataset();
        let covered: Vec<usize> = (0..ds.truth.tag_words.len()).collect();
        let truth = &ds.truth;
        let oracle = |t: usize| {
            covered
                .iter()
                .filter(|&&o| o != t)
                .min_by(|&&a, &&b| truth.tag_jcn(t, a).total_cmp(&truth.tag_jcn(t, b)))
                .copied()
        };
        let eval = evaluate_tag_distances(truth, &covered, oracle);
        assert_eq!(eval.evaluated, covered.len());
        assert!(
            (eval.rank_avg - 1.0).abs() < 1e-12,
            "rank {}",
            eval.rank_avg
        );
    }

    #[test]
    fn adversarial_nearest_scores_worse_than_oracle() {
        let ds = dataset();
        let covered: Vec<usize> = (0..ds.truth.tag_words.len()).collect();
        let truth = &ds.truth;
        let oracle = |t: usize| {
            covered
                .iter()
                .filter(|&&o| o != t)
                .min_by(|&&a, &&b| truth.tag_jcn(t, a).total_cmp(&truth.tag_jcn(t, b)))
                .copied()
        };
        let adversary = |t: usize| {
            covered
                .iter()
                .filter(|&&o| o != t)
                .max_by(|&&a, &&b| truth.tag_jcn(t, a).total_cmp(&truth.tag_jcn(t, b)))
                .copied()
        };
        let good = evaluate_tag_distances(truth, &covered, oracle);
        let bad = evaluate_tag_distances(truth, &covered, adversary);
        assert!(good.jcn_avg < bad.jcn_avg);
        assert!(good.rank_avg < bad.rank_avg);
    }

    #[test]
    fn restricting_coverage_shrinks_evaluated_count() {
        let ds = dataset();
        let all: Vec<usize> = (0..ds.truth.tag_words.len()).collect();
        let half: Vec<usize> = all.iter().copied().step_by(2).collect();
        let truth = &ds.truth;
        // A method answering the next covered tag cyclically.
        let next_in = |set: Vec<usize>| {
            move |t: usize| {
                let pos = set.iter().position(|&x| x == t)?;
                Some(set[(pos + 1) % set.len()])
            }
        };
        let full_eval = evaluate_tag_distances(truth, &all, next_in(all.clone()));
        let half_eval = evaluate_tag_distances(truth, &half, next_in(half.clone()));
        assert!(half_eval.evaluated < full_eval.evaluated);
        assert!(half_eval.evaluated > 0);
    }

    #[test]
    fn degenerate_inputs() {
        let ds = dataset();
        let eval = evaluate_tag_distances(&ds.truth, &[], |_| None);
        assert_eq!(eval.evaluated, 0);
        assert!(eval.jcn_avg.is_nan());
        // Method that always declines.
        let covered: Vec<usize> = (0..5).collect();
        let eval = evaluate_tag_distances(&ds.truth, &covered, |_| None);
        assert_eq!(eval.evaluated, 0);
        // Method that answers itself (skipped).
        let eval = evaluate_tag_distances(&ds.truth, &covered, Some);
        assert_eq!(eval.evaluated, 0);
    }
}
