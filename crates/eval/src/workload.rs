//! Query workloads with graded ground-truth relevance.
//!
//! Substitutes for the paper's user study (16 users × 8 queries, each
//! returned resource labeled Relevant = 2 / Partially Relevant = 1 /
//! Irrelevant = 0). Queries target latent concepts; relevance grades come
//! from the generator's resource–concept affinities, optionally perturbed
//! by assessor noise so grades behave like human labels rather than a
//! noiseless oracle.

use cubelsi_datagen::GeneratedDataset;
use cubelsi_folksonomy::TagId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries (the paper uses 128).
    pub num_queries: usize,
    /// Inclusive range of query tags.
    pub tags_per_query: (usize, usize),
    /// Inclusive range of target concepts per query.
    pub concepts_per_query: (usize, usize),
    /// Affinity at or above which a resource is Relevant (grade 2).
    pub relevant_threshold: f64,
    /// Affinity at or above which a resource is Partially Relevant (1).
    pub partial_threshold: f64,
    /// Probability an assessor mislabels a resource by one grade.
    pub assessor_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_queries: 128,
            tags_per_query: (1, 3),
            concepts_per_query: (1, 2),
            relevant_threshold: 0.45,
            partial_threshold: 0.15,
            assessor_noise: 0.02,
            seed: 0x9e4,
        }
    }
}

/// One evaluation query.
#[derive(Debug, Clone)]
pub struct Query {
    /// The query's tag ids (what a user would type).
    pub tags: Vec<TagId>,
    /// The latent concepts the query targets (hidden from the methods).
    pub concepts: Vec<usize>,
    /// Relevance grade (0/1/2) of every resource, indexed by resource id.
    pub relevance: Vec<u8>,
}

impl Query {
    /// Maps a ranked list of resource indexes to their grades.
    pub fn grades_of(&self, ranked_resources: &[usize]) -> Vec<u8> {
        ranked_resources
            .iter()
            .map(|&r| self.relevance.get(r).copied().unwrap_or(0))
            .collect()
    }

    /// Number of resources with a positive grade.
    pub fn num_relevant(&self) -> usize {
        self.relevance.iter().filter(|&&g| g > 0).count()
    }
}

/// Generates a concept-targeted workload over a generated dataset.
///
/// Queries whose sampled concepts have no in-corpus tags are re-drawn, so
/// every returned query has at least one answerable tag.
pub fn generate_workload(ds: &GeneratedDataset, config: &WorkloadConfig) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let truth = &ds.truth;
    let num_concepts = truth.concept_words.len();
    let num_resources = ds.folksonomy.num_resources();

    // Reverse index: concept → tags (ids) expressing it in this corpus.
    let mut concept_tags: Vec<Vec<TagId>> = vec![Vec::new(); num_concepts];
    for (tag, concepts) in truth.tag_concepts.iter().enumerate() {
        for &c in concepts {
            concept_tags[c].push(TagId::from_index(tag));
        }
    }
    let usable: Vec<usize> = (0..num_concepts)
        .filter(|&c| !concept_tags[c].is_empty())
        .collect();
    assert!(
        !usable.is_empty(),
        "no concept has any tag in the corpus; workload impossible"
    );

    let mut queries = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        // Concepts for this query.
        let (clo, chi) = config.concepts_per_query;
        let n_concepts = if chi > clo {
            rng.gen_range(clo..=chi)
        } else {
            clo
        }
        .clamp(1, usable.len());
        let mut concepts = Vec::with_capacity(n_concepts);
        while concepts.len() < n_concepts {
            let c = usable[rng.gen_range(0..usable.len())];
            if !concepts.contains(&c) {
                concepts.push(c);
            }
        }
        // Tags from those concepts.
        let (tlo, thi) = config.tags_per_query;
        let n_tags = if thi > tlo {
            rng.gen_range(tlo..=thi)
        } else {
            tlo
        }
        .max(1);
        let mut tags = Vec::with_capacity(n_tags);
        for i in 0..n_tags {
            let c = concepts[i % concepts.len()];
            let pool = &concept_tags[c];
            let t = pool[rng.gen_range(0..pool.len())];
            if !tags.contains(&t) {
                tags.push(t);
            }
        }
        // Graded relevance from the oracle + assessor noise.
        let mut relevance = Vec::with_capacity(num_resources);
        for r in 0..num_resources {
            let affinity = truth.resource_relevance(&concepts, r);
            let mut grade: i8 = if affinity >= config.relevant_threshold {
                2
            } else if affinity >= config.partial_threshold {
                1
            } else {
                0
            };
            if rng.gen::<f64>() < config.assessor_noise {
                grade += if rng.gen::<bool>() { 1 } else { -1 };
            }
            relevance.push(grade.clamp(0, 2) as u8);
        }
        queries.push(Query {
            tags,
            concepts,
            relevance,
        });
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_datagen::{generate, GeneratorConfig};

    fn dataset() -> GeneratedDataset {
        generate(&GeneratorConfig {
            users: 30,
            resources: 40,
            concepts: 6,
            assignments: 2_000,
            seed: 17,
            ..Default::default()
        })
    }

    #[test]
    fn workload_has_requested_size_and_valid_tags() {
        let ds = dataset();
        let cfg = WorkloadConfig {
            num_queries: 32,
            ..Default::default()
        };
        let queries = generate_workload(&ds, &cfg);
        assert_eq!(queries.len(), 32);
        for q in &queries {
            assert!(!q.tags.is_empty());
            for t in &q.tags {
                assert!(t.index() < ds.folksonomy.num_tags());
            }
            assert_eq!(q.relevance.len(), ds.folksonomy.num_resources());
            assert!(!q.concepts.is_empty());
        }
    }

    #[test]
    fn grades_reflect_affinity_thresholds() {
        let ds = dataset();
        let cfg = WorkloadConfig {
            num_queries: 16,
            assessor_noise: 0.0,
            ..Default::default()
        };
        let queries = generate_workload(&ds, &cfg);
        for q in &queries {
            for (r, &g) in q.relevance.iter().enumerate() {
                let affinity = ds.truth.resource_relevance(&q.concepts, r);
                let expected = if affinity >= cfg.relevant_threshold {
                    2
                } else if affinity >= cfg.partial_threshold {
                    1
                } else {
                    0
                };
                assert_eq!(g, expected, "query grades must match the oracle");
            }
        }
    }

    #[test]
    fn most_queries_have_relevant_resources() {
        let ds = dataset();
        let queries = generate_workload(
            &ds,
            &WorkloadConfig {
                num_queries: 64,
                ..Default::default()
            },
        );
        let with_relevant = queries.iter().filter(|q| q.num_relevant() > 0).count();
        assert!(
            with_relevant * 10 >= queries.len() * 8,
            "{with_relevant}/{} queries have relevant resources",
            queries.len()
        );
    }

    #[test]
    fn grades_of_maps_rankings() {
        let ds = dataset();
        let queries = generate_workload(
            &ds,
            &WorkloadConfig {
                num_queries: 1,
                assessor_noise: 0.0,
                ..Default::default()
            },
        );
        let q = &queries[0];
        let ranking = vec![0, 1, 2];
        let grades = q.grades_of(&ranking);
        assert_eq!(grades.len(), 3);
        assert_eq!(grades[0], q.relevance[0]);
        // Out-of-range resources grade 0 defensively.
        assert_eq!(q.grades_of(&[999_999])[0], 0);
    }

    #[test]
    fn noise_perturbs_but_preserves_range() {
        let ds = dataset();
        let cfg = WorkloadConfig {
            num_queries: 8,
            assessor_noise: 0.5,
            seed: 2,
            ..Default::default()
        };
        let noisy = generate_workload(&ds, &cfg);
        for q in &noisy {
            for &g in &q.relevance {
                assert!(g <= 2);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let cfg = WorkloadConfig {
            num_queries: 8,
            ..Default::default()
        };
        let a = generate_workload(&ds, &cfg);
        let b = generate_workload(&ds, &cfg);
        for (qa, qb) in a.iter().zip(b.iter()) {
            assert_eq!(qa.tags, qb.tags);
            assert_eq!(qa.relevance, qb.relevance);
        }
    }
}
