//! Minimal table rendering for the experiment binaries — aligned plain
//! text (for terminals) and GitHub-flavored markdown (for EXPERIMENTS.md).

/// A simple rectangular table of strings.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                line.push_str(cell);
                line.push_str(&" ".repeat(pad + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a `Duration` the way the paper's tables do: hours with two
/// decimals for long runs, seconds otherwise.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 3600.0 {
        format!("{:.2} h", secs / 3600.0)
    } else if secs >= 60.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.2} s")
    } else {
        format!("{:.1} ms", secs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn text_rendering_aligns_columns() {
        let mut t = Table::new("Demo", &["method", "score"]);
        t.row_strs(&["CubeLSI", "0.9"]);
        t.row_strs(&["BOW", "0.5"]);
        let text = t.to_text();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("CubeLSI"));
        let lines: Vec<&str> = text.lines().collect();
        // Header + separator + 2 rows + title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row_strs(&["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.row_strs(&["only"]);
        assert_eq!(t.num_rows(), 1);
        let md = t.to_markdown();
        assert!(md.contains("| only |  |  |"));
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_secs_f64(7200.0)), "2.00 h");
        assert_eq!(fmt_duration(Duration::from_secs_f64(90.0)), "1.5 min");
        assert_eq!(fmt_duration(Duration::from_secs_f64(2.5)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_secs_f64(0.005)), "5.0 ms");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(1.0, 3), "1.000");
    }
}
