//! Dense and sparse linear algebra substrate for the CubeLSI reproduction.
//!
//! The CubeLSI paper (Bi, Lee, Kao, Cheng — ICDE 2011) depends on a stack of
//! numerical kernels that have no offline-approved crate equivalents, so this
//! crate implements them from scratch:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with cache-friendly,
//!   optionally multi-threaded multiplication kernels.
//! * [`CsrMatrix`] / [`CooMatrix`] — compressed sparse row / coordinate
//!   matrices for the very sparse tag-assignment data.
//! * [`qr`] — Householder QR and modified Gram–Schmidt orthonormalization.
//! * [`eigen`] — a cyclic Jacobi eigensolver for dense symmetric matrices.
//! * [`subspace`] — block subspace iteration for the leading eigenpairs of
//!   large implicit symmetric operators (the workhorse behind HOSVD/HOOI and
//!   spectral clustering).
//! * [`svd`] — thin/truncated singular value decompositions built on the
//!   eigensolvers (used by the LSI baseline and inside Tucker ALS).
//! * [`mod@kmeans`] — k-means++ / Lloyd clustering.
//! * [`spectral`] — the Ng–Jordan–Weiss spectral clustering algorithm exactly
//!   as used for concept distillation in §V of the paper.
//!
//! All stochastic routines take explicit seeds so that every experiment in
//! the repository is reproducible bit-for-bit.

pub mod eigen;
pub mod error;
pub mod kmeans;
pub mod matrix;
pub mod parallel;
pub mod qr;
pub mod sparse;
pub mod spectral;
pub mod subspace;
pub mod svd;

pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use error::LinAlgError;
pub use kmeans::{kmeans, KMeansConfig, KMeansResult};
pub use matrix::Matrix;
pub use qr::{householder_qr, orthonormalize_columns};
pub use sparse::{CooMatrix, CsrMatrix};
pub use spectral::{spectral_clustering, SpectralConfig, SpectralResult};
pub use subspace::{sym_eigs_topk, DenseSymOp, GramOp, SymOp};
pub use svd::{jacobi_svd, truncated_svd, LinOp, Svd};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinAlgError>;

/// Returns `true` when `a` and `b` differ by at most `tol` in absolute value.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }
}
