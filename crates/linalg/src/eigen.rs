//! Dense symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Jacobi is O(n³) per sweep but unconditionally stable and simple to verify,
//! which makes it the right tool for the *small* dense symmetric matrices
//! this repository produces: Rayleigh–Ritz projections inside subspace
//! iteration (dimension ≈ k + oversampling) and the core-tensor Gram matrix
//! `Σ = S₍₂₎S₍₂₎ᵀ` (dimension J₂ ≈ tens). Large eigenproblems never reach
//! this code — they go through [`crate::subspace`].

use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::Result;

/// Result of a symmetric eigendecomposition `A = V Λ Vᵀ`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Matrix whose *columns* are the corresponding eigenvectors.
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 64;

/// Computes all eigenpairs of a dense symmetric matrix using cyclic Jacobi
/// rotations. Eigenvalues are returned in descending order.
///
/// Returns an error when `a` is not square or when the off-diagonal mass
/// fails to fall below `tol * ‖A‖_F` within the sweep budget (which, for
/// symmetric input, indicates numerical pathology rather than a normal
/// failure mode).
pub fn jacobi_eigen(a: &Matrix, tol: f64) -> Result<EigenDecomposition> {
    let (n, m) = a.shape();
    if n != m {
        return Err(LinAlgError::InvalidArgument(format!(
            "jacobi_eigen requires a square matrix, got {n}x{m}"
        )));
    }
    if n == 0 {
        return Ok(EigenDecomposition {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }
    let mut a = a.clone();
    let mut v = Matrix::identity(n);
    let norm = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let threshold = tol * norm;
    let skip_threshold = threshold / (n as f64);

    let mut sweeps = 0;
    loop {
        let off = off_diagonal_norm(&a);
        if off <= threshold {
            break;
        }
        if sweeps >= MAX_SWEEPS {
            return Err(LinAlgError::NotConverged {
                method: "jacobi_eigen",
                iterations: sweeps,
                residual: off,
            });
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = a[(p, q)];
                if apq.abs() <= skip_threshold {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                // Compute the Jacobi rotation (c, s) that annihilates a_pq.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation: A ← Jᵀ A J on rows/cols p, q. The
                // column pass walks whole rows (one bounds check each), the
                // row pass gets both rows as contiguous slices.
                rotate_column_pair(a.as_mut_slice(), n, p, q, c, s);
                rotate_row_pair(a.as_mut_slice(), n, p, q, c, s);
                // Accumulate eigenvectors: V ← V J.
                rotate_column_pair(v.as_mut_slice(), n, p, q, c, s);
            }
        }
        sweeps += 1;
    }

    // Extract and sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    order.sort_by(|&i, &j| {
        diag[j]
            .partial_cmp(&diag[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_j)] = v[(i, old_j)];
        }
    }
    Ok(EigenDecomposition { values, vectors })
}

/// Applies the rotation to columns `p` and `q` of a row-major `n x n`
/// buffer: for every row `k`, `(m[k][p], m[k][q]) ← (c·m[k][p] − s·m[k][q],
/// s·m[k][p] + c·m[k][q])` — the same per-element arithmetic, in the same
/// row order, as the indexed loop it replaces.
#[inline]
fn rotate_column_pair(data: &mut [f64], n: usize, p: usize, q: usize, c: f64, s: f64) {
    for row in data.chunks_exact_mut(n) {
        let mp = row[p];
        let mq = row[q];
        row[p] = c * mp - s * mq;
        row[q] = s * mp + c * mq;
    }
}

/// Applies the rotation to rows `p < q` of a row-major `n x n` buffer as two
/// contiguous slices.
#[inline]
fn rotate_row_pair(data: &mut [f64], n: usize, p: usize, q: usize, c: f64, s: f64) {
    debug_assert!(p < q);
    let (head, tail) = data.split_at_mut(q * n);
    let row_p = &mut head[p * n..p * n + n];
    let row_q = &mut tail[..n];
    for (ap, aq) in row_p.iter_mut().zip(row_q.iter_mut()) {
        let apk = *ap;
        let aqk = *aq;
        *ap = c * apk - s * aqk;
        *aq = s * apk + c * aqk;
    }
}

fn off_diagonal_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut acc = 0.0;
    for (i, row) in a.as_slice().chunks_exact(n).enumerate() {
        for (j, &x) in row.iter().enumerate() {
            if i != j {
                acc += x * x;
            }
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;

    #[test]
    fn eigen_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = jacobi_eigen(&a, 1e-12).unwrap();
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = jacobi_eigen(&a, 1e-14).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for λ=3 is ±(1,1)/√2.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, -2.0, 0.5],
            vec![1.0, 3.0, 0.0, 1.0],
            vec![-2.0, 0.0, 5.0, -1.0],
            vec![0.5, 1.0, -1.0, 2.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&a, 1e-13).unwrap();
        // A = V Λ Vᵀ
        let lambda = Matrix::from_diag(&e.values);
        let recon = e
            .vectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        assert!(recon.approx_eq(&a, 1e-8));
        assert!(orthonormality_error(&e.vectors) < 1e-9);
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.2, 0.0],
            vec![0.2, 7.0, -0.3],
            vec![0.0, -0.3, 4.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&a, 1e-12).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&a, 1e-13).unwrap();
        let trace = 6.0;
        let sum: f64 = e.values.iter().sum();
        assert!((sum - trace).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_square() {
        assert!(jacobi_eigen(&Matrix::zeros(2, 3), 1e-10).is_err());
    }

    #[test]
    fn empty_matrix_ok() {
        let e = jacobi_eigen(&Matrix::zeros(0, 0), 1e-10).unwrap();
        assert!(e.values.is_empty());
    }

    /// The pre-optimization indexed implementation, kept verbatim as the
    /// reference for the bit-identity test below: the slice-based rotation
    /// kernels must reproduce it exactly, or downstream "bit-identical
    /// build" guarantees silently break.
    fn jacobi_eigen_reference(a: &Matrix, tol: f64) -> EigenDecomposition {
        let n = a.rows();
        let mut a = a.clone();
        let mut v = Matrix::identity(n);
        let norm = a.frobenius_norm().max(f64::MIN_POSITIVE);
        let threshold = tol * norm;
        let mut sweeps = 0;
        loop {
            let off = off_diagonal_norm(&a);
            if off <= threshold || sweeps >= MAX_SWEEPS {
                break;
            }
            for p in 0..n - 1 {
                for q in p + 1..n {
                    let apq = a[(p, q)];
                    if apq.abs() <= threshold / (n as f64) {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
            sweeps += 1;
        }
        let mut order: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        order.sort_by(|&i, &j| {
            diag[j]
                .partial_cmp(&diag[i])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            for i in 0..n {
                vectors[(i, new_j)] = v[(i, old_j)];
            }
        }
        EigenDecomposition { values, vectors }
    }

    #[test]
    fn slice_kernels_bit_identical_to_indexed_reference() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        for n in [2usize, 5, 13, 24] {
            let raw = Matrix::from_fn(n, n, |_, _| next());
            let sym = raw.add(&raw.transpose()).unwrap().scale(0.5);
            let fast = jacobi_eigen(&sym, 1e-12).unwrap();
            let reference = jacobi_eigen_reference(&sym, 1e-12);
            assert_eq!(fast.values, reference.values, "values differ at n={n}");
            assert!(
                fast.vectors.approx_eq(&reference.vectors, 0.0),
                "vectors differ at n={n}"
            );
        }
    }

    #[test]
    fn psd_matrix_has_nonnegative_eigenvalues() {
        // G = BᵀB is PSD by construction.
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5], vec![0.0, 3.0]]).unwrap();
        let g = b.gram();
        let e = jacobi_eigen(&g, 1e-13).unwrap();
        for &v in &e.values {
            assert!(v >= -1e-10);
        }
    }
}
