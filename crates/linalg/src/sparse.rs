//! Sparse matrices (COO and CSR) for the tag-assignment data.
//!
//! Social-tagging relations are extremely sparse — the cleaned Delicious
//! dataset in the paper has 1.36M assignments inside a 28939x7342x4118
//! tensor (density ~1.5e-6) — so the LSI baseline and the HOSVD
//! initialization must never densify. These types provide exactly the
//! products those algorithms need: `A*x`, `Aᵀ*x`, `A*B` and `Aᵀ*B` against
//! dense blocks.

use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::Result;

/// A coordinate-format sparse matrix: a list of `(row, col, value)` triples.
///
/// COO is the natural construction format (the folksonomy store emits
/// triples); convert to [`CsrMatrix`] for repeated products.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Creates an empty `rows x cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends an entry; duplicate coordinates are *summed* on conversion.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.entries.push((row as u32, col as u32, value));
    }

    /// Number of stored (possibly duplicate) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        row_ptr.push(0u32);
        let mut current_row = 0usize;
        for &(r, c, v) in &entries {
            let r = r as usize;
            while current_row < r {
                row_ptr.push(col_idx.len() as u32);
                current_row += 1;
            }
            if let (Some(&last_c), Some(last_v)) = (col_idx.last(), values.last_mut()) {
                if current_row == r
                    && last_c == c
                    && row_ptr.last().copied().unwrap() as usize != col_idx.len()
                {
                    *last_v += v;
                    continue;
                }
            }
            col_idx.push(c);
            values.push(v);
        }
        while current_row < self.rows {
            row_ptr.push(col_idx.len() as u32);
            current_row += 1;
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from unsorted triples, summing duplicates.
    pub fn from_triples(rows: usize, cols: usize, triples: &[(usize, usize, f64)]) -> Result<Self> {
        let mut coo = CooMatrix::new(rows, cols);
        for &(r, c, v) in triples {
            if r >= rows || c >= cols {
                return Err(LinAlgError::InvalidArgument(format!(
                    "triple ({r},{c}) out of bounds for {rows}x{cols}"
                )));
            }
            coo.push(r, c, v);
        }
        Ok(coo.to_csr())
    }

    /// An empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CooMatrix::new(rows, cols).to_csr()
    }

    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[i] as usize;
        let end = self.row_ptr[i + 1] as usize;
        self.col_idx[start..end]
            .iter()
            .zip(self.values[start..end].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Iterator over all `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| self.row_iter(i).map(move |(c, v)| (i, c, v)))
    }

    /// Looks up entry `(i, j)` (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let start = self.row_ptr[i] as usize;
        let end = self.row_ptr[i + 1] as usize;
        match self.col_idx[start..end].binary_search(&(j as u32)) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinAlgError::DimensionMismatch {
                op: "csr_matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row_iter(i) {
                acc += v * x[c];
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Transposed sparse matrix–vector product `selfᵀ * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinAlgError::DimensionMismatch {
                op: "csr_matvec_t",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (c, v) in self.row_iter(i) {
                out[c] += v * xi;
            }
        }
        Ok(out)
    }

    /// Sparse–dense product `self * b` (`rows x b.cols()`).
    pub fn matmul_dense(&self, b: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, b.cols());
        self.matmul_dense_into(b, &mut out)?;
        Ok(out)
    }

    /// [`Self::matmul_dense`] writing into a caller-owned buffer (resized
    /// and overwritten), so iterative solvers can reuse one allocation.
    pub fn matmul_dense_into(&self, b: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != b.rows() {
            return Err(LinAlgError::DimensionMismatch {
                op: "csr_matmul_dense",
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        let n = b.cols();
        out.reset(self.rows, n);
        for i in 0..self.rows {
            // Split borrows: the output row is disjoint from `b`.
            let start = self.row_ptr[i] as usize;
            let end = self.row_ptr[i + 1] as usize;
            let out_row = out.row_mut(i);
            for k in start..end {
                let c = self.col_idx[k] as usize;
                let v = self.values[k];
                let b_row = b.row(c);
                for j in 0..n {
                    out_row[j] += v * b_row[j];
                }
            }
        }
        Ok(())
    }

    /// Transposed sparse–dense product `selfᵀ * b` (`cols x b.cols()`).
    pub fn matmul_dense_t(&self, b: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.cols, b.cols());
        self.matmul_dense_t_into(b, &mut out)?;
        Ok(out)
    }

    /// [`Self::matmul_dense_t`] writing into a caller-owned buffer (resized
    /// and overwritten).
    pub fn matmul_dense_t_into(&self, b: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows != b.rows() {
            return Err(LinAlgError::DimensionMismatch {
                op: "csr_matmul_dense_t",
                lhs: (self.cols, self.rows),
                rhs: b.shape(),
            });
        }
        let n = b.cols();
        out.reset(self.cols, n);
        for i in 0..self.rows {
            let b_row = b.row(i);
            for (c, v) in self.row_iter(i) {
                let out_row = &mut out.as_mut_slice()[c * n..(c + 1) * n];
                for j in 0..n {
                    out_row[j] += v * b_row[j];
                }
            }
        }
        Ok(())
    }

    /// Fused Gram apply `selfᵀ * (self * x)` in a **single pass** over the
    /// sparse matrix: each row's projection `tᵢ = Aᵢ·X` is scattered back
    /// through `Aᵢᵀ` immediately, so the `A X` intermediate is never
    /// materialized.
    ///
    /// Every output element accumulates its row contributions in ascending
    /// row order with the in-row nonzeros in CSR order — exactly the order
    /// of `matmul_dense` followed by `matmul_dense_t` — so the result is
    /// bit-identical to the two-product reference.
    pub fn gram_inner_apply_into(&self, x: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != x.rows() {
            return Err(LinAlgError::DimensionMismatch {
                op: "csr_gram_inner_apply",
                lhs: self.shape(),
                rhs: x.shape(),
            });
        }
        let n = x.cols();
        out.reset(self.cols, n);
        let mut t = vec![0.0f64; n];
        for i in 0..self.rows {
            let start = self.row_ptr[i] as usize;
            let end = self.row_ptr[i + 1] as usize;
            if start == end {
                continue;
            }
            t.iter_mut().for_each(|v| *v = 0.0);
            for k in start..end {
                let c = self.col_idx[k] as usize;
                let v = self.values[k];
                let x_row = x.row(c);
                for (acc, &xv) in t.iter_mut().zip(x_row.iter()) {
                    *acc += v * xv;
                }
            }
            for k in start..end {
                let c = self.col_idx[k] as usize;
                let v = self.values[k];
                let out_row = &mut out.as_mut_slice()[c * n..(c + 1) * n];
                for (o, &tv) in out_row.iter_mut().zip(t.iter()) {
                    *o += v * tv;
                }
            }
        }
        Ok(())
    }

    /// Builds a CSR matrix directly from its raw parts: `row_ptr` of length
    /// `rows + 1`, and per-row column indices sorted strictly ascending
    /// (i.e. already deduplicated). This is the allocation-light path for
    /// producers that construct rows in order — the sparse tensor unfoldings
    /// — and skips the COO sort entirely.
    pub fn from_sorted_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1
            || row_ptr.first() != Some(&0)
            || *row_ptr.last().expect("row_ptr non-empty") as usize != col_idx.len()
            || col_idx.len() != values.len()
        {
            return Err(LinAlgError::InvalidArgument(
                "from_sorted_parts: inconsistent CSR structure".into(),
            ));
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(LinAlgError::InvalidArgument(
                    "from_sorted_parts: row_ptr must be non-decreasing".into(),
                ));
            }
        }
        for r in 0..rows {
            let row = &col_idx[row_ptr[r] as usize..row_ptr[r + 1] as usize];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(LinAlgError::InvalidArgument(format!(
                        "from_sorted_parts: row {r} columns not strictly ascending"
                    )));
                }
            }
            if row.last().is_some_and(|&c| c as usize >= cols) {
                return Err(LinAlgError::InvalidArgument(format!(
                    "from_sorted_parts: row {r} column out of bounds"
                )));
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.cols, self.rows);
        for (r, c, v) in self.iter() {
            coo.push(c, r, v);
        }
        coo.to_csr()
    }

    /// Materializes the matrix densely. Intended for tests and tiny inputs.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            m[(r, c)] += v;
        }
        m
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Sum of squared values within row `i`.
    pub fn row_norm_sq(&self, i: usize) -> f64 {
        self.row_iter(i).map(|(_, v)| v * v).sum()
    }

    /// Inner product of rows `i` and `j` (merge join over sorted columns).
    pub fn row_dot(&self, i: usize, j: usize) -> f64 {
        let (si, ei) = (self.row_ptr[i] as usize, self.row_ptr[i + 1] as usize);
        let (sj, ej) = (self.row_ptr[j] as usize, self.row_ptr[j + 1] as usize);
        let mut a = si;
        let mut b = sj;
        let mut acc = 0.0;
        while a < ei && b < ej {
            match self.col_idx[a].cmp(&self.col_idx[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[a] * self.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// Squared Euclidean distance between rows `i` and `j`:
    /// `‖rᵢ‖² + ‖rⱼ‖² − 2⟨rᵢ, rⱼ⟩`, computed sparsely.
    pub fn row_distance_sq(&self, i: usize, j: usize) -> f64 {
        (self.row_norm_sq(i) + self.row_norm_sq(j) - 2.0 * self.row_dot(i, j)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 3 0]
        // [1 0 0]
        // [0 0 2]
        CsrMatrix::from_triples(3, 3, &[(0, 0, 1.0), (0, 1, 3.0), (1, 0, 1.0), (2, 2, 2.0)])
            .unwrap()
    }

    #[test]
    fn construction_and_get() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(2, 2), 2.0);
    }

    #[test]
    fn duplicate_triples_are_summed() {
        let m = CsrMatrix::from_triples(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    fn out_of_bounds_triple_rejected() {
        assert!(CsrMatrix::from_triples(2, 2, &[(2, 0, 1.0)]).is_err());
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let sparse = m.matvec(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert_eq!(sparse, dense);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matvec_t_matches_dense() {
        let m = sample();
        let x = vec![1.0, -1.0, 0.5];
        let sparse = m.matvec_t(&x).unwrap();
        let dense = m.to_dense().matvec_t(&x).unwrap();
        assert_eq!(sparse, dense);
        assert!(m.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn matmul_dense_matches_dense() {
        let m = sample();
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0], vec![3.0, 0.0]]).unwrap();
        let sparse = m.matmul_dense(&b).unwrap();
        let dense = m.to_dense().matmul(&b).unwrap();
        assert!(sparse.approx_eq(&dense, 1e-12));
    }

    #[test]
    fn matmul_dense_t_matches_dense() {
        let m = sample();
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0], vec![3.0, 0.0]]).unwrap();
        let sparse = m.matmul_dense_t(&b).unwrap();
        let dense = m.to_dense().transpose().matmul(&b).unwrap();
        assert!(sparse.approx_eq(&dense, 1e-12));
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert!(m.to_dense().approx_eq(&tt.to_dense(), 0.0));
    }

    #[test]
    fn row_dot_and_distance() {
        let m = sample();
        // rows 0 and 1 share column 0: dot = 1*1 = 1.
        assert_eq!(m.row_dot(0, 1), 1.0);
        // ||r0||²=10, ||r1||²=1, d² = 10+1-2 = 9 — this is the paper's
        // d(folk, people) = sqrt(9) example (Figure 3 / Eq. 7).
        assert!((m.row_distance_sq(0, 1) - 9.0).abs() < 1e-12);
        // d(people, laptop)² = 1 + 4 = 5 (Eq. 11).
        assert!((m.row_distance_sq(1, 2) - 5.0).abs() < 1e-12);
        // d(folk, laptop)² = 10 + 4 = 14 (Eq. 10).
        assert!((m.row_distance_sq(0, 2) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norms() {
        let m = sample();
        assert!((m.frobenius_norm_sq() - (1.0 + 9.0 + 1.0 + 4.0)).abs() < 1e-12);
        assert!((m.row_norm_sq(0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rows_handled() {
        let m = CsrMatrix::from_triples(4, 3, &[(3, 2, 1.0)]).unwrap();
        assert_eq!(m.row_iter(0).count(), 0);
        assert_eq!(m.row_iter(3).count(), 1);
        assert_eq!(
            m.matvec(&[0.0, 0.0, 2.0]).unwrap(),
            vec![0.0, 0.0, 0.0, 2.0]
        );
    }

    #[test]
    fn zeros_matrix() {
        let m = CsrMatrix::zeros(2, 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (2, 5));
        assert_eq!(m.matvec(&[1.0; 5]).unwrap(), vec![0.0, 0.0]);
    }
}
