//! k-means clustering with k-means++ initialization (Lloyd's algorithm).
//!
//! This is the final step of the paper's concept distillation (§V step 4):
//! tags, embedded as rows of the normalized spectral matrix `X`, are grouped
//! into `k` semantically coherent clusters — each cluster is a *concept*.

use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Relative decrease of inertia below which iteration stops.
    pub tol: f64,
    /// Number of independent restarts; the best (lowest-inertia) run wins.
    pub n_init: usize,
    /// RNG seed (restart `i` uses `seed + i`).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 100,
            tol: 1e-6,
            n_init: 4,
            seed: 0x6b6d_6561_6e73, // "kmeans" in ASCII
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index for each input point (length = number of rows).
    pub assignments: Vec<usize>,
    /// `k x d` matrix of final centroids.
    pub centroids: Matrix,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    /// Lloyd iterations performed by the winning restart.
    pub iterations: usize,
}

/// Clusters the rows of `points` into `config.k` groups.
///
/// Uses k-means++ seeding and Lloyd iterations; empty clusters are re-seeded
/// from the point farthest from its centroid. Runs `n_init` restarts and
/// returns the lowest-inertia result. Fully deterministic for a fixed seed.
pub fn kmeans(points: &Matrix, config: &KMeansConfig) -> Result<KMeansResult> {
    let n = points.rows();
    let k = config.k;
    if k == 0 {
        return Err(LinAlgError::InvalidArgument("k must be > 0".into()));
    }
    if n == 0 {
        return Err(LinAlgError::InvalidArgument(
            "cannot cluster an empty point set".into(),
        ));
    }
    if k > n {
        return Err(LinAlgError::InvalidArgument(format!(
            "k = {k} exceeds the number of points {n}"
        )));
    }
    let mut best: Option<KMeansResult> = None;
    for restart in 0..config.n_init.max(1) {
        let result = kmeans_single(points, config, config.seed.wrapping_add(restart as u64))?;
        let better = best.as_ref().is_none_or(|b| result.inertia < b.inertia);
        if better {
            best = Some(result);
        }
    }
    Ok(best.expect("at least one restart ran"))
}

fn kmeans_single(points: &Matrix, config: &KMeansConfig, seed: u64) -> Result<KMeansResult> {
    let n = points.rows();
    let d = points.cols();
    let k = config.k;
    let mut rng = StdRng::seed_from_u64(seed);

    let mut centroids = kmeanspp_init(points, k, &mut rng);
    let mut assignments = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..config.max_iters {
        iterations = it + 1;
        // Assignment step.
        let mut new_inertia = 0.0;
        for (i, slot) in assignments.iter_mut().enumerate() {
            let (c, dist_sq) = nearest_centroid(points.row(i), &centroids);
            *slot = c;
            new_inertia += dist_sq;
        }
        // Update step.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            let row = points.row(i);
            let srow = sums.row_mut(c);
            for (s, &x) in srow.iter_mut().zip(row.iter()) {
                *s += x;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster from the point farthest from its
                // current centroid so we never lose a concept slot.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(points.row(a), centroids.row(assignments[a]));
                        let db = sq_dist(points.row(b), centroids.row(assignments[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty point set");
                centroids.row_mut(c).copy_from_slice(points.row(far));
            } else {
                let inv = 1.0 / count as f64;
                let srow = sums.row(c).to_vec();
                let crow = centroids.row_mut(c);
                for (cv, sv) in crow.iter_mut().zip(srow.iter()) {
                    *cv = sv * inv;
                }
            }
        }
        // Convergence on relative inertia improvement.
        let converged =
            inertia.is_finite() && (inertia - new_inertia).abs() / inertia.max(1e-30) < config.tol;
        inertia = new_inertia;
        if converged {
            break;
        }
    }
    // Final assignment pass against the final centroids.
    let mut final_inertia = 0.0;
    for (i, slot) in assignments.iter_mut().enumerate() {
        let (c, dist_sq) = nearest_centroid(points.row(i), &centroids);
        *slot = c;
        final_inertia += dist_sq;
    }
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia: final_inertia,
        iterations,
    })
}

/// k-means++ seeding: first centroid uniform, each subsequent centroid drawn
/// with probability proportional to its squared distance from the nearest
/// already-chosen centroid.
fn kmeanspp_init(points: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = points.rows();
    let d = points.cols();
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));
    let mut dist_sq: Vec<f64> = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dist_sq.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = n - 1;
            for (i, &w) in dist_sq.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(points.row(chosen));
        for (i, slot) in dist_sq.iter_mut().enumerate() {
            let nd = sq_dist(points.row(i), centroids.row(c));
            if nd < *slot {
                *slot = nd;
            }
        }
    }
    centroids
}

fn nearest_centroid(point: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d = sq_dist(point, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2D.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)];
        // Deterministic low-discrepancy jitter, no RNG needed.
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for t in 0..20 {
                let dx = ((t * 7) % 10) as f64 / 10.0 - 0.5;
                let dy = ((t * 3) % 10) as f64 / 10.0 - 0.5;
                rows.push(vec![cx + dx, cy + dy]);
                labels.push(ci);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (points, truth) = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 7,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        // Every ground-truth blob must map to exactly one cluster id.
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> = truth
                .iter()
                .zip(result.assignments.iter())
                .filter(|(t, _)| **t == blob)
                .map(|(_, a)| *a)
                .collect();
            assert_eq!(ids.len(), 1, "blob {blob} split across clusters");
        }
        assert!(result.inertia < 20.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 0.0], vec![0.0, 5.0]]).unwrap();
        let cfg = KMeansConfig {
            k: 3,
            seed: 1,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        assert!(result.inertia < 1e-20);
        let unique: std::collections::HashSet<_> = result.assignments.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let points = Matrix::from_rows(&[vec![1.0], vec![3.0], vec![5.0]]).unwrap();
        let cfg = KMeansConfig {
            k: 1,
            seed: 3,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        assert!((result.centroids[(0, 0)] - 3.0).abs() < 1e-9);
        assert_eq!(result.assignments, vec![0, 0, 0]);
    }

    #[test]
    fn rejects_invalid_arguments() {
        let points = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut cfg = KMeansConfig {
            k: 0,
            ..KMeansConfig::default()
        };
        assert!(kmeans(&points, &cfg).is_err());
        cfg.k = 5;
        assert!(kmeans(&points, &cfg).is_err());
        cfg.k = 1;
        assert!(kmeans(&Matrix::zeros(0, 2), &cfg).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (points, _) = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 99,
            ..Default::default()
        };
        let r1 = kmeans(&points, &cfg).unwrap();
        let r2 = kmeans(&points, &cfg).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.inertia, r2.inertia);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let points = Matrix::from_rows(&vec![vec![1.0, 1.0]; 6]).unwrap();
        let cfg = KMeansConfig {
            k: 2,
            seed: 5,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        assert!(result.inertia < 1e-18);
    }
}
