//! k-means clustering with k-means++ initialization.
//!
//! This is the final step of the paper's concept distillation (§V step 4):
//! tags, embedded as rows of the normalized spectral matrix `X`, are grouped
//! into `k` semantically coherent clusters — each cluster is a *concept*.
//!
//! Two exact algorithms are provided, selected by
//! [`KMeansConfig::algorithm`]:
//!
//! * [`KMeansAlgorithm::NaiveLloyd`] — the textbook assignment/update loop,
//!   `O(n·k·d)` per iteration. Kept as the reference implementation.
//! * [`KMeansAlgorithm::BoundsPruned`] (default) — Hamerly-style pruning:
//!   each point carries a lower bound on its distance to the nearest
//!   *non-assigned* centroid, maintained across iterations via centroid
//!   drift. When the exact distance to the assigned centroid beats the
//!   bound, the `O(k·d)` scan is skipped entirely. The bound bookkeeping is
//!   conservatively padded against floating-point drift and the pruning
//!   comparison is strict, so ties always fall through to the full scan —
//!   the pruned run is **bit-identical** to naive Lloyd's (assignments,
//!   centroids, inertia, iteration count) for any seed, a property enforced
//!   by the randomized equivalence tests below.
//!
//! The assignment step and the `n_init` restarts are parallelized via
//! [`crate::parallel`]; every reduction that feeds the iteration (inertia,
//! centroid sums, empty-cluster reseeding) is performed serially in point
//! order, so results are identical for every thread count.

use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::parallel;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which exact k-means implementation to run. Both produce bit-identical
/// results; the naive variant exists as the equivalence-test reference and
/// the slow side of the build-phase bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KMeansAlgorithm {
    /// Hamerly-style bounds-pruned Lloyd's (default).
    #[default]
    BoundsPruned,
    /// Textbook Lloyd's, scanning every centroid for every point.
    NaiveLloyd,
}

/// Configuration for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Relative decrease of inertia below which iteration stops.
    pub tol: f64,
    /// Number of independent restarts; the best (lowest-inertia) run wins.
    pub n_init: usize,
    /// RNG seed (restart `i` uses `seed + i`).
    pub seed: u64,
    /// Implementation selector; see [`KMeansAlgorithm`].
    pub algorithm: KMeansAlgorithm,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 100,
            tol: 1e-6,
            n_init: 4,
            seed: 0x6b6d_6561_6e73, // "kmeans" in ASCII
            algorithm: KMeansAlgorithm::default(),
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index for each input point (length = number of rows).
    pub assignments: Vec<usize>,
    /// `k x d` matrix of final centroids.
    pub centroids: Matrix,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
    /// Lloyd iterations performed by the winning restart.
    pub iterations: usize,
}

/// Multiplicative padding applied to the pruning bounds so floating-point
/// rounding in the triangle-inequality bookkeeping can never make a stale
/// bound *optimistic*: lower bounds are deflated and centroid drifts
/// inflated by one part in 10¹², dwarfing the ~`d·ε ≈ 10⁻¹⁴` relative error
/// of the distance computations while costing a negligible number of extra
/// full scans.
const BOUND_DEFLATE: f64 = 1.0 - 1e-12;
const DRIFT_INFLATE: f64 = 1.0 + 1e-12;

/// Minimum `n·k·d` before the assignment step fans out across threads.
const PAR_ASSIGN_THRESHOLD: usize = 65_536;

/// Clusters the rows of `points` into `config.k` groups.
///
/// Uses k-means++ seeding and exact Lloyd iterations (bounds-pruned by
/// default); empty clusters are re-seeded deterministically from the point
/// farthest from its assigned centroid. Runs `n_init` restarts (in parallel
/// when workers are available) and returns the lowest-inertia result, ties
/// resolved toward the earliest restart. Fully deterministic for a fixed
/// seed, independent of the thread count.
pub fn kmeans(points: &Matrix, config: &KMeansConfig) -> Result<KMeansResult> {
    let n = points.rows();
    let k = config.k;
    if k == 0 {
        return Err(LinAlgError::InvalidArgument("k must be > 0".into()));
    }
    if n == 0 {
        return Err(LinAlgError::InvalidArgument(
            "cannot cluster an empty point set".into(),
        ));
    }
    if k > n {
        return Err(LinAlgError::InvalidArgument(format!(
            "k = {k} exceeds the number of points {n}"
        )));
    }
    let n_init = config.n_init.max(1);
    let restart_parallel = n_init > 1 && parallel::num_threads() > 1;
    let results: Vec<Result<KMeansResult>> = if restart_parallel {
        // One restart per worker; the assignment step stays serial inside
        // each restart so the pools do not nest.
        parallel::parallel_map_collect(n_init, 1, |restart| {
            kmeans_single(
                points,
                config,
                config.seed.wrapping_add(restart as u64),
                false,
            )
        })
    } else {
        (0..n_init)
            .map(|restart| {
                kmeans_single(
                    points,
                    config,
                    config.seed.wrapping_add(restart as u64),
                    true,
                )
            })
            .collect()
    };
    let mut best: Option<KMeansResult> = None;
    for result in results {
        let result = result?;
        let better = best.as_ref().is_none_or(|b| result.inertia < b.inertia);
        if better {
            best = Some(result);
        }
    }
    Ok(best.expect("at least one restart ran"))
}

fn kmeans_single(
    points: &Matrix,
    config: &KMeansConfig,
    seed: u64,
    allow_parallel: bool,
) -> Result<KMeansResult> {
    let n = points.rows();
    let d = points.cols();
    let k = config.k;
    let pruned = config.algorithm == KMeansAlgorithm::BoundsPruned;
    let mut rng = StdRng::seed_from_u64(seed);

    let mut centroids = kmeanspp_init(points, k, &mut rng);
    let mut assignments = vec![0usize; n];
    let mut dist_sq = vec![0.0f64; n];
    // Lower bound on the distance from each point to its nearest
    // *non-assigned* centroid; 0 forces a full scan, so the first iteration
    // is exhaustive for both algorithms.
    let mut lower = vec![0.0f64; n];
    let mut old_centroids = Matrix::zeros(k, d);
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for it in 0..config.max_iters {
        iterations = it + 1;
        assign_pass(
            points,
            &centroids,
            &mut assignments,
            &mut dist_sq,
            &mut lower,
            pruned,
            allow_parallel,
        );
        // Serial reduction in point order: identical for any banding.
        let new_inertia: f64 = dist_sq.iter().sum();

        // Update step.
        if pruned {
            old_centroids
                .as_mut_slice()
                .copy_from_slice(centroids.as_slice());
        }
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            let row = points.row(i);
            let srow = sums.row_mut(c);
            for (s, &x) in srow.iter_mut().zip(row.iter()) {
                *s += x;
            }
        }
        let mut reseed_used: Vec<usize> = Vec::new();
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                // Re-seed an empty cluster from the point farthest from its
                // assigned centroid (exact distances cached by the
                // assignment pass), skipping points already consumed by an
                // earlier empty cluster this iteration; ties break toward
                // the lowest point index. Deterministic for any seed and
                // thread count.
                let far = farthest_unused_point(&dist_sq, &reseed_used);
                reseed_used.push(far);
                centroids.row_mut(c).copy_from_slice(points.row(far));
            } else {
                let inv = 1.0 / count as f64;
                let srow = sums.row(c);
                let crow = &mut centroids.as_mut_slice()[c * d..(c + 1) * d];
                for (cv, sv) in crow.iter_mut().zip(srow.iter()) {
                    *cv = sv * inv;
                }
            }
        }
        if pruned {
            // Every centroid moved by at most `drift_max`; any stale lower
            // bound therefore stays valid after subtracting it (padded
            // against rounding). Teleported reseed centroids are covered
            // automatically — their drift is just large.
            let mut drift_max = 0.0f64;
            for c in 0..k {
                let drift = sq_dist(old_centroids.row(c), centroids.row(c)).sqrt();
                if drift > drift_max {
                    drift_max = drift;
                }
            }
            let step = drift_max * DRIFT_INFLATE;
            for l in lower.iter_mut() {
                *l = ((*l - step) * BOUND_DEFLATE).max(0.0);
            }
        }
        // Convergence on relative inertia improvement.
        let converged =
            inertia.is_finite() && (inertia - new_inertia).abs() / inertia.max(1e-30) < config.tol;
        inertia = new_inertia;
        if converged {
            break;
        }
    }
    // Final assignment pass against the final centroids.
    assign_pass(
        points,
        &centroids,
        &mut assignments,
        &mut dist_sq,
        &mut lower,
        pruned,
        allow_parallel,
    );
    let final_inertia: f64 = dist_sq.iter().sum();
    Ok(KMeansResult {
        assignments,
        centroids,
        inertia: final_inertia,
        iterations,
    })
}

/// One assignment pass: refreshes `assignments[i]` and the exact squared
/// distance `dist_sq[i]` for every point, maintaining the pruning bound
/// `lower[i]` when `pruned` is set. Parallel banding only partitions the
/// per-point work — every point's result is computed identically — so the
/// output is independent of the thread count.
fn assign_pass(
    points: &Matrix,
    centroids: &Matrix,
    assignments: &mut [usize],
    dist_sq: &mut [f64],
    lower: &mut [f64],
    pruned: bool,
    allow_parallel: bool,
) {
    let n = points.rows();
    let threads = parallel::num_threads();
    let work = n * centroids.rows() * points.cols();
    if !allow_parallel || threads <= 1 || work < PAR_ASSIGN_THRESHOLD {
        assign_chunk(points, centroids, 0, assignments, dist_sq, lower, pruned);
        return;
    }
    let nchunks = threads.min(n);
    let chunk = n.div_ceil(nchunks);
    crossbeam::thread::scope(|scope| {
        let mut rest_a = assignments;
        let mut rest_d = dist_sq;
        let mut rest_l = lower;
        let mut start = 0usize;
        while !rest_a.is_empty() {
            let take = chunk.min(rest_a.len());
            let (band_a, tail_a) = rest_a.split_at_mut(take);
            let (band_d, tail_d) = rest_d.split_at_mut(take);
            let (band_l, tail_l) = rest_l.split_at_mut(take);
            rest_a = tail_a;
            rest_d = tail_d;
            rest_l = tail_l;
            let first = start;
            start += take;
            scope.spawn(move |_| {
                assign_chunk(points, centroids, first, band_a, band_d, band_l, pruned);
            });
        }
    })
    .expect("kmeans assignment worker panicked");
}

fn assign_chunk(
    points: &Matrix,
    centroids: &Matrix,
    start: usize,
    assignments: &mut [usize],
    dist_sq: &mut [f64],
    lower: &mut [f64],
    pruned: bool,
) {
    for (off, slot) in assignments.iter_mut().enumerate() {
        let x = points.row(start + off);
        if pruned {
            // Exact distance to the assigned centroid (also feeds the
            // inertia sum, which must match naive Lloyd's bitwise).
            let da2 = sq_dist(x, centroids.row(*slot));
            let u = da2.sqrt();
            if u < lower[off] {
                // No other centroid can be closer; on an exact tie the
                // strict comparison fails and we rescan, so the naive
                // tie-break (lowest centroid index) is preserved.
                dist_sq[off] = da2;
                continue;
            }
            let (c, d2, second_d2) = nearest_and_second(x, centroids);
            *slot = c;
            dist_sq[off] = d2;
            lower[off] = second_d2.sqrt();
        } else {
            let (c, d2) = nearest_centroid(x, centroids);
            *slot = c;
            dist_sq[off] = d2;
        }
    }
}

/// Index of the point with the largest assigned distance that is not in
/// `used` (ties toward the lowest index). `used` is tiny — at most one entry
/// per empty cluster — so a linear membership test is fine.
fn farthest_unused_point(dist_sq: &[f64], used: &[usize]) -> usize {
    let mut best = usize::MAX;
    let mut best_d = f64::NEG_INFINITY;
    for (i, &d) in dist_sq.iter().enumerate() {
        if d > best_d && !used.contains(&i) {
            best_d = d;
            best = i;
        }
    }
    // More empty clusters than points cannot happen (k <= n is validated),
    // so there is always an unused point left.
    debug_assert!(best != usize::MAX, "no reseed candidate left");
    if best == usize::MAX {
        0
    } else {
        best
    }
}

/// k-means++ seeding: first centroid uniform, each subsequent centroid drawn
/// with probability proportional to its squared distance from the nearest
/// already-chosen centroid.
fn kmeanspp_init(points: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = points.rows();
    let d = points.cols();
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(points.row(first));
    let mut dist_sq: Vec<f64> = (0..n)
        .map(|i| sq_dist(points.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dist_sq.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with chosen centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = n - 1;
            for (i, &w) in dist_sq.iter().enumerate() {
                if target < w {
                    idx = i;
                    break;
                }
                target -= w;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(points.row(chosen));
        for (i, slot) in dist_sq.iter_mut().enumerate() {
            let nd = sq_dist(points.row(i), centroids.row(c));
            if nd < *slot {
                *slot = nd;
            }
        }
    }
    centroids
}

fn nearest_centroid(point: &[f64], centroids: &Matrix) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d = sq_dist(point, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// Nearest centroid plus the squared distance to the runner-up, in one scan.
/// Assignment and tie-breaks are exactly those of [`nearest_centroid`].
fn nearest_and_second(point: &[f64], centroids: &Matrix) -> (usize, f64, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    let mut second_d = f64::INFINITY;
    for c in 0..centroids.rows() {
        let d = sq_dist(point, centroids.row(c));
        if d < best_d {
            second_d = best_d;
            best_d = d;
            best = c;
        } else if d < second_d {
            second_d = d;
        }
    }
    (best, best_d, second_d)
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2D.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)];
        // Deterministic low-discrepancy jitter, no RNG needed.
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for t in 0..20 {
                let dx = ((t * 7) % 10) as f64 / 10.0 - 0.5;
                let dy = ((t * 3) % 10) as f64 / 10.0 - 0.5;
                rows.push(vec![cx + dx, cy + dy]);
                labels.push(ci);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    /// Deterministic pseudo-random points, with occasional duplicated rows
    /// so empty clusters and exact distance ties actually occur.
    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
        for i in 0..n {
            if i > 0 && next() % 5 == 0 {
                let dup = (next() as usize) % rows.len();
                rows.push(rows[dup].clone());
            } else {
                rows.push(
                    (0..d)
                        .map(|_| ((next() >> 11) as f64 / (1u64 << 53) as f64) - 0.5)
                        .collect(),
                );
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let (points, truth) = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 7,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        // Every ground-truth blob must map to exactly one cluster id.
        for blob in 0..3 {
            let ids: std::collections::HashSet<usize> = truth
                .iter()
                .zip(result.assignments.iter())
                .filter(|(t, _)| **t == blob)
                .map(|(_, a)| *a)
                .collect();
            assert_eq!(ids.len(), 1, "blob {blob} split across clusters");
        }
        assert!(result.inertia < 20.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let points = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 0.0], vec![0.0, 5.0]]).unwrap();
        let cfg = KMeansConfig {
            k: 3,
            seed: 1,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        assert!(result.inertia < 1e-20);
        let unique: std::collections::HashSet<_> = result.assignments.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let points = Matrix::from_rows(&[vec![1.0], vec![3.0], vec![5.0]]).unwrap();
        let cfg = KMeansConfig {
            k: 1,
            seed: 3,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        assert!((result.centroids[(0, 0)] - 3.0).abs() < 1e-9);
        assert_eq!(result.assignments, vec![0, 0, 0]);
    }

    #[test]
    fn rejects_invalid_arguments() {
        let points = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut cfg = KMeansConfig {
            k: 0,
            ..KMeansConfig::default()
        };
        assert!(kmeans(&points, &cfg).is_err());
        cfg.k = 5;
        assert!(kmeans(&points, &cfg).is_err());
        cfg.k = 1;
        assert!(kmeans(&Matrix::zeros(0, 2), &cfg).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (points, _) = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 99,
            ..Default::default()
        };
        let r1 = kmeans(&points, &cfg).unwrap();
        let r2 = kmeans(&points, &cfg).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.inertia, r2.inertia);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let points = Matrix::from_rows(&vec![vec![1.0, 1.0]; 6]).unwrap();
        let cfg = KMeansConfig {
            k: 2,
            seed: 5,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        assert!(result.inertia < 1e-18);
    }

    /// The tentpole guarantee: bounds-pruned k-means reproduces naive
    /// Lloyd's bit for bit — assignments, centroids, inertia, iteration
    /// count — across a spread of shapes, cluster counts and seeds,
    /// including inputs with duplicate rows (exact ties, empty clusters).
    #[test]
    fn pruned_bit_identical_to_naive_lloyd() {
        for (n, d, k, seed) in [
            (60usize, 2usize, 3usize, 11u64),
            (120, 8, 10, 12),
            (40, 3, 40, 13),
            (200, 16, 25, 14),
            (30, 1, 4, 15),
            (50, 5, 2, 16),
        ] {
            let points = random_points(n, d, seed);
            let base = KMeansConfig {
                k,
                n_init: 2,
                seed: seed ^ 0x5eed,
                ..Default::default()
            };
            let pruned = kmeans(
                &points,
                &KMeansConfig {
                    algorithm: KMeansAlgorithm::BoundsPruned,
                    ..base.clone()
                },
            )
            .unwrap();
            let naive = kmeans(
                &points,
                &KMeansConfig {
                    algorithm: KMeansAlgorithm::NaiveLloyd,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(
                pruned.assignments, naive.assignments,
                "assignments diverged at n={n} d={d} k={k}"
            );
            assert!(
                pruned.centroids.approx_eq(&naive.centroids, 0.0),
                "centroids diverged at n={n} d={d} k={k}"
            );
            assert_eq!(
                pruned.inertia.to_bits(),
                naive.inertia.to_bits(),
                "inertia diverged at n={n} d={d} k={k}"
            );
            assert_eq!(pruned.iterations, naive.iterations);
        }
    }

    /// Satellite regression: a fixed seed reproduces identical centroids
    /// across repeated runs *and* across thread counts, including when
    /// empty clusters force the deterministic farthest-point reseed.
    #[test]
    fn reseed_and_threading_are_deterministic() {
        let _guard = parallel::TEST_THREAD_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Duplicate-heavy points with k close to n make empty clusters
        // likely after the first update step.
        let points = random_points(48, 3, 77);
        let cfg = KMeansConfig {
            k: 24,
            n_init: 3,
            seed: 4242,
            ..Default::default()
        };
        let baseline = kmeans(&points, &cfg).unwrap();
        for threads in [1usize, 2, 4, 8] {
            parallel::set_num_threads(threads);
            let run = kmeans(&points, &cfg).unwrap();
            parallel::set_num_threads(0);
            assert!(
                run.centroids.approx_eq(&baseline.centroids, 0.0),
                "centroids differ at {threads} threads"
            );
            assert_eq!(run.assignments, baseline.assignments);
            assert_eq!(run.inertia.to_bits(), baseline.inertia.to_bits());
        }
    }

    #[test]
    fn multiple_empty_clusters_get_distinct_reseeds() {
        // All mass on two coincident groups, k = 4: at least two clusters
        // end up empty and must be reseeded from *different* points.
        let mut rows = vec![vec![0.0, 0.0]; 10];
        rows.extend(vec![vec![9.0, 9.0]; 10]);
        rows.push(vec![30.0, -30.0]);
        rows.push(vec![-30.0, 30.0]);
        let points = Matrix::from_rows(&rows).unwrap();
        let cfg = KMeansConfig {
            k: 4,
            seed: 9,
            n_init: 1,
            ..Default::default()
        };
        let result = kmeans(&points, &cfg).unwrap();
        // With 4 well-spread groups/outliers and the farthest-point reseed,
        // no centroid may remain duplicated on convergence.
        let mut seen: Vec<&[f64]> = Vec::new();
        for c in 0..4 {
            let row = result.centroids.row(c);
            assert!(
                !seen.contains(&row),
                "duplicate centroid {c} after reseeding"
            );
            seen.push(row);
        }
    }
}
