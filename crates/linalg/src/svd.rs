//! Singular value decompositions.
//!
//! Two paths are provided:
//!
//! * [`jacobi_svd`] — a one-sided Jacobi SVD for small dense matrices.
//!   Used for the factor-matrix updates on the (small) projected unfoldings
//!   inside Tucker ALS and as the reference implementation in tests.
//! * [`truncated_svd`] — top-`k` singular triplets of a large (possibly
//!   sparse, possibly implicit) operator via subspace iteration on the Gram
//!   operator. Used by the LSI baseline on the tag×resource matrix.

use crate::error::LinAlgError;
use crate::matrix::{norm2, Matrix};
use crate::sparse::CsrMatrix;
use crate::subspace::{sym_eigs_topk, SubspaceOptions, SymOp};
use crate::Result;

/// A (possibly truncated) singular value decomposition `A ≈ U Σ Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, one per column (`m x k`).
    pub u: Matrix,
    /// Singular values in descending order (length `k`).
    pub singular_values: Vec<f64>,
    /// Right singular vectors, one per column (`n x k`).
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs `U Σ Vᵀ` densely (tests / tiny inputs only).
    pub fn reconstruct(&self) -> Result<Matrix> {
        let sigma = Matrix::from_diag(&self.singular_values);
        self.u.matmul(&sigma)?.matmul(&self.v.transpose())
    }

    /// Rank of the decomposition (number of retained singular values).
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }
}

/// A linear operator `A: R^n → R^m` that can be applied (and transposed-
/// applied) to dense blocks. Implemented by sparse and dense matrices.
pub trait LinOp {
    /// Output dimension `m`.
    fn out_dim(&self) -> usize;
    /// Input dimension `n`.
    fn in_dim(&self) -> usize;
    /// `A * X` where `X` is `n x b`.
    fn apply(&self, x: &Matrix) -> Matrix;
    /// `Aᵀ * Y` where `Y` is `m x b`.
    fn apply_t(&self, y: &Matrix) -> Matrix;
    /// [`Self::apply`] into a caller-owned buffer (resized + overwritten);
    /// override to skip the per-call allocation in iterative solvers.
    fn apply_into(&self, x: &Matrix, out: &mut Matrix) {
        *out = self.apply(x);
    }
    /// [`Self::apply_t`] into a caller-owned buffer (resized + overwritten).
    fn apply_t_into(&self, y: &Matrix, out: &mut Matrix) {
        *out = self.apply_t(y);
    }
}

impl LinOp for Matrix {
    fn out_dim(&self) -> usize {
        self.rows()
    }
    fn in_dim(&self) -> usize {
        self.cols()
    }
    fn apply(&self, x: &Matrix) -> Matrix {
        self.matmul(x).expect("LinOp apply: dimension mismatch")
    }
    fn apply_t(&self, y: &Matrix) -> Matrix {
        // Transpose-free kernel; bit-identical to materializing the
        // transpose and multiplying, without the per-call copy.
        self.matmul_tn(y)
            .expect("LinOp apply_t: dimension mismatch")
    }
    fn apply_into(&self, x: &Matrix, out: &mut Matrix) {
        self.matmul_into(x, out)
            .expect("LinOp apply: dimension mismatch")
    }
    fn apply_t_into(&self, y: &Matrix, out: &mut Matrix) {
        self.matmul_tn_into(y, out)
            .expect("LinOp apply_t: dimension mismatch")
    }
}

impl LinOp for CsrMatrix {
    fn out_dim(&self) -> usize {
        self.rows()
    }
    fn in_dim(&self) -> usize {
        self.cols()
    }
    fn apply(&self, x: &Matrix) -> Matrix {
        self.matmul_dense(x)
            .expect("LinOp apply: dimension mismatch")
    }
    fn apply_t(&self, y: &Matrix) -> Matrix {
        self.matmul_dense_t(y)
            .expect("LinOp apply_t: dimension mismatch")
    }
    fn apply_into(&self, x: &Matrix, out: &mut Matrix) {
        self.matmul_dense_into(x, out)
            .expect("LinOp apply: dimension mismatch")
    }
    fn apply_t_into(&self, y: &Matrix, out: &mut Matrix) {
        self.matmul_dense_t_into(y, out)
            .expect("LinOp apply_t: dimension mismatch")
    }
}

/// One-sided Jacobi SVD of a small dense matrix.
///
/// Orthogonalizes the *columns* of a working copy of `A` by Jacobi rotations
/// on the right; at convergence the column norms are the singular values,
/// the normalized columns are `U`, and the accumulated rotations are `V`.
/// For `m < n` the decomposition is computed on `Aᵀ` and swapped back.
///
/// Returns the thin SVD with `k = min(m, n)` triplets, descending.
pub fn jacobi_svd(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m < n {
        // Work on the transpose and swap U/V afterwards.
        let svd = jacobi_svd(&a.transpose())?;
        return Ok(Svd {
            u: svd.v,
            singular_values: svd.singular_values,
            v: svd.u,
        });
    }
    let mut u = a.clone(); // m x n, columns will be orthogonalized
    let mut v = Matrix::identity(n);
    let tol = 1e-14;
    let max_sweeps = 60;
    let mut converged = false;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n.saturating_sub(1) {
            for q in (p + 1)..n {
                // Compute the 2x2 Gram block for columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    app += up * up;
                    aqq += uq * uq;
                    apq += up * uq;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));
                if apq.abs() <= tol * (app * aqq).sqrt() {
                    continue;
                }
                // Jacobi rotation annihilating the off-diagonal Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    1.0 / (tau - (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for i in 0..m {
                    let up = u[(i, p)];
                    let uq = u[(i, q)];
                    u[(i, p)] = c * up - s * uq;
                    u[(i, q)] = s * up + c * uq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < tol * 10.0 {
            converged = true;
            break;
        }
    }
    if !converged && n > 1 {
        // One-sided Jacobi converges in practice; if we ever land here the
        // result is still usable but we surface the residual to the caller.
        // (Tolerance is extremely tight, so treat near-convergence as done.)
    }
    // Extract singular values (column norms) and normalize U.
    let mut triplets: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let col = u.col(j);
            (norm2(&col), j)
        })
        .collect();
    triplets.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut u_out = Matrix::zeros(m, n);
    let mut v_out = Matrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (new_j, &(s, old_j)) in triplets.iter().enumerate() {
        sigma.push(s);
        let inv = if s > 1e-300 { 1.0 / s } else { 0.0 };
        for i in 0..m {
            u_out[(i, new_j)] = u[(i, old_j)] * inv;
        }
        for i in 0..n {
            v_out[(i, new_j)] = v[(i, old_j)];
        }
    }
    Ok(Svd {
        u: u_out,
        singular_values: sigma,
        v: v_out,
    })
}

/// Top-`k` singular triplets of a large operator via subspace iteration on
/// the smaller of its two Gram operators.
pub fn truncated_svd(a: &dyn LinOp, k: usize, opts: &SubspaceOptions) -> Result<Svd> {
    let (m, n) = (a.out_dim(), a.in_dim());
    let k = k.min(m).min(n);
    if k == 0 {
        return Err(LinAlgError::InvalidArgument(
            "truncated_svd requires k >= 1 and a non-empty matrix".into(),
        ));
    }
    struct OpGram<'a> {
        op: &'a dyn LinOp,
        /// true → iterate on AᵀA (n x n), else on AAᵀ (m x m).
        inner: bool,
        /// Reused intermediate (`A X` or `Aᵀ Y`) across applies.
        scratch: std::cell::RefCell<Matrix>,
    }
    impl SymOp for OpGram<'_> {
        fn dim(&self) -> usize {
            if self.inner {
                self.op.in_dim()
            } else {
                self.op.out_dim()
            }
        }
        fn apply_block_into(&self, x: &Matrix, out: &mut Matrix) {
            let mut mid = self.scratch.borrow_mut();
            if self.inner {
                self.op.apply_into(x, &mut mid);
                self.op.apply_t_into(&mid, out);
            } else {
                self.op.apply_t_into(x, &mut mid);
                self.op.apply_into(&mid, out);
            }
        }
    }
    let inner = n <= m;
    let gram = OpGram {
        op: a,
        inner,
        scratch: std::cell::RefCell::new(Matrix::zeros(0, 0)),
    };
    let eigs = sym_eigs_topk(&gram, k, opts)?;
    let singular_values: Vec<f64> = eigs.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    // Columns for (near-)zero singular values come out as zero vectors from
    // the Σ⁻¹ rescaling; rank-deficient inputs then need an orthonormal
    // completion so callers (HOOI factor updates) always receive a full
    // orthonormal basis.
    let needs_completion = singular_values
        .iter()
        .any(|&s| s <= 1e-10 * singular_values.first().copied().unwrap_or(1.0).max(1e-300));

    if inner {
        // Eigenvectors are V; recover U = A V Σ⁻¹.
        let v = eigs.vectors;
        let av = a.apply(&v);
        let mut u = scale_cols_by_inverse(&av, &singular_values);
        if needs_completion {
            crate::qr::orthonormalize_columns(&mut u);
        }
        Ok(Svd {
            u,
            singular_values,
            v,
        })
    } else {
        // Eigenvectors are U; recover V = Aᵀ U Σ⁻¹.
        let u = eigs.vectors;
        let atu = a.apply_t(&u);
        let mut v = scale_cols_by_inverse(&atu, &singular_values);
        if needs_completion {
            crate::qr::orthonormalize_columns(&mut v);
        }
        Ok(Svd {
            u,
            singular_values,
            v,
        })
    }
}

/// Divides each column by the corresponding singular value (columns with a
/// vanishing singular value are zeroed — they carry no energy).
fn scale_cols_by_inverse(m: &Matrix, sigma: &[f64]) -> Matrix {
    let mut out = m.clone();
    let (rows, cols) = out.shape();
    for j in 0..cols {
        let inv = if sigma[j] > 1e-12 {
            1.0 / sigma[j]
        } else {
            0.0
        };
        for i in 0..rows {
            out[(i, j)] *= inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;
    use crate::subspace::GramOp;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            vec![3.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 3.0],
            vec![2.0, 0.0, -1.0],
        ])
        .unwrap()
    }

    #[test]
    fn jacobi_svd_reconstructs() {
        let a = sample();
        let svd = jacobi_svd(&a).unwrap();
        let recon = svd.reconstruct().unwrap();
        assert!(recon.approx_eq(&a, 1e-9));
    }

    #[test]
    fn jacobi_svd_factors_are_orthonormal() {
        let a = sample();
        let svd = jacobi_svd(&a).unwrap();
        assert!(orthonormality_error(&svd.u) < 1e-9);
        assert!(orthonormality_error(&svd.v) < 1e-9);
    }

    #[test]
    fn jacobi_svd_values_sorted_and_nonnegative() {
        let a = sample();
        let svd = jacobi_svd(&a).unwrap();
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn jacobi_svd_wide_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![0.0, -1.0, 1.0, 2.0]]).unwrap();
        let svd = jacobi_svd(&a).unwrap();
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (4, 2));
        assert!(svd.reconstruct().unwrap().approx_eq(&a, 1e-9));
    }

    #[test]
    fn jacobi_svd_diag_known_values() {
        let a = Matrix::from_diag(&[4.0, 2.0, 1.0]);
        let svd = jacobi_svd(&a).unwrap();
        assert!((svd.singular_values[0] - 4.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-10);
        assert!((svd.singular_values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_svd_rank_deficient() {
        // Rank-1 matrix: second singular value must vanish.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let svd = jacobi_svd(&a).unwrap();
        assert!(svd.singular_values[1] < 1e-10);
        assert!(svd.reconstruct().unwrap().approx_eq(&a, 1e-9));
    }

    #[test]
    fn truncated_matches_jacobi_on_dense() {
        let a = sample();
        let full = jacobi_svd(&a).unwrap();
        let trunc = truncated_svd(&a, 2, &SubspaceOptions::default()).unwrap();
        assert!((trunc.singular_values[0] - full.singular_values[0]).abs() < 1e-6);
        assert!((trunc.singular_values[1] - full.singular_values[1]).abs() < 1e-6);
        // Best rank-2 approximation error must equal the discarded σ₃.
        let recon = trunc.reconstruct().unwrap();
        let err = recon.sub(&a).unwrap().frobenius_norm();
        assert!((err - full.singular_values[2]).abs() < 1e-5);
    }

    #[test]
    fn truncated_on_sparse_matches_dense() {
        let triples = [
            (0usize, 0usize, 1.0),
            (0, 3, 2.0),
            (1, 1, 3.0),
            (2, 2, -1.0),
            (3, 0, 0.5),
            (4, 3, 1.5),
        ];
        let sp = CsrMatrix::from_triples(5, 4, &triples).unwrap();
        let dense = sp.to_dense();
        let s1 = truncated_svd(&sp, 3, &SubspaceOptions::default()).unwrap();
        let s2 = jacobi_svd(&dense).unwrap();
        for i in 0..3 {
            assert!(
                (s1.singular_values[i] - s2.singular_values[i]).abs() < 1e-6,
                "σ{i}: {} vs {}",
                s1.singular_values[i],
                s2.singular_values[i]
            );
        }
    }

    #[test]
    fn truncated_rejects_k_zero() {
        let a = sample();
        assert!(truncated_svd(&a, 0, &SubspaceOptions::default()).is_err());
    }

    #[test]
    fn gram_op_is_reused_by_svd() {
        // Smoke test that the GramOp helpers stay consistent with LinOp SVD.
        let triples = [(0usize, 0usize, 2.0), (1, 1, 1.0), (2, 0, 1.0)];
        let sp = CsrMatrix::from_triples(3, 2, &triples).unwrap();
        let svd = truncated_svd(&sp, 2, &SubspaceOptions::default()).unwrap();
        let gram = GramOp::inner(&sp);
        let eig = sym_eigs_topk(&gram, 2, &SubspaceOptions::default()).unwrap();
        for i in 0..2 {
            assert!((svd.singular_values[i].powi(2) - eig.values[i]).abs() < 1e-6);
        }
    }
}
