//! QR factorization and column orthonormalization.
//!
//! Subspace iteration (see [`crate::subspace`]) re-orthonormalizes its block
//! every step; Householder QR provides the numerically robust path and a
//! twice-applied modified Gram–Schmidt provides a cheaper alternative for
//! tall-skinny blocks.

use crate::error::LinAlgError;
use crate::matrix::{dot, norm2, Matrix};
use crate::Result;

/// Thin Householder QR factorization `A = Q R` of an `m x n` matrix with
/// `m >= n`. Returns `(Q, R)` where `Q` is `m x n` with orthonormal columns
/// and `R` is `n x n` upper triangular.
pub fn householder_qr(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinAlgError::InvalidArgument(format!(
            "householder_qr requires rows >= cols, got {m}x{n}"
        )));
    }
    let mut r = a.clone();
    // Householder vectors, stored column by column.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // Build the reflector for column k from rows k..m.
        let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
        let alpha = norm2(&v);
        if alpha == 0.0 {
            // Zero column below the diagonal: identity reflector.
            vs.push(vec![0.0; m - k]);
            continue;
        }
        let sign = if v[0] >= 0.0 { 1.0 } else { -1.0 };
        v[0] += sign * alpha;
        let vnorm = norm2(&v);
        if vnorm > 0.0 {
            for x in &mut v {
                *x /= vnorm;
            }
        }
        // Apply the reflector to the trailing block of R: R ← (I - 2vvᵀ)R.
        for j in k..n {
            let mut proj = 0.0;
            for (t, &vt) in v.iter().enumerate() {
                proj += vt * r[(k + t, j)];
            }
            proj *= 2.0;
            for (t, &vt) in v.iter().enumerate() {
                r[(k + t, j)] -= proj * vt;
            }
        }
        vs.push(v);
    }
    // Accumulate Q = H₀ H₁ … H_{n-1} applied to the first n columns of I.
    let mut q = Matrix::zeros(m, n);
    for j in 0..n {
        // e_j
        let mut col = vec![0.0; m];
        col[j] = 1.0;
        // Apply reflectors in reverse order.
        for k in (0..n).rev() {
            let v = &vs[k];
            if v.iter().all(|&x| x == 0.0) {
                continue;
            }
            let mut proj = 0.0;
            for (t, &vt) in v.iter().enumerate() {
                proj += vt * col[k + t];
            }
            proj *= 2.0;
            for (t, &vt) in v.iter().enumerate() {
                col[k + t] -= proj * vt;
            }
        }
        q.set_col(j, &col);
    }
    // Zero the strictly-lower triangle of R and truncate to n x n.
    let mut r_out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r_out[(i, j)] = r[(i, j)];
        }
    }
    Ok((q, r_out))
}

/// Orthonormalizes the columns of `a` in place using modified Gram–Schmidt,
/// applied twice for numerical stability ("MGS2").
///
/// Columns that become numerically zero (rank deficiency) are replaced with
/// deterministic pseudo-random directions re-orthogonalized against the
/// basis, so the result always has exactly `a.cols()` orthonormal columns —
/// a requirement of subspace iteration, which must not lose block width.
pub fn orthonormalize_columns(a: &mut Matrix) {
    let (m, n) = a.shape();
    debug_assert!(m >= n, "cannot orthonormalize more columns than rows");
    // Work on the transpose so columns are contiguous.
    let mut at = a.transpose();
    let mut fill_seed = 0x9e37_79b9_7f4a_7c15u64;
    for _pass in 0..2 {
        for j in 0..n {
            // Re-orthogonalize column j against all previous columns.
            for i in 0..j {
                let (head, tail) = at.as_mut_slice().split_at_mut(j * m);
                let qi = &head[i * m..(i + 1) * m];
                let cj = &mut tail[..m];
                let r = dot(qi, cj);
                for (c, &q) in cj.iter_mut().zip(qi.iter()) {
                    *c -= r * q;
                }
            }
            let cj = &mut at.as_mut_slice()[j * m..(j + 1) * m];
            let nrm = norm2(cj);
            if nrm <= 1e-13 {
                // Rank deficient: inject a fresh deterministic direction and
                // re-run the projection for this column.
                for x in cj.iter_mut() {
                    fill_seed = fill_seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    *x = ((fill_seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                }
                for i in 0..j {
                    let (head, tail) = at.as_mut_slice().split_at_mut(j * m);
                    let qi = &head[i * m..(i + 1) * m];
                    let cj = &mut tail[..m];
                    let r = dot(qi, cj);
                    for (c, &q) in cj.iter_mut().zip(qi.iter()) {
                        *c -= r * q;
                    }
                }
                let cj = &mut at.as_mut_slice()[j * m..(j + 1) * m];
                let nrm2 = norm2(cj);
                let inv = if nrm2 > 0.0 { 1.0 / nrm2 } else { 0.0 };
                for x in cj.iter_mut() {
                    *x *= inv;
                }
            } else {
                let inv = 1.0 / nrm;
                for x in cj.iter_mut() {
                    *x *= inv;
                }
            }
        }
    }
    *a = at.transpose();
}

/// Measures how far the columns of `q` are from orthonormal:
/// `‖QᵀQ − I‖_F`. Useful in tests and convergence diagnostics.
pub fn orthonormality_error(q: &Matrix) -> f64 {
    let g = q.gram();
    let n = g.rows();
    let mut err = 0.0;
    for i in 0..n {
        for j in 0..n {
            let target = if i == j { 1.0 } else { 0.0 };
            let d = g[(i, j)] - target;
            err += d * d;
        }
    }
    err.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall_matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![2.0, -1.0, 3.0],
            vec![1.0, 1.0, 1.0],
            vec![-2.0, 0.5, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = tall_matrix();
        let (q, r) = householder_qr(&a).unwrap();
        let qr = q.matmul(&r).unwrap();
        assert!(qr.approx_eq(&a, 1e-10), "QR must reconstruct A");
    }

    #[test]
    fn qr_q_is_orthonormal() {
        let a = tall_matrix();
        let (q, _) = householder_qr(&a).unwrap();
        assert!(orthonormality_error(&q) < 1e-10);
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let a = tall_matrix();
        let (_, r) = householder_qr(&a).unwrap();
        for i in 0..r.rows() {
            for j in 0..i {
                assert!(r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_rejects_wide_matrices() {
        let wide = Matrix::zeros(2, 3);
        assert!(householder_qr(&wide).is_err());
    }

    #[test]
    fn qr_handles_zero_column() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.0], vec![1.0, 0.0]]).unwrap();
        let (q, r) = householder_qr(&a).unwrap();
        let qr = q.matmul(&r).unwrap();
        assert!(qr.approx_eq(&a, 1e-10));
    }

    #[test]
    fn mgs_orthonormalizes() {
        let mut a = tall_matrix();
        orthonormalize_columns(&mut a);
        assert!(orthonormality_error(&a) < 1e-10);
    }

    #[test]
    fn mgs_spans_same_space() {
        // Orthonormalized columns must span the original column space:
        // projecting the original columns onto the new basis must be lossless.
        let a = tall_matrix();
        let mut q = a.clone();
        orthonormalize_columns(&mut q);
        // P = Q Qᵀ A should equal A.
        let qt_a = q.transpose().matmul(&a).unwrap();
        let p = q.matmul(&qt_a).unwrap();
        assert!(p.approx_eq(&a, 1e-9));
    }

    #[test]
    fn mgs_recovers_from_rank_deficiency() {
        // Two identical columns: the second must be replaced by something
        // orthogonal rather than collapsing to zero.
        let mut a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        orthonormalize_columns(&mut a);
        assert!(orthonormality_error(&a) < 1e-8);
    }

    #[test]
    fn mgs_on_square_identity_is_stable() {
        let mut a = Matrix::identity(4);
        orthonormalize_columns(&mut a);
        assert!(a.approx_eq(&Matrix::identity(4), 1e-12));
    }
}
