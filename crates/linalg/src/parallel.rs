//! Small fork–join helpers built on `crossbeam::thread::scope`.
//!
//! The heavy kernels in this repository (TTM chains, pairwise tag distances,
//! dense matmul) are embarrassingly parallel over contiguous ranges, so a
//! minimal chunked `parallel_for` is all we need — no work stealing, no
//! shared mutable state beyond disjoint output slices.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by the parallel kernels.
///
/// Defaults to the machine's available parallelism and can be lowered (e.g.
/// to 1 for deterministic profiling) via [`set_num_threads`].
pub fn num_threads() -> usize {
    // ORDER: independent config cell — no data is published through
    // it, so Relaxed is the documented default.
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    default_threads()
}

/// Machine parallelism, probed once and cached: `available_parallelism`
/// reads cgroup quota files on Linux (it allocates and costs a few µs),
/// which would break the zero-allocation steady-state serving paths
/// that consult [`num_threads`] on every query.
fn default_threads() -> usize {
    static DEFAULT: AtomicUsize = AtomicUsize::new(0);
    // ORDER: idempotent probe cache — racing initializers store the
    // same value, so Relaxed loads/stores need no edge between them.
    match DEFAULT.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism().map_or(1, |n| n.get());
            DEFAULT.store(n, Ordering::Relaxed); // ORDER: same idempotent cache.
            n
        }
        n => n,
    }
}

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker-thread count for all parallel kernels in this
/// process. Passing `0` restores the default (machine parallelism).
pub fn set_num_threads(n: usize) {
    // ORDER: independent config cell; see `num_threads`.
    CONFIGURED_THREADS.store(n, Ordering::Relaxed);
}

/// Serializes tests that mutate the process-global thread count: libtest
/// runs tests concurrently in one process, so without this lock a test's
/// "serial" baseline could silently run under another test's override.
#[cfg(test)]
pub(crate) static TEST_THREAD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f(range)` over `0..len` split into roughly equal contiguous ranges,
/// one per worker thread. `f` receives the half-open index range it owns.
///
/// Falls back to a single inline call when `len` is small or only one thread
/// is configured.
pub fn parallel_ranges<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = num_threads();
    if threads <= 1 || len <= min_chunk {
        f(0..len);
        return;
    }
    let nchunks = threads.min(len.div_ceil(min_chunk.max(1))).max(1);
    let chunk = len.div_ceil(nchunks);
    crossbeam::thread::scope(|scope| {
        for c in 0..nchunks {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let f = &f;
            scope.spawn(move |_| f(start..end));
        }
    })
    .expect("parallel_ranges worker thread panicked");
}

/// Maps `f` over `0..len` in parallel, collecting per-chunk outputs and
/// concatenating them in index order.
pub fn parallel_map_collect<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads();
    if threads <= 1 || len <= min_chunk {
        return (0..len).map(f).collect();
    }
    let nchunks = threads.min(len.div_ceil(min_chunk.max(1))).max(1);
    let chunk = len.div_ceil(nchunks);
    let mut pieces: Vec<Vec<T>> = Vec::with_capacity(nchunks);
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nchunks);
        for c in 0..nchunks {
            let start = c * chunk;
            let end = ((c + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let f = &f;
            handles.push(scope.spawn(move |_| (start..end).map(f).collect::<Vec<T>>()));
        }
        for h in handles {
            pieces.push(h.join().expect("parallel_map_collect worker panicked"));
        }
    })
    .expect("parallel_map_collect scope failed");
    let mut out = Vec::with_capacity(len);
    for p in pieces {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_ranges_covers_every_index_once() {
        let len = 1000;
        let counters: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
        parallel_ranges(len, 16, |range| {
            for i in range {
                counters[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_ranges_handles_tiny_inputs() {
        let hit = AtomicU64::new(0);
        parallel_ranges(3, 100, |range| {
            hit.fetch_add(range.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 3);
        parallel_ranges(0, 1, |_| panic!("must not be called with empty range work"));
    }

    #[test]
    fn parallel_map_collect_preserves_order() {
        let out = parallel_map_collect(500, 16, |i| i * 2);
        assert_eq!(out.len(), 500);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn thread_override_round_trips() {
        let _guard = TEST_THREAD_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(1);
        assert_eq!(num_threads(), 1);
        let out = parallel_map_collect(10, 1, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }
}
