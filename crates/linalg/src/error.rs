//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by the numerical kernels in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinAlgError {
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Short name of the operation that failed (e.g. `"matmul"`).
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An iterative method failed to reach its tolerance within the
    /// configured iteration budget.
    NotConverged {
        /// Short name of the method (e.g. `"jacobi_eigen"`).
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Residual at the point the method gave up.
        residual: f64,
    },
    /// A matrix required to be non-singular / full-rank was not.
    Singular(&'static str),
    /// A caller-supplied argument was outside the valid domain.
    InvalidArgument(String),
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinAlgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinAlgError::NotConverged {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            LinAlgError::Singular(op) => write!(f, "singular matrix encountered in {op}"),
            LinAlgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinAlgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = LinAlgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));

        let e = LinAlgError::NotConverged {
            method: "jacobi_eigen",
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("jacobi_eigen"));

        assert!(LinAlgError::Singular("qr").to_string().contains("qr"));
        assert!(LinAlgError::InvalidArgument("k must be > 0".into())
            .to_string()
            .contains("k must be > 0"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinAlgError::Singular("x"));
    }
}
