//! Row-major dense `f64` matrix with the operations needed by Tucker/HOOI,
//! LSI, spectral clustering, and FolkRank.

use crate::error::LinAlgError;
use crate::parallel;
use crate::Result;
use std::ops::{Index, IndexMut};

/// Minimum number of multiply–add operations before [`Matrix::matmul`]
/// switches to the multi-threaded kernel. Below this the thread spawn cost
/// dominates.
const PAR_FLOP_THRESHOLD: usize = 4_000_000;

/// A dense, row-major matrix of `f64` values.
///
/// The layout is a single contiguous `Vec<f64>` of length `rows * cols`,
/// with element `(i, j)` stored at `data[i * cols + j]`. Row-major layout
/// keeps the inner loops of the `ikj`-ordered multiplication kernels
/// sequential in memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix taking ownership of a row-major buffer.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinAlgError::InvalidArgument(format!(
                "buffer of length {} cannot back a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// Returns an error when the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(LinAlgError::InvalidArgument(
                    "ragged rows passed to Matrix::from_rows".into(),
                ));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Overwrites column `j` with `v`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        debug_assert_eq!(v.len(), self.rows);
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.cols + j] = x;
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose: better cache behaviour on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        out
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// Uses an `ikj` loop order (sequential access to both operands' rows)
    /// and transparently switches to a row-partitioned multi-threaded kernel
    /// for large problems.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Self::matmul`] writing into a caller-owned output buffer, so hot
    /// loops (subspace iteration, HOOI sweeps) can reuse one allocation.
    /// `out` is resized and overwritten; its previous contents are ignored.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(LinAlgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        out.reset(self.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        if flops >= PAR_FLOP_THRESHOLD && parallel::num_threads() > 1 {
            self.matmul_into_par(other, out);
        } else {
            self.matmul_into_serial(other, out, 0);
        }
        Ok(())
    }

    /// Transposed matrix–matrix product `selfᵀ * other`, computed without
    /// materializing the transpose.
    ///
    /// Loop order is `kij` with the zero-skip on `self[k][i]`, which makes
    /// every output element accumulate its `k` terms in exactly the order
    /// (and with exactly the skips) of `self.transpose().matmul(other)` —
    /// the result is bit-identical to that reference while saving the
    /// transpose copy per call.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Self::matmul_tn`] writing into a caller-owned buffer (resized and
    /// overwritten).
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.rows != other.rows {
            return Err(LinAlgError::DimensionMismatch {
                op: "matmul_tn",
                lhs: (self.cols, self.rows),
                rhs: other.shape(),
            });
        }
        out.reset(self.cols, other.cols);
        let n = other.cols;
        let flops = self.rows * self.cols * other.cols;
        if flops >= PAR_FLOP_THRESHOLD && parallel::num_threads() > 1 {
            // Partition output rows (= columns of self) into bands; every
            // band scans all rows of `self` in ascending k, so per-element
            // accumulation order matches the serial kernel exactly.
            let bands = split_row_bands(&mut out.data, self.cols, n);
            crossbeam::thread::scope(|scope| {
                for (start_row, band) in bands {
                    scope.spawn(move |_| {
                        let band_rows = band.len() / n.max(1);
                        for k in 0..self.rows {
                            let a_row = self.row(k);
                            let b_row = other.row(k);
                            for bi in 0..band_rows {
                                let aki = a_row[start_row + bi];
                                if aki == 0.0 {
                                    continue;
                                }
                                let out_row = &mut band[bi * n..(bi + 1) * n];
                                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                                    *o += aki * b;
                                }
                            }
                        }
                    });
                }
            })
            .expect("matmul_tn worker thread panicked");
        } else {
            for k in 0..self.rows {
                let a_row = self.row(k);
                let b_row = other.row(k);
                for (i, &aki) in a_row.iter().enumerate() {
                    if aki == 0.0 {
                        continue;
                    }
                    let out_row = &mut out.data[i * n..(i + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aki * b;
                    }
                }
            }
        }
        Ok(())
    }

    /// Resizes to `rows x cols` (reusing the allocation when possible) and
    /// zero-fills.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Serial `ikj` kernel writing into `out` starting at `row_offset` of `self`.
    fn matmul_into_serial(&self, other: &Matrix, out: &mut Matrix, row_offset: usize) {
        let n = other.cols;
        let k_dim = self.cols;
        for i in 0..out.rows {
            let a_row = self.row(i + row_offset);
            let out_row = out.row_mut(i);
            for (k, &aik) in a_row.iter().enumerate().take(k_dim) {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * n..(k + 1) * n];
                for j in 0..n {
                    out_row[j] += aik * b_row[j];
                }
            }
        }
    }

    /// Multi-threaded kernel: output rows are partitioned into contiguous
    /// bands, one band per thread.
    fn matmul_into_par(&self, other: &Matrix, out: &mut Matrix) {
        let nthreads = parallel::num_threads().min(self.rows.max(1));
        let n = other.cols;
        let rows_per = self.rows.div_ceil(nthreads);
        let bands: Vec<(usize, &mut [f64])> = {
            let mut bands = Vec::new();
            let mut rest = out.data.as_mut_slice();
            let mut start_row = 0;
            while !rest.is_empty() {
                let take = (rows_per * n).min(rest.len());
                let (band, tail) = rest.split_at_mut(take);
                bands.push((start_row, band));
                start_row += take / n;
                rest = tail;
            }
            bands
        };
        crossbeam::thread::scope(|scope| {
            for (start_row, band) in bands {
                scope.spawn(move |_| {
                    let band_rows = band.len() / n;
                    for bi in 0..band_rows {
                        let i = start_row + bi;
                        let a_row = self.row(i);
                        let out_row = &mut band[bi * n..(bi + 1) * n];
                        for (k, &aik) in a_row.iter().enumerate() {
                            if aik == 0.0 {
                                continue;
                            }
                            let b_row = &other.data[k * n..(k + 1) * n];
                            for j in 0..n {
                                out_row[j] += aik * b_row[j];
                            }
                        }
                    }
                });
            }
        })
        .expect("matmul worker thread panicked");
    }

    /// Matrix–vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinAlgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinAlgError::DimensionMismatch {
                op: "matvec_t",
                lhs: self.shape(),
                rhs: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &r) in out.iter_mut().zip(row.iter()) {
                *o += xi * r;
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (`cols x cols`), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..n {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                let grow = &mut g.data[a * n..(a + 1) * n];
                for b in a..n {
                    grow[b] += ra * row[b];
                }
            }
        }
        // Mirror the upper triangle.
        for a in 0..n {
            for b in (a + 1)..n {
                g.data[b * n + a] = g.data[a * n + b];
            }
        }
        g
    }

    /// Outer Gram matrix `self * selfᵀ` (`rows x rows`).
    pub fn gram_t(&self) -> Matrix {
        let m = self.rows;
        let mut g = Matrix::zeros(m, m);
        for i in 0..m {
            let ri = self.row(i);
            for j in i..m {
                let rj = self.row(j);
                let mut acc = 0.0;
                for (a, b) in ri.iter().zip(rj.iter()) {
                    acc += a * b;
                }
                g.data[i * m + j] = acc;
                g.data[j * m + i] = acc;
            }
        }
        g
    }

    /// Frobenius norm `sqrt(sum of squared entries)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of squared entries (squared Frobenius norm).
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>()
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinAlgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }

    /// Extracts the sub-matrix with rows `r0..r1` and columns `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Result<Matrix> {
        if r1 > self.rows || c1 > self.cols || r0 > r1 || c0 > c1 {
            return Err(LinAlgError::InvalidArgument(format!(
                "submatrix [{r0}..{r1}, {c0}..{c1}] out of bounds for {}x{}",
                self.rows, self.cols
            )));
        }
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for i in r0..r1 {
            let src = &self.data[i * self.cols + c0..i * self.cols + c1];
            out.row_mut(i - r0).copy_from_slice(src);
        }
        Ok(out)
    }

    /// Keeps only the first `k` columns.
    pub fn truncate_cols(&self, k: usize) -> Result<Matrix> {
        self.submatrix(0, self.rows, 0, k.min(self.cols))
    }

    /// Maximum absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// `true` when every corresponding entry differs by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Euclidean (L2) distance between rows `i` and `j`.
    pub fn row_distance(&self, i: usize, j: usize) -> f64 {
        let ri = self.row(i);
        let rj = self.row(j);
        ri.iter()
            .zip(rj.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Splits a `rows x cols` row-major buffer into contiguous row bands, one
/// per worker thread, returning `(first_row, band)` pairs.
fn split_row_bands(data: &mut [f64], rows: usize, cols: usize) -> Vec<(usize, &mut [f64])> {
    let nthreads = parallel::num_threads().clamp(1, rows.max(1));
    let rows_per = rows.div_ceil(nthreads).max(1);
    let mut bands = Vec::with_capacity(nthreads);
    let mut rest = data;
    let mut start_row = 0;
    while !rest.is_empty() {
        let take = (rows_per * cols).min(rest.len());
        let (band, tail) = rest.split_at_mut(take);
        bands.push((start_row, band));
        start_row += take / cols.max(1);
        rest = tail;
    }
    bands
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = m2x3();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_and_diag() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3[(0, 0)], 1.0);
        assert_eq!(i3[(0, 1)], 0.0);
        let d = Matrix::from_diag(&[2.0, 3.0]);
        assert_eq!(d[(1, 1)], 3.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = m2x3();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_small_known_result() {
        let a = m2x3();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m2x3();
        let c = a.matmul(&Matrix::identity(3)).unwrap();
        assert!(c.approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = m2x3();
        assert!(matches!(
            a.matmul(&m2x3()),
            Err(LinAlgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Big enough to trip the threaded kernel.
        let n = 180;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let par = a.matmul(&b).unwrap();
        let mut serial = Matrix::zeros(n, n);
        a.matmul_into_serial(&b, &mut serial, 0);
        assert!(par.approx_eq(&serial, 1e-9));
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let a = m2x3();
        assert_eq!(a.matvec(&[1.0, 0.0, 0.0]).unwrap(), vec![1.0, 4.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = m2x3();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
        let gt = a.gram_t();
        let explicit_t = a.matmul(&a.transpose()).unwrap();
        assert!(gt.approx_eq(&explicit_t, 1e-12));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((a.frobenius_norm_sq() - 25.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = m2x3();
        let b = a.scale(2.0);
        let s = b.sub(&a).unwrap();
        assert!(s.approx_eq(&a, 1e-12));
        let sum = a.add(&a).unwrap();
        assert!(sum.approx_eq(&b, 1e-12));
        assert!(a.add(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn submatrix_and_truncate() {
        let a = m2x3();
        let s = a.submatrix(0, 2, 1, 3).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(s[(1, 1)], 6.0);
        let t = a.truncate_cols(2).unwrap();
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t[(1, 1)], 5.0);
        assert!(a.submatrix(0, 3, 0, 1).is_err());
    }

    #[test]
    fn row_distance_known_value() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
        assert!((a.row_distance(0, 1) - 5.0).abs() < 1e-12);
        assert_eq!(a.row_distance(1, 1), 0.0);
    }

    #[test]
    fn set_col_overwrites() {
        let mut a = m2x3();
        a.set_col(0, &[9.0, 8.0]);
        assert_eq!(a[(0, 0)], 9.0);
        assert_eq!(a[(1, 0)], 8.0);
    }

    #[test]
    fn dot_and_norm_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    /// A deterministic pseudo-random matrix with a sprinkling of exact
    /// zeros, so the zero-skip paths are exercised.
    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state.is_multiple_of(7) {
                0.0
            } else {
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }
        })
    }

    #[test]
    fn matmul_tn_bit_identical_to_materialized_transpose() {
        for (m, k, n, seed) in [(17, 5, 9, 1), (64, 24, 24, 2), (3, 1, 7, 3), (1, 6, 1, 4)] {
            let a = pseudo_random(m, k, seed);
            let b = pseudo_random(m, n, seed ^ 0xabcd);
            let fused = a.matmul_tn(&b).unwrap();
            let reference = a.transpose().matmul(&b).unwrap();
            assert_eq!(fused.shape(), (k, n));
            assert!(
                fused.approx_eq(&reference, 0.0),
                "matmul_tn diverged from transpose+matmul at {m}x{k}x{n}"
            );
        }
        assert!(Matrix::zeros(2, 3).matmul_tn(&Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn matmul_tn_parallel_band_path_matches_serial() {
        let _guard = parallel::TEST_THREAD_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // Big enough to cross PAR_FLOP_THRESHOLD when threads > 1.
        let a = pseudo_random(400, 120, 11);
        let b = pseudo_random(400, 100, 12);
        let serial = {
            parallel::set_num_threads(1);
            a.matmul_tn(&b).unwrap()
        };
        parallel::set_num_threads(4);
        let par = a.matmul_tn(&b).unwrap();
        parallel::set_num_threads(0);
        assert!(
            par.approx_eq(&serial, 0.0),
            "parallel matmul_tn not bit-identical"
        );
    }

    #[test]
    fn matmul_into_reuses_dirty_buffer() {
        let a = m2x3();
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let fresh = a.matmul(&b).unwrap();
        let mut scratch = Matrix::from_fn(7, 7, |i, j| (i + j) as f64);
        a.matmul_into(&b, &mut scratch).unwrap();
        assert!(scratch.approx_eq(&fresh, 0.0));
        let mut scratch_tn = Matrix::from_fn(1, 1, |_, _| 42.0);
        a.matmul_tn_into(&fresh, &mut scratch_tn).unwrap();
        assert!(scratch_tn.approx_eq(&a.transpose().matmul(&fresh).unwrap(), 0.0));
    }
}
