//! Spectral clustering (Ng–Jordan–Weiss), exactly as the paper applies it
//! for concept distillation (§V):
//!
//! 1. `Aᵢⱼ = exp(−D̂ᵢⱼ² / σ²)` for `i ≠ j`, `Aᵢᵢ = 0`;
//! 2. `M = diag(row sums of A)`, `L = M^{−1/2} A M^{−1/2}`;
//! 3. `X` = top-`k` eigenvectors of `L` (k stipulated, or chosen to cover
//!    95 % of the spectral mass), rows normalized to unit length;
//! 4. k-means on the rows of `X`; each cluster is a concept.

use crate::error::LinAlgError;
use crate::kmeans::{kmeans, KMeansConfig};
use crate::matrix::Matrix;
use crate::subspace::{sym_eigs_stabilized, sym_eigs_topk, DenseSymOp, SubspaceOptions};
use crate::Result;

/// How the number of clusters `k` is chosen (§V step 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KSelection {
    /// Use exactly this many clusters.
    Fixed(usize),
    /// Choose the smallest `k` whose leading eigenvalues cover this fraction
    /// of the (computed) spectral mass, capped by the inner `usize`.
    VarianceCovered {
        /// Fraction of spectral mass to cover (the paper uses 0.95).
        fraction: f64,
        /// Upper bound on `k` (how many eigenpairs we compute).
        max_k: usize,
    },
}

/// Which eigensolver drives step 3.
///
/// The exhaustive solver polishes *every* computed eigenpair to the subspace
/// tolerance with a Rayleigh–Ritz projection on each iteration — on real
/// affinity matrices, whose deep spectrum is heavily clustered, it routinely
/// burns its whole iteration budget refining eigenpairs the clustering never
/// looks at. The adaptive solver projects only every `rr_period`-th
/// iteration and stops once the quantities the algorithm actually consumes
/// are stable: the variance-rule cluster count `k` and the leading `k` Ritz
/// values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpectralSolver {
    /// Periodic Rayleigh–Ritz + consumption-aware stopping (default).
    Adaptive {
        /// Iterations between Rayleigh–Ritz projections.
        rr_period: usize,
        /// Relative Ritz-value stability demanded of the consumed leading
        /// eigenvalues. Clustering only reads the embedding through k-means
        /// on unit-normalized rows and the 95 %-mass ratio, both stable far
        /// above this precision; the default (10⁻⁶) is already two orders
        /// tighter than the mass rule needs, while the legacy 10⁻⁸ forces
        /// the flat deep spectrum of real affinity matrices to absorb the
        /// entire iteration budget.
        value_tol: f64,
    },
    /// The legacy solver: Rayleigh–Ritz every iteration, full-block
    /// convergence at the subspace tolerance. Kept as the reference path
    /// for equivalence tests and the build-phase bench.
    Exhaustive,
}

impl Default for SpectralSolver {
    fn default() -> Self {
        SpectralSolver::Adaptive {
            rr_period: 6,
            value_tol: 1e-6,
        }
    }
}

/// Configuration for [`spectral_clustering`].
#[derive(Debug, Clone)]
pub struct SpectralConfig {
    /// Gaussian kernel bandwidth σ. `None` → the median heuristic (σ set to
    /// the median pairwise distance), a standard default the paper leaves
    /// unspecified (its worked example uses σ = 1).
    pub sigma: Option<f64>,
    /// Cluster-count selection strategy.
    pub k: KSelection,
    /// k-means settings for the final step.
    pub kmeans: KMeansConfig,
    /// Subspace-iteration settings for the eigenvector computation.
    pub subspace: SubspaceOptions,
    /// Eigensolver strategy; see [`SpectralSolver`].
    pub solver: SpectralSolver,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            sigma: None,
            k: KSelection::VarianceCovered {
                fraction: 0.95,
                max_k: 64,
            },
            kmeans: KMeansConfig::default(),
            subspace: SubspaceOptions::default(),
            solver: SpectralSolver::default(),
        }
    }
}

/// Maps current Ritz estimates to the number of leading eigenpairs whose
/// stability the clustering actually depends on.
type NeededFn = Box<dyn Fn(&[f64]) -> usize>;

/// Result of spectral clustering.
#[derive(Debug, Clone)]
pub struct SpectralResult {
    /// Cluster index per input item.
    pub assignments: Vec<usize>,
    /// Number of clusters used.
    pub k: usize,
    /// σ actually used for the affinity kernel.
    pub sigma: f64,
    /// The normalized spectral embedding (rows = items).
    pub embedding: Matrix,
}

/// Runs Ng–Jordan–Weiss spectral clustering on a symmetric distance matrix.
///
/// `distances` must be square with a zero diagonal; entry `(i, j)` is the
/// (purified) distance `D̂ᵢⱼ` between items `i` and `j`.
pub fn spectral_clustering(distances: &Matrix, config: &SpectralConfig) -> Result<SpectralResult> {
    let n = distances.rows();
    if distances.cols() != n {
        return Err(LinAlgError::InvalidArgument(
            "distance matrix must be square".into(),
        ));
    }
    if n == 0 {
        return Err(LinAlgError::InvalidArgument(
            "cannot cluster zero items".into(),
        ));
    }
    if n == 1 {
        return Ok(SpectralResult {
            assignments: vec![0],
            k: 1,
            sigma: config.sigma.unwrap_or(1.0),
            embedding: Matrix::from_rows(&[vec![1.0]]).expect("1x1"),
        });
    }

    let sigma = match config.sigma {
        Some(s) if s > 0.0 => s,
        Some(_) => {
            return Err(LinAlgError::InvalidArgument(
                "sigma must be positive".into(),
            ));
        }
        None => median_offdiag(distances).max(1e-12),
    };

    // Step 1: affinity matrix.
    let inv_sigma_sq = 1.0 / (sigma * sigma);
    let mut affinity = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let d = distances[(i, j)];
                affinity[(i, j)] = (-d * d * inv_sigma_sq).exp();
            }
        }
    }

    // Step 2: normalized affinity L = M^{-1/2} A M^{-1/2}.
    // Rows whose degree underflows to (near-)zero are isolated points with
    // no meaningful affinities; their 1/√deg would overflow, so they are
    // zeroed instead. The two inverse factors are applied one at a time —
    // computing dᵢ·dⱼ first can overflow to ∞ even when the final product
    // (∞ · subnormal affinity → NaN) is well-defined.
    const DEG_FLOOR: f64 = 1e-100;
    let mut inv_sqrt_deg = vec![0.0; n];
    for (i, slot) in inv_sqrt_deg.iter_mut().enumerate() {
        let deg: f64 = affinity.row(i).iter().sum();
        *slot = if deg > DEG_FLOOR {
            1.0 / deg.sqrt()
        } else {
            0.0
        };
    }
    let mut l = affinity; // reuse the allocation
    for i in 0..n {
        let di = inv_sqrt_deg[i];
        let row = l.row_mut(i);
        for (j, x) in row.iter_mut().enumerate() {
            *x = (*x * di) * inv_sqrt_deg[j];
        }
    }

    // Step 3: leading eigenvectors of L.
    // L is symmetric but indefinite (zero diagonal); subspace iteration
    // needs dominant-magnitude eigenvalues to be the algebraically largest,
    // so we shift: L' = L + I. Eigenvectors are unchanged, eigenvalues move
    // from [-1, 1] to [0, 2], making L' PSD-like for the iteration.
    for i in 0..n {
        l[(i, i)] += 1.0;
    }
    let max_k = match config.k {
        KSelection::Fixed(k) => k,
        KSelection::VarianceCovered { max_k, .. } => max_k,
    }
    .clamp(1, n);
    let op = DenseSymOp::new(&l);
    let eigs = match config.solver {
        SpectralSolver::Exhaustive => sym_eigs_topk(&op, max_k, &config.subspace)?,
        SpectralSolver::Adaptive {
            rr_period,
            value_tol,
        } => {
            // Stop once the quantities the clustering consumes are stable:
            // for a fixed k, the leading k Ritz values; for the variance
            // rule, the chosen k itself plus its leading values. The Ritz
            // values arrive shifted by +1 (L' = L + I), so the selection
            // closure undoes the shift before applying the mass rule.
            let needed: NeededFn = match config.k {
                KSelection::Fixed(k) => {
                    let k = k.clamp(1, n);
                    Box::new(move |_: &[f64]| k)
                }
                KSelection::VarianceCovered { fraction, .. } => Box::new(move |ritz: &[f64]| {
                    let shifted: Vec<f64> = ritz.iter().map(|&v| v - 1.0).collect();
                    choose_k_by_variance(&shifted, fraction)
                }),
            };
            let opts = SubspaceOptions {
                tol: value_tol,
                ..config.subspace.clone()
            };
            sym_eigs_stabilized(&op, max_k, &opts, rr_period, needed.as_ref())?
        }
    };
    // Undo the spectral shift for the k-selection rule.
    let shifted_back: Vec<f64> = eigs.values.iter().map(|&v| v - 1.0).collect();

    let k = match config.k {
        KSelection::Fixed(k) => k.clamp(1, n),
        KSelection::VarianceCovered { fraction, .. } => {
            choose_k_by_variance(&shifted_back, fraction).clamp(1, max_k)
        }
    };

    // Step 3 (cont.): row-normalize the embedding.
    let mut embedding = eigs.vectors.truncate_cols(k)?;
    for i in 0..n {
        let row = embedding.row_mut(i);
        let nrm: f64 = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        if nrm > 1e-300 {
            for x in row.iter_mut() {
                *x /= nrm;
            }
        }
    }

    // Step 4: k-means on the rows.
    let mut km_cfg = config.kmeans.clone();
    km_cfg.k = k.min(n);
    let km = kmeans(&embedding, &km_cfg)?;

    Ok(SpectralResult {
        assignments: km.assignments,
        k: km_cfg.k,
        sigma,
        embedding,
    })
}

/// Median of the strictly-upper-triangular entries.
fn median_offdiag(d: &Matrix) -> f64 {
    let n = d.rows();
    let mut vals: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            vals.push(d[(i, j)]);
        }
    }
    if vals.is_empty() {
        return 1.0;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    vals[vals.len() / 2]
}

/// Smallest `k` such that the top-`k` eigenvalues cover `fraction` of the
/// total positive spectral mass among those computed.
fn choose_k_by_variance(eigenvalues: &[f64], fraction: f64) -> usize {
    let total: f64 = eigenvalues.iter().map(|&v| v.max(0.0)).sum();
    if total <= 0.0 {
        return 1;
    }
    let mut acc = 0.0;
    for (i, &v) in eigenvalues.iter().enumerate() {
        acc += v.max(0.0);
        if acc >= fraction * total {
            return i + 1;
        }
    }
    eigenvalues.len().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance matrix with two obvious groups: {0,1,2} and {3,4}.
    fn two_group_distances() -> Matrix {
        let n = 5;
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let gi = usize::from(i >= 3);
                let gj = usize::from(j >= 3);
                d[(i, j)] = if gi == gj { 0.1 } else { 5.0 };
            }
        }
        d
    }

    #[test]
    fn separates_two_groups_fixed_k() {
        let d = two_group_distances();
        let cfg = SpectralConfig {
            sigma: Some(1.0),
            k: KSelection::Fixed(2),
            ..Default::default()
        };
        let result = spectral_clustering(&d, &cfg).unwrap();
        assert_eq!(result.k, 2);
        assert_eq!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[1], result.assignments[2]);
        assert_eq!(result.assignments[3], result.assignments[4]);
        assert_ne!(result.assignments[0], result.assignments[3]);
    }

    #[test]
    fn median_sigma_heuristic_also_separates() {
        let d = two_group_distances();
        let cfg = SpectralConfig {
            sigma: None,
            k: KSelection::Fixed(2),
            ..Default::default()
        };
        let result = spectral_clustering(&d, &cfg).unwrap();
        assert!(result.sigma > 0.0);
        assert_ne!(result.assignments[0], result.assignments[3]);
    }

    #[test]
    fn variance_rule_picks_small_k_for_two_blocks() {
        let d = two_group_distances();
        let cfg = SpectralConfig {
            sigma: Some(1.0),
            k: KSelection::VarianceCovered {
                fraction: 0.8,
                max_k: 5,
            },
            ..Default::default()
        };
        let result = spectral_clustering(&d, &cfg).unwrap();
        assert!(result.k <= 3, "expected few clusters, got {}", result.k);
    }

    #[test]
    fn paper_running_example_groups_folk_people_vs_laptop() {
        // §V worked example: D̂₁₂ = √1.92, D̂₁₃ = √5.94, D̂₂₃ = √2.36,
        // σ = 1, k = 2 → {folk, people} vs {laptop}.
        let d12 = 1.92f64.sqrt();
        let d13 = 5.94f64.sqrt();
        let d23 = 2.36f64.sqrt();
        let d = Matrix::from_rows(&[
            vec![0.0, d12, d13],
            vec![d12, 0.0, d23],
            vec![d13, d23, 0.0],
        ])
        .unwrap();
        let cfg = SpectralConfig {
            sigma: Some(1.0),
            k: KSelection::Fixed(2),
            ..Default::default()
        };
        let result = spectral_clustering(&d, &cfg).unwrap();
        assert_eq!(
            result.assignments[0], result.assignments[1],
            "folk and people must share a concept"
        );
        assert_ne!(
            result.assignments[0], result.assignments[2],
            "laptop must be its own concept"
        );
    }

    #[test]
    fn single_item_trivial() {
        let d = Matrix::zeros(1, 1);
        let result = spectral_clustering(&d, &SpectralConfig::default()).unwrap();
        assert_eq!(result.assignments, vec![0]);
        assert_eq!(result.k, 1);
    }

    #[test]
    fn rejects_non_square_and_bad_sigma() {
        let d = Matrix::zeros(2, 3);
        assert!(spectral_clustering(&d, &SpectralConfig::default()).is_err());
        let d = two_group_distances();
        let cfg = SpectralConfig {
            sigma: Some(-1.0),
            ..Default::default()
        };
        assert!(spectral_clustering(&d, &cfg).is_err());
    }

    #[test]
    fn choose_k_by_variance_rules() {
        assert_eq!(choose_k_by_variance(&[10.0, 0.1, 0.1], 0.95), 1);
        assert_eq!(choose_k_by_variance(&[5.0, 5.0, 0.0], 0.95), 2);
        assert_eq!(choose_k_by_variance(&[1.0, 1.0, 1.0, 1.0], 1.0), 4);
        assert_eq!(choose_k_by_variance(&[], 0.95), 1);
        assert_eq!(choose_k_by_variance(&[-1.0, -2.0], 0.95), 1);
    }

    #[test]
    fn adaptive_and_exhaustive_solvers_agree_on_clusters() {
        let d = two_group_distances();
        for k in [
            KSelection::Fixed(2),
            KSelection::VarianceCovered {
                fraction: 0.8,
                max_k: 5,
            },
        ] {
            let exhaustive = spectral_clustering(
                &d,
                &SpectralConfig {
                    sigma: Some(1.0),
                    k,
                    solver: SpectralSolver::Exhaustive,
                    ..Default::default()
                },
            )
            .unwrap();
            let adaptive = spectral_clustering(
                &d,
                &SpectralConfig {
                    sigma: Some(1.0),
                    k,
                    solver: SpectralSolver::Adaptive {
                        rr_period: 4,
                        value_tol: 1e-6,
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(exhaustive.k, adaptive.k, "cluster count diverged");
            // Same partition (cluster ids may be permuted).
            for i in 0..5 {
                for j in 0..5 {
                    assert_eq!(
                        exhaustive.assignments[i] == exhaustive.assignments[j],
                        adaptive.assignments[i] == adaptive.assignments[j],
                        "partition diverged at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn embedding_rows_are_unit_length() {
        let d = two_group_distances();
        let cfg = SpectralConfig {
            sigma: Some(1.0),
            k: KSelection::Fixed(2),
            ..Default::default()
        };
        let result = spectral_clustering(&d, &cfg).unwrap();
        for i in 0..result.embedding.rows() {
            let nrm: f64 = result.embedding.row(i).iter().map(|x| x * x).sum();
            assert!((nrm - 1.0).abs() < 1e-9);
        }
    }
}
