//! Block subspace iteration for the leading eigenpairs of large symmetric
//! positive semi-definite operators.
//!
//! This is the workhorse eigensolver of the repository. HOSVD initialization,
//! each HOOI/ALS mode update, truncated SVD for the LSI baseline and the
//! spectral-clustering embedding all reduce to "top-k eigenvectors of a big
//! symmetric operator that we can only afford to apply, never materialize".
//!
//! The operator abstraction [`SymOp`] takes a whole `n x b` block at a time,
//! which lets implementations amortize sparse traversals across the block.

use crate::eigen::jacobi_eigen;
use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::qr::orthonormalize_columns;
use crate::sparse::CsrMatrix;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A symmetric linear operator applied block-wise.
pub trait SymOp {
    /// Dimension `n` of the operator.
    fn dim(&self) -> usize;
    /// Applies the operator to every column of the `n x b` block `x`.
    fn apply_block(&self, x: &Matrix) -> Matrix;
}

/// A dense symmetric matrix viewed as a [`SymOp`].
pub struct DenseSymOp<'a> {
    matrix: &'a Matrix,
}

impl<'a> DenseSymOp<'a> {
    /// Wraps a dense symmetric matrix. Symmetry is the caller's contract.
    pub fn new(matrix: &'a Matrix) -> Self {
        debug_assert_eq!(matrix.rows(), matrix.cols());
        DenseSymOp { matrix }
    }
}

impl SymOp for DenseSymOp<'_> {
    fn dim(&self) -> usize {
        self.matrix.rows()
    }

    fn apply_block(&self, x: &Matrix) -> Matrix {
        self.matrix
            .matmul(x)
            .expect("DenseSymOp dimension mismatch")
    }
}

/// The Gram operator `A Aᵀ` (or `Aᵀ A`) of a sparse matrix, applied
/// implicitly as two sparse–dense products so the Gram matrix itself is
/// never formed.
pub struct GramOp<'a> {
    matrix: &'a CsrMatrix,
    /// `false`: operator is `A Aᵀ` (dimension = rows of A).
    /// `true`: operator is `Aᵀ A` (dimension = cols of A).
    transposed: bool,
}

impl<'a> GramOp<'a> {
    /// Operator `A Aᵀ` over the row space of `a`.
    pub fn outer(a: &'a CsrMatrix) -> Self {
        GramOp {
            matrix: a,
            transposed: false,
        }
    }

    /// Operator `Aᵀ A` over the column space of `a`.
    pub fn inner(a: &'a CsrMatrix) -> Self {
        GramOp {
            matrix: a,
            transposed: true,
        }
    }
}

impl SymOp for GramOp<'_> {
    fn dim(&self) -> usize {
        if self.transposed {
            self.matrix.cols()
        } else {
            self.matrix.rows()
        }
    }

    fn apply_block(&self, x: &Matrix) -> Matrix {
        if self.transposed {
            // (Aᵀ A) X = Aᵀ (A X)
            let ax = self.matrix.matmul_dense(x).expect("GramOp inner: A*X");
            self.matrix
                .matmul_dense_t(&ax)
                .expect("GramOp inner: Aᵀ*(AX)")
        } else {
            // (A Aᵀ) X = A (Aᵀ X)
            let atx = self.matrix.matmul_dense_t(x).expect("GramOp outer: Aᵀ*X");
            self.matrix
                .matmul_dense(&atx)
                .expect("GramOp outer: A*(AᵀX)")
        }
    }
}

/// Result of [`sym_eigs_topk`].
#[derive(Debug, Clone)]
pub struct TopkEigen {
    /// Leading eigenvalues in descending order (length `k`).
    pub values: Vec<f64>,
    /// `n x k` matrix of corresponding orthonormal eigenvectors.
    pub vectors: Matrix,
    /// Number of subspace iterations performed.
    pub iterations: usize,
}

/// Options controlling [`sym_eigs_topk`].
#[derive(Debug, Clone)]
pub struct SubspaceOptions {
    /// Extra block width beyond `k` to accelerate convergence.
    pub oversample: usize,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Relative change in the Ritz values below which iteration stops.
    pub tol: f64,
    /// Seed for the random starting block.
    pub seed: u64,
}

impl Default for SubspaceOptions {
    fn default() -> Self {
        SubspaceOptions {
            oversample: 8,
            max_iters: 200,
            tol: 1e-8,
            seed: 0x5eed_cafe,
        }
    }
}

/// Computes the `k` leading eigenpairs of a symmetric PSD operator using
/// block subspace iteration with a Rayleigh–Ritz projection.
///
/// The operator is applied once per iteration to an `n x (k + oversample)`
/// block; convergence is declared when the top-`k` Ritz values change by
/// less than `tol` relatively between iterations.
pub fn sym_eigs_topk(op: &dyn SymOp, k: usize, opts: &SubspaceOptions) -> Result<TopkEigen> {
    let n = op.dim();
    if k == 0 {
        return Err(LinAlgError::InvalidArgument("k must be > 0".into()));
    }
    if k > n {
        return Err(LinAlgError::InvalidArgument(format!(
            "requested {k} eigenpairs of a dimension-{n} operator"
        )));
    }
    let block = (k + opts.oversample).min(n);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut q = Matrix::from_fn(n, block, |_, _| rng.gen::<f64>() - 0.5);
    orthonormalize_columns(&mut q);

    let mut prev_ritz = vec![f64::INFINITY; k];
    let mut iterations = 0;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        let z = op.apply_block(&q);
        // Rayleigh–Ritz on the current subspace: B = Qᵀ Z = Qᵀ A Q.
        let b = q.transpose().matmul(&z)?;
        // Symmetrize to wash out round-off before Jacobi.
        let b_sym = b.add(&b.transpose())?.scale(0.5);
        let eig = jacobi_eigen(&b_sym, 1e-12)?;
        // Rotate the block onto the Ritz vectors and advance: Q ← orth(Z U).
        let zu = z.matmul(&eig.vectors)?;
        q = zu;
        orthonormalize_columns(&mut q);

        let ritz: Vec<f64> = eig.values.iter().take(k).copied().collect();
        let converged = ritz.iter().zip(prev_ritz.iter()).all(|(&cur, &prev)| {
            let scale = cur.abs().max(prev.abs()).max(1e-30);
            (cur - prev).abs() <= opts.tol * scale
        });
        prev_ritz = ritz;
        if converged && it > 0 {
            break;
        }
    }

    // Final Rayleigh–Ritz to extract clean eigenpairs from the converged
    // subspace.
    let z = op.apply_block(&q);
    let b = q.transpose().matmul(&z)?;
    let b_sym = b.add(&b.transpose())?.scale(0.5);
    let eig = jacobi_eigen(&b_sym, 1e-12)?;
    let mut vectors = q.matmul(&eig.vectors)?;
    vectors = vectors.truncate_cols(k)?;
    let values = eig.values.into_iter().take(k).collect();
    Ok(TopkEigen {
        values,
        vectors,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;

    fn spd_matrix() -> Matrix {
        // B Bᵀ + small diagonal: SPD with a clear spectral gap.
        let b = Matrix::from_rows(&[
            vec![5.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.5],
            vec![1.0, 1.0, 0.1],
            vec![0.5, -1.0, 0.2],
        ])
        .unwrap();
        b.gram_t()
    }

    #[test]
    fn topk_matches_full_jacobi() {
        let a = spd_matrix();
        let full = jacobi_eigen(&a, 1e-13).unwrap();
        let op = DenseSymOp::new(&a);
        let top = sym_eigs_topk(&op, 3, &SubspaceOptions::default()).unwrap();
        for i in 0..3 {
            assert!(
                (top.values[i] - full.values[i]).abs() < 1e-6 * full.values[0].max(1.0),
                "eigenvalue {i}: {} vs {}",
                top.values[i],
                full.values[i]
            );
        }
        assert!(orthonormality_error(&top.vectors) < 1e-8);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        let top = sym_eigs_topk(&op, 2, &SubspaceOptions::default()).unwrap();
        // ‖A v − λ v‖ should be tiny for each returned pair.
        for j in 0..2 {
            let v = top.vectors.col(j);
            let av = a.matvec(&v).unwrap();
            let lambda = top.values[j];
            let residual: f64 = av
                .iter()
                .zip(v.iter())
                .map(|(a, b)| (a - lambda * b).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(residual < 1e-6 * lambda.max(1.0), "residual {residual}");
        }
    }

    #[test]
    fn gram_op_outer_matches_dense() {
        let a = CsrMatrix::from_triples(
            4,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, -1.0),
                (3, 2, 0.5),
            ],
        )
        .unwrap();
        let dense_gram = a.to_dense().gram_t();
        let op = GramOp::outer(&a);
        assert_eq!(op.dim(), 4);
        let top = sym_eigs_topk(&op, 2, &SubspaceOptions::default()).unwrap();
        let full = jacobi_eigen(&dense_gram, 1e-13).unwrap();
        assert!((top.values[0] - full.values[0]).abs() < 1e-7);
        assert!((top.values[1] - full.values[1]).abs() < 1e-7);
    }

    #[test]
    fn gram_op_inner_matches_dense() {
        let a = CsrMatrix::from_triples(
            4,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, -1.0),
                (3, 2, 0.5),
            ],
        )
        .unwrap();
        let dense_gram = a.to_dense().gram();
        let op = GramOp::inner(&a);
        assert_eq!(op.dim(), 3);
        let top = sym_eigs_topk(&op, 3, &SubspaceOptions::default()).unwrap();
        let full = jacobi_eigen(&dense_gram, 1e-13).unwrap();
        for i in 0..3 {
            assert!((top.values[i] - full.values[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn rejects_bad_k() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        assert!(sym_eigs_topk(&op, 0, &SubspaceOptions::default()).is_err());
        assert!(sym_eigs_topk(&op, 99, &SubspaceOptions::default()).is_err());
    }

    #[test]
    fn k_equals_n_works() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        let top = sym_eigs_topk(&op, a.rows(), &SubspaceOptions::default()).unwrap();
        let full = jacobi_eigen(&a, 1e-13).unwrap();
        for i in 0..a.rows() {
            assert!((top.values[i] - full.values[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        let opts = SubspaceOptions {
            seed: 42,
            ..Default::default()
        };
        let r1 = sym_eigs_topk(&op, 2, &opts).unwrap();
        let r2 = sym_eigs_topk(&op, 2, &opts).unwrap();
        assert_eq!(r1.values, r2.values);
        assert!(r1.vectors.approx_eq(&r2.vectors, 0.0));
    }
}
