//! Block subspace iteration for the leading eigenpairs of large symmetric
//! positive semi-definite operators.
//!
//! This is the workhorse eigensolver of the repository. HOSVD initialization,
//! each HOOI/ALS mode update, truncated SVD for the LSI baseline and the
//! spectral-clustering embedding all reduce to "top-k eigenvectors of a big
//! symmetric operator that we can only afford to apply, never materialize".
//!
//! The operator abstraction [`SymOp`] takes a whole `n x b` block at a time,
//! which lets implementations amortize sparse traversals across the block.

use crate::eigen::jacobi_eigen;
use crate::error::LinAlgError;
use crate::matrix::Matrix;
use crate::qr::orthonormalize_columns;
use crate::sparse::CsrMatrix;
use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A symmetric linear operator applied block-wise.
pub trait SymOp {
    /// Dimension `n` of the operator.
    fn dim(&self) -> usize;
    /// Applies the operator to every column of the `n x b` block `x`,
    /// writing into `out` (resized and overwritten). Implementations must
    /// not read `out`'s previous contents, so callers can reuse one scratch
    /// buffer across iterations.
    fn apply_block_into(&self, x: &Matrix, out: &mut Matrix);
    /// Allocating convenience wrapper around [`Self::apply_block_into`].
    fn apply_block(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.dim(), x.cols());
        self.apply_block_into(x, &mut out);
        out
    }
}

/// A dense symmetric matrix viewed as a [`SymOp`].
pub struct DenseSymOp<'a> {
    matrix: &'a Matrix,
}

impl<'a> DenseSymOp<'a> {
    /// Wraps a dense symmetric matrix. Symmetry is the caller's contract.
    pub fn new(matrix: &'a Matrix) -> Self {
        debug_assert_eq!(matrix.rows(), matrix.cols());
        DenseSymOp { matrix }
    }
}

impl SymOp for DenseSymOp<'_> {
    fn dim(&self) -> usize {
        self.matrix.rows()
    }

    fn apply_block_into(&self, x: &Matrix, out: &mut Matrix) {
        self.matrix
            .matmul_into(x, out)
            .expect("DenseSymOp dimension mismatch")
    }
}

/// The Gram operator `A Aᵀ` (or `Aᵀ A`) of a sparse matrix, applied
/// implicitly so the Gram matrix itself is never formed.
///
/// The default **fused** apply streams the sparse matrix once per product
/// with a reusable scratch buffer: the inner operator `Aᵀ A X` is computed
/// in a *single* pass over `A` (each row's contribution `t = Aᵢ·X` is
/// scattered back through `Aᵢᵀ` immediately, so the `A X` intermediate is
/// never materialized), and the outer operator reuses one scratch matrix for
/// `Aᵀ X` across calls. Both paths accumulate every output element in
/// exactly the order of the two materialized sparse–dense products, so the
/// fused result is **bit-identical** to [`Self::with_fused`]`(false)` — a
/// guarantee the offline-build equivalence tests rely on.
pub struct GramOp<'a> {
    matrix: &'a CsrMatrix,
    /// `false`: operator is `A Aᵀ` (dimension = rows of A).
    /// `true`: operator is `Aᵀ A` (dimension = cols of A).
    transposed: bool,
    /// `false` selects the legacy two-matmul reference path.
    fused: bool,
    /// Reused intermediate for the outer (`A Aᵀ`) fused path.
    scratch: std::cell::RefCell<Matrix>,
}

impl<'a> GramOp<'a> {
    /// Operator `A Aᵀ` over the row space of `a`.
    pub fn outer(a: &'a CsrMatrix) -> Self {
        GramOp {
            matrix: a,
            transposed: false,
            fused: true,
            scratch: std::cell::RefCell::new(Matrix::zeros(0, 0)),
        }
    }

    /// Operator `Aᵀ A` over the column space of `a`.
    pub fn inner(a: &'a CsrMatrix) -> Self {
        GramOp {
            matrix: a,
            transposed: true,
            fused: true,
            scratch: std::cell::RefCell::new(Matrix::zeros(0, 0)),
        }
    }

    /// Selects between the fused apply (default) and the materialized
    /// two-matmul reference path. Both produce bit-identical results; the
    /// reference exists for equivalence tests and the build-phase bench.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }
}

impl SymOp for GramOp<'_> {
    fn dim(&self) -> usize {
        if self.transposed {
            self.matrix.cols()
        } else {
            self.matrix.rows()
        }
    }

    fn apply_block_into(&self, x: &Matrix, out: &mut Matrix) {
        if !self.fused {
            // Legacy reference: two materialized sparse–dense products.
            *out = if self.transposed {
                // (Aᵀ A) X = Aᵀ (A X)
                let ax = self.matrix.matmul_dense(x).expect("GramOp inner: A*X");
                self.matrix
                    .matmul_dense_t(&ax)
                    .expect("GramOp inner: Aᵀ*(AX)")
            } else {
                // (A Aᵀ) X = A (Aᵀ X)
                let atx = self.matrix.matmul_dense_t(x).expect("GramOp outer: Aᵀ*X");
                self.matrix
                    .matmul_dense(&atx)
                    .expect("GramOp outer: A*(AᵀX)")
            };
            return;
        }
        if self.transposed {
            self.matrix
                .gram_inner_apply_into(x, out)
                .expect("GramOp inner: fused AᵀAX");
        } else {
            let mut atx = self.scratch.borrow_mut();
            self.matrix
                .matmul_dense_t_into(x, &mut atx)
                .expect("GramOp outer: Aᵀ*X");
            self.matrix
                .matmul_dense_into(&atx, out)
                .expect("GramOp outer: A*(AᵀX)");
        }
    }
}

/// Result of [`sym_eigs_topk`].
#[derive(Debug, Clone)]
pub struct TopkEigen {
    /// Leading eigenvalues in descending order (length `k`).
    pub values: Vec<f64>,
    /// `n x k` matrix of corresponding orthonormal eigenvectors.
    pub vectors: Matrix,
    /// Number of subspace iterations performed.
    pub iterations: usize,
}

/// Options controlling [`sym_eigs_topk`].
#[derive(Debug, Clone)]
pub struct SubspaceOptions {
    /// Extra block width beyond `k` to accelerate convergence.
    pub oversample: usize,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Relative change in the Ritz values below which iteration stops.
    pub tol: f64,
    /// Seed for the random starting block.
    pub seed: u64,
}

impl Default for SubspaceOptions {
    fn default() -> Self {
        SubspaceOptions {
            oversample: 8,
            max_iters: 200,
            tol: 1e-8,
            seed: 0x5eed_cafe,
        }
    }
}

/// Computes the `k` leading eigenpairs of a symmetric PSD operator using
/// block subspace iteration with a Rayleigh–Ritz projection.
///
/// The operator is applied once per iteration to an `n x (k + oversample)`
/// block; convergence is declared when the top-`k` Ritz values change by
/// less than `tol` relatively between iterations.
pub fn sym_eigs_topk(op: &dyn SymOp, k: usize, opts: &SubspaceOptions) -> Result<TopkEigen> {
    sym_eigs_stabilized(op, k, opts, 1, &|_| k)
}

/// Block subspace iteration with **periodic** Rayleigh–Ritz and an adaptive
/// stop rule — the engine behind [`sym_eigs_topk`] (which is exactly
/// `rr_period = 1` with the constant stop rule `|_| k`, reproducing the
/// original iterate trajectory bit for bit).
///
/// * Between projections the block advances as plain orthonormalized power
///   steps (`Q ← orth(A Q)`), skipping the `O(n·b²)` projection, the
///   `O(b³)` dense eigensolve and the Ritz rotation — the three most
///   expensive non-apply kernels per iteration.
/// * `needed` maps the current Ritz estimates (all `block` of them, in
///   descending order) to the number of *leading* pairs whose stability
///   actually matters to the caller. Convergence requires that count to be
///   stable across two consecutive projections **and** the leading values
///   to move less than `opts.tol` relatively. Callers like the spectral
///   95 %-variance rule use this to stop polishing deep, near-degenerate
///   eigenpairs that only ever feed a cumulative-mass threshold.
pub fn sym_eigs_stabilized(
    op: &dyn SymOp,
    k: usize,
    opts: &SubspaceOptions,
    rr_period: usize,
    needed: &dyn Fn(&[f64]) -> usize,
) -> Result<TopkEigen> {
    let n = op.dim();
    if k == 0 {
        return Err(LinAlgError::InvalidArgument("k must be > 0".into()));
    }
    if k > n {
        return Err(LinAlgError::InvalidArgument(format!(
            "requested {k} eigenpairs of a dimension-{n} operator"
        )));
    }
    let rr_period = rr_period.max(1);
    let block = (k + opts.oversample).min(n);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut q = Matrix::from_fn(n, block, |_, _| rng.gen::<f64>() - 0.5);
    orthonormalize_columns(&mut q);

    // Scratch reused across every iteration: the applied block, the Ritz
    // rotation target, and the two small projected matrices.
    let mut z = Matrix::zeros(n, block);
    let mut zu = Matrix::zeros(n, block);
    let mut b = Matrix::zeros(block, block);
    let mut b_sym = Matrix::zeros(block, block);

    let mut prev_ritz = vec![f64::INFINITY; k];
    let mut prev_needed = usize::MAX;
    let mut iterations = 0;
    // Whether `q` currently has orthonormal columns. Power steps between
    // projections only rescale column norms — full re-orthonormalization is
    // deferred to the next projection, where it is required for the
    // Rayleigh–Ritz identity `B = Qᵀ A Q`. Basis conditioning degrades at
    // most by (λ₁/λ_b)^rr_period across a period, which the twice-applied
    // modified Gram–Schmidt absorbs for the moderate periods used here.
    let mut q_orthonormal = true;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        if (it + 1) % rr_period != 0 {
            // Power step: advance the subspace, skip the projection.
            op.apply_block_into(&q, &mut z);
            std::mem::swap(&mut q, &mut z);
            normalize_columns(&mut q);
            q_orthonormal = false;
            continue;
        }
        if !q_orthonormal {
            orthonormalize_columns(&mut q);
            q_orthonormal = true;
        }
        op.apply_block_into(&q, &mut z);
        // Rayleigh–Ritz on the current subspace: B = Qᵀ Z = Qᵀ A Q.
        q.matmul_tn_into(&z, &mut b)?;
        // Symmetrize to wash out round-off before Jacobi.
        symmetrize_into(&b, &mut b_sym);
        let eig = jacobi_eigen(&b_sym, 1e-12)?;
        // Rotate the block onto the Ritz vectors and advance: Q ← orth(Z U).
        z.matmul_into(&eig.vectors, &mut zu)?;
        std::mem::swap(&mut q, &mut zu);
        orthonormalize_columns(&mut q);

        let needed_k = needed(&eig.values).clamp(1, k);
        let ritz: Vec<f64> = eig.values.iter().take(k).copied().collect();
        let converged = needed_k == prev_needed
            && ritz
                .iter()
                .take(needed_k)
                .zip(prev_ritz.iter())
                .all(|(&cur, &prev)| {
                    let scale = cur.abs().max(prev.abs()).max(1e-30);
                    (cur - prev).abs() <= opts.tol * scale
                });
        prev_ritz = ritz;
        prev_needed = needed_k;
        if converged && it > 0 {
            break;
        }
    }

    // Final Rayleigh–Ritz to extract clean eigenpairs from the converged
    // subspace.
    if !q_orthonormal {
        orthonormalize_columns(&mut q);
    }
    op.apply_block_into(&q, &mut z);
    q.matmul_tn_into(&z, &mut b)?;
    symmetrize_into(&b, &mut b_sym);
    let eig = jacobi_eigen(&b_sym, 1e-12)?;
    let mut vectors = q.matmul(&eig.vectors)?;
    vectors = vectors.truncate_cols(k)?;
    let values = eig.values.into_iter().take(k).collect();
    Ok(TopkEigen {
        values,
        vectors,
        iterations,
    })
}

/// Rescales every column of `q` to unit Euclidean norm (zero columns are
/// left untouched). Cheap `O(n·b)` conditioning between Rayleigh–Ritz
/// projections.
fn normalize_columns(q: &mut Matrix) {
    let (n, b) = q.shape();
    let mut inv_norms = vec![0.0f64; b];
    for row in q.as_slice().chunks_exact(b) {
        for (acc, &x) in inv_norms.iter_mut().zip(row.iter()) {
            *acc += x * x;
        }
    }
    for v in inv_norms.iter_mut() {
        *v = if *v > 0.0 { 1.0 / v.sqrt() } else { 1.0 };
    }
    debug_assert_eq!(q.as_slice().len(), n * b);
    for row in q.as_mut_slice().chunks_exact_mut(b) {
        for (x, &inv) in row.iter_mut().zip(inv_norms.iter()) {
            *x *= inv;
        }
    }
}

/// `out ← (b + bᵀ)/2`, element for element the same arithmetic as the
/// allocating `b.add(&b.transpose()).scale(0.5)` it replaces.
fn symmetrize_into(b: &Matrix, out: &mut Matrix) {
    let n = b.rows();
    out.reset(n, n);
    for i in 0..n {
        for j in 0..n {
            out[(i, j)] = (b[(i, j)] + b[(j, i)]) * 0.5;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_error;

    fn spd_matrix() -> Matrix {
        // B Bᵀ + small diagonal: SPD with a clear spectral gap.
        let b = Matrix::from_rows(&[
            vec![5.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 0.5],
            vec![1.0, 1.0, 0.1],
            vec![0.5, -1.0, 0.2],
        ])
        .unwrap();
        b.gram_t()
    }

    #[test]
    fn topk_matches_full_jacobi() {
        let a = spd_matrix();
        let full = jacobi_eigen(&a, 1e-13).unwrap();
        let op = DenseSymOp::new(&a);
        let top = sym_eigs_topk(&op, 3, &SubspaceOptions::default()).unwrap();
        for i in 0..3 {
            assert!(
                (top.values[i] - full.values[i]).abs() < 1e-6 * full.values[0].max(1.0),
                "eigenvalue {i}: {} vs {}",
                top.values[i],
                full.values[i]
            );
        }
        assert!(orthonormality_error(&top.vectors) < 1e-8);
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        let top = sym_eigs_topk(&op, 2, &SubspaceOptions::default()).unwrap();
        // ‖A v − λ v‖ should be tiny for each returned pair.
        for j in 0..2 {
            let v = top.vectors.col(j);
            let av = a.matvec(&v).unwrap();
            let lambda = top.values[j];
            let residual: f64 = av
                .iter()
                .zip(v.iter())
                .map(|(a, b)| (a - lambda * b).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(residual < 1e-6 * lambda.max(1.0), "residual {residual}");
        }
    }

    #[test]
    fn gram_op_outer_matches_dense() {
        let a = CsrMatrix::from_triples(
            4,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, -1.0),
                (3, 2, 0.5),
            ],
        )
        .unwrap();
        let dense_gram = a.to_dense().gram_t();
        let op = GramOp::outer(&a);
        assert_eq!(op.dim(), 4);
        let top = sym_eigs_topk(&op, 2, &SubspaceOptions::default()).unwrap();
        let full = jacobi_eigen(&dense_gram, 1e-13).unwrap();
        assert!((top.values[0] - full.values[0]).abs() < 1e-7);
        assert!((top.values[1] - full.values[1]).abs() < 1e-7);
    }

    #[test]
    fn gram_op_inner_matches_dense() {
        let a = CsrMatrix::from_triples(
            4,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, -1.0),
                (3, 2, 0.5),
            ],
        )
        .unwrap();
        let dense_gram = a.to_dense().gram();
        let op = GramOp::inner(&a);
        assert_eq!(op.dim(), 3);
        let top = sym_eigs_topk(&op, 3, &SubspaceOptions::default()).unwrap();
        let full = jacobi_eigen(&dense_gram, 1e-13).unwrap();
        for i in 0..3 {
            assert!((top.values[i] - full.values[i]).abs() < 1e-7);
        }
    }

    /// Deterministic pseudo-random CSR matrix + dense block for the fused
    /// equivalence tests.
    fn random_csr_and_block(
        rows: usize,
        cols: usize,
        nnz: usize,
        width: usize,
        seed: u64,
    ) -> (CsrMatrix, Matrix) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let triples: Vec<(usize, usize, f64)> = (0..nnz)
            .map(|_| {
                let r = next() as usize % rows;
                let c = next() as usize % cols;
                let v = ((next() >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
                (r, c, v)
            })
            .collect();
        let a = CsrMatrix::from_triples(rows, cols, &triples).unwrap();
        let mut state2 = seed ^ 0xdead_beef;
        let x_rows = rows.max(cols);
        let x = Matrix::from_fn(x_rows, width, |_, _| {
            state2 = state2
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state2 >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        (a, x)
    }

    #[test]
    fn fused_gram_apply_bit_identical_to_materialized() {
        for (rows, cols, nnz, width, seed) in [
            (30, 20, 150, 7, 1u64),
            (8, 50, 90, 12, 2),
            (40, 40, 10, 3, 3),
        ] {
            let (a, x_full) = random_csr_and_block(rows, cols, nnz, width, seed);
            // Inner: AᵀA over R^cols.
            let x = x_full.submatrix(0, cols, 0, width).unwrap();
            let fused = GramOp::inner(&a).apply_block(&x);
            let reference = GramOp::inner(&a).with_fused(false).apply_block(&x);
            assert!(
                fused.approx_eq(&reference, 0.0),
                "inner fused != materialized at {rows}x{cols}"
            );
            // Outer: AAᵀ over R^rows; apply twice to exercise scratch reuse.
            let x = x_full.submatrix(0, rows, 0, width).unwrap();
            let outer = GramOp::outer(&a);
            let first = outer.apply_block(&x);
            let second = outer.apply_block(&x);
            let reference = GramOp::outer(&a).with_fused(false).apply_block(&x);
            assert!(
                first.approx_eq(&reference, 0.0),
                "outer fused != materialized at {rows}x{cols}"
            );
            assert!(second.approx_eq(&first, 0.0), "outer scratch reuse drifted");
        }
    }

    #[test]
    fn stabilized_with_period_one_matches_topk_exactly() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        let opts = SubspaceOptions::default();
        let legacy = sym_eigs_topk(&op, 3, &opts).unwrap();
        let stabilized = sym_eigs_stabilized(&op, 3, &opts, 1, &|_| 3).unwrap();
        assert_eq!(legacy.values, stabilized.values);
        assert!(legacy.vectors.approx_eq(&stabilized.vectors, 0.0));
        assert_eq!(legacy.iterations, stabilized.iterations);
    }

    #[test]
    fn stabilized_periodic_rr_finds_same_eigenpairs() {
        let a = spd_matrix();
        let full = jacobi_eigen(&a, 1e-13).unwrap();
        let op = DenseSymOp::new(&a);
        for period in [2usize, 3, 5] {
            let top =
                sym_eigs_stabilized(&op, 3, &SubspaceOptions::default(), period, &|_| 3).unwrap();
            for i in 0..3 {
                assert!(
                    (top.values[i] - full.values[i]).abs() < 1e-6 * full.values[0].max(1.0),
                    "period {period}, eigenvalue {i}: {} vs {}",
                    top.values[i],
                    full.values[i]
                );
            }
            assert!(orthonormality_error(&top.vectors) < 1e-8);
        }
    }

    #[test]
    fn rejects_bad_k() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        assert!(sym_eigs_topk(&op, 0, &SubspaceOptions::default()).is_err());
        assert!(sym_eigs_topk(&op, 99, &SubspaceOptions::default()).is_err());
    }

    #[test]
    fn k_equals_n_works() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        let top = sym_eigs_topk(&op, a.rows(), &SubspaceOptions::default()).unwrap();
        let full = jacobi_eigen(&a, 1e-13).unwrap();
        for i in 0..a.rows() {
            assert!((top.values[i] - full.values[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = spd_matrix();
        let op = DenseSymOp::new(&a);
        let opts = SubspaceOptions {
            seed: 42,
            ..Default::default()
        };
        let r1 = sym_eigs_topk(&op, 2, &opts).unwrap();
        let r2 = sym_eigs_topk(&op, 2, &opts).unwrap();
        assert_eq!(r1.values, r2.values);
        assert!(r1.vectors.approx_eq(&r2.vectors, 0.0));
    }
}
