//! Sharded scatter-gather serving with hot artifact reload.
//!
//! CubeLSI's per-resource cosine scores make resource-partitioned
//! sharding embarrassingly parallel with an **exact** merge: every
//! posting of a resource lives in exactly one shard, so a shard's
//! ranking over its resources is a disjoint slice of the global ranking
//! and a k-way merge of per-shard top-k lists *is* the global top-k.
//! This module turns the PR-2 artifact substrate into that serving
//! topology:
//!
//! * [`ConceptIndex::partition_by_resource`] splits a built index into
//!   `N` shard indices under the deterministic modulo partition
//!   (resource `r` → shard `r % N`), each keeping the global resource-id
//!   space and the global idf array so per-resource scores are
//!   bit-identical to the unsharded index;
//! * [`save_sharded`] writes `N` ordinary `.cubelsi` artifacts (each
//!   independently loadable and checksummed) plus a versioned
//!   **shard manifest** listing them with per-shard file checksums;
//! * [`ShardSet`] is a loaded generation of shards: per-shard
//!   [`QueryEngine`]s plus the shared corpus/model, answering queries
//!   through one shared query preparation and an exact k-way merge;
//! * [`ShardedEngine`] wraps a [`ShardSet`] in an atomically swappable
//!   [`Arc`] with a monotonically increasing generation number — the
//!   **hot reload** primitive: a new manifest replaces the shards under
//!   live traffic without a restart, in-flight queries drain on the old
//!   generation (they hold its `Arc`), and steady-state serving stays
//!   allocation-free because [`QuerySession`] scratch is epoch-tagged
//!   and grow-only, so a session survives a swap unchanged.
//!
//! # Why the merged ranking is bit-identical
//!
//! Floating-point addition is order-sensitive, so "same resources, same
//! postings" is not enough — the *accumulation sequence* per resource
//! must match the unsharded engine's. Three properties pin it down:
//!
//! 1. **Shared query preparation.** The query is prepared once (against
//!    shard 0, whose idf array is the global one) and the resulting
//!    terms are broadcast to every shard, so weights and the query norm
//!    are the same bytes everywhere.
//! 2. **One global term order.** Terms are put in MaxScore order using
//!    the *global* per-concept maximum impact — reconstructed exactly as
//!    `max` over the shards' per-list maxima — and every shard consumes
//!    them in that order. (Shard-local suffix bounds stay exact: a
//!    shard's maxima are ≤ the global ones, and the pruning invariants
//!    hold under any processing order.)
//! 3. **Verbatim impacts.** A shard keeps its resources' posting
//!    impacts, vector weights, and norms byte-for-byte, so each
//!    contribution `wq · impact` is the same multiplication the
//!    unsharded engine performs.
//!
//! Per resource the additions are therefore the same values in the same
//! order; the merge then only interleaves disjoint, already-sorted
//! slices under the shared ranking comparator. The
//! `sharded_equivalence` integration test enforces the end result over
//! randomized corpora: shard counts ∈ {1, 2, 7}, both pruning
//! strategies, hard + soft assignments, owned and zero-copy loads, and
//! immediately after a hot reload.
//!
//! # Manifest format (`.cubelsi` shard manifest)
//!
//! Everything little-endian, no external deps, trailing self-checksum:
//!
//! ```text
//! 8 B   magic            = "CUBELSIM"
//! 4 B   manifest version (u32, currently 1)
//! 4 B   shard count N    (u32, 1..=MAX_SHARDS)
//! 4 B   partition scheme (u32, 1 = modulo by resource id)
//! per shard, in shard order:
//!   4 B  file-name length (u32) + UTF-8 file name (a sibling of the
//!        manifest: path separators and ".." are rejected)
//!   8 B  artifact file length (u64)
//!   4 B  CRC-32 (IEEE) of the artifact file bytes
//! 4 B   CRC-32 of every preceding byte of the manifest
//! ```
//!
//! Loading is all-or-nothing: a truncated manifest, a wrong shard
//! count, a checksum mismatch (manifest or shard artifact), a missing
//! artifact file, or shards that disagree on corpus/model/partition all
//! yield a typed [`PersistError`] and **never a partial engine** —
//! enforced by the `shard_manifest_adversarial` integration tests.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use cubelsi_folksonomy::{Folksonomy, TagId};
use cubelsi_linalg::parallel;

use crate::concepts::ConceptModel;
use crate::exec;
use crate::index::{cmp_ranked, order_terms_with, ConceptAssignment, ConceptIndex, RankedResource};
use crate::persist::{crc32, load_from_bytes, load_zero_copy, widen, Artifact, PersistError};
use crate::query::{PruningStrategy, QueryEngine, QuerySession};
use crate::slab::AlignedBytes;

/// Shard-manifest magic bytes (distinct from the artifact magic
/// `"CUBELSI\0"`, so the two file kinds are sniffable from their first
/// eight bytes).
pub const MANIFEST_MAGIC: [u8; 8] = *b"CUBELSIM";

/// Current manifest format version. Readers reject newer versions with
/// [`PersistError::UnsupportedVersion`].
pub const MANIFEST_VERSION: u32 = 1;

/// The only partition scheme currently defined: resource `r` belongs to
/// shard `r % N`.
pub const PARTITION_MODULO: u32 = 1;

/// Hard cap on the shard count a manifest may declare — far above any
/// sane deployment, low enough that a hostile count cannot trigger a
/// pathological allocation.
pub const MAX_SHARDS: usize = 1024;

/// Pseudo section id used in [`PersistError`]s raised by the manifest
/// itself (the artifact section ids 1–7 are taken by `persist`).
pub const SECTION_MANIFEST: u32 = 9;

/// How shard artifacts are materialized in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Copy every array into owned buffers (the portable default).
    Owned,
    /// Borrow the hot index arrays straight out of the artifact buffer.
    ZeroCopy,
}

/// One shard entry of a parsed manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Artifact file name, relative to the manifest's directory (a plain
    /// file name — no path separators).
    pub file_name: String,
    /// Expected artifact file length in bytes.
    pub file_len: u64,
    /// Expected CRC-32 of the artifact file bytes.
    pub crc32: u32,
}

/// A parsed shard manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Per-shard artifact descriptors, in shard order (`entries[i]` is
    /// shard `i` of `entries.len()`).
    pub entries: Vec<ShardEntry>,
}

/// What a file's magic bytes say it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// A single `.cubelsi` model artifact.
    Artifact,
    /// A shard manifest.
    Manifest,
}

/// Sniffs whether `path` is a single artifact or a shard manifest from
/// its first eight bytes. Unknown magic is [`PersistError::BadMagic`].
pub fn sniff_source(path: impl AsRef<Path>) -> Result<SourceKind, PersistError> {
    use std::io::Read;
    let mut head = [0u8; 8];
    let mut file = std::fs::File::open(path)?;
    let mut read = 0;
    while read < head.len() {
        match file.read(&mut head[read..])? {
            0 => break,
            n => read += n,
        }
    }
    if read < head.len() {
        return Err(PersistError::Truncated { context: "header" });
    }
    if head == MANIFEST_MAGIC {
        Ok(SourceKind::Manifest)
    } else if head == crate::persist::MAGIC {
        Ok(SourceKind::Artifact)
    } else {
        Err(PersistError::BadMagic)
    }
}

fn manifest_err(detail: impl Into<String>) -> PersistError {
    PersistError::Malformed {
        section: SECTION_MANIFEST,
        detail: detail.into(),
    }
}

/// Serializes a manifest to its byte format (header + entries + trailing
/// self-CRC).
pub fn encode_manifest(manifest: &ShardManifest) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MANIFEST_MAGIC);
    buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    buf.extend_from_slice(&(manifest.entries.len() as u32).to_le_bytes());
    buf.extend_from_slice(&PARTITION_MODULO.to_le_bytes());
    for e in &manifest.entries {
        buf.extend_from_slice(&(e.file_name.len() as u32).to_le_bytes());
        buf.extend_from_slice(e.file_name.as_bytes());
        buf.extend_from_slice(&e.file_len.to_le_bytes());
        buf.extend_from_slice(&e.crc32.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Parses and fully validates a manifest. Structural defects are
/// reported before the trailing checksum so truncation reads as
/// [`PersistError::Truncated`], not as a checksum failure.
// xtask:hostile-input:begin — manifest bytes come off disk or the wire;
// typed errors only (no panics, truncating casts, or raw indexing).
pub fn decode_manifest(bytes: &[u8]) -> Result<ShardManifest, PersistError> {
    if bytes.len() < MANIFEST_MAGIC.len() {
        return Err(PersistError::Truncated {
            context: "shard manifest header",
        });
    }
    if !bytes.starts_with(&MANIFEST_MAGIC) {
        return Err(PersistError::BadMagic);
    }
    struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }
    impl<'a> Cursor<'a> {
        fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], PersistError> {
            let Some(out) = self
                .pos
                .checked_add(n)
                .and_then(|end| self.bytes.get(self.pos..end))
            else {
                return Err(PersistError::Truncated { context });
            };
            self.pos += n;
            Ok(out)
        }
        fn u32(&mut self, context: &'static str) -> Result<u32, PersistError> {
            match self.take(4, context)?.first_chunk::<4>() {
                Some(c) => Ok(u32::from_le_bytes(*c)),
                None => Err(PersistError::Truncated { context }),
            }
        }
        fn u64(&mut self, context: &'static str) -> Result<u64, PersistError> {
            match self.take(8, context)?.first_chunk::<8>() {
                Some(c) => Ok(u64::from_le_bytes(*c)),
                None => Err(PersistError::Truncated { context }),
            }
        }
    }
    let mut cur = Cursor { bytes, pos: 8 };
    let version = cur.u32("shard manifest header")?;
    if version > MANIFEST_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: MANIFEST_VERSION,
        });
    }
    let count = widen(cur.u32("shard manifest header")?);
    if count == 0 || count > MAX_SHARDS {
        return Err(manifest_err(format!(
            "shard count {count} outside 1..={MAX_SHARDS}"
        )));
    }
    let scheme = cur.u32("shard manifest header")?;
    if scheme != PARTITION_MODULO {
        return Err(manifest_err(format!("unknown partition scheme {scheme}")));
    }
    let mut entries = Vec::with_capacity(count);
    for shard in 0..count {
        let name_len = widen(cur.u32("shard manifest entry")?);
        if name_len == 0 || name_len > 4096 {
            return Err(manifest_err(format!(
                "shard {shard} file-name length {name_len} outside 1..=4096"
            )));
        }
        let name_bytes = cur.take(name_len, "shard manifest entry")?;
        let file_name = std::str::from_utf8(name_bytes)
            .map_err(|_| manifest_err(format!("shard {shard} file name is not UTF-8")))?
            .to_owned();
        // Shard artifacts are siblings of the manifest: a manifest must
        // not be able to point the loader at arbitrary filesystem paths.
        if file_name.contains(['/', '\\']) || file_name == ".." || file_name == "." {
            return Err(manifest_err(format!(
                "shard {shard} file name {file_name:?} must be a plain sibling file name"
            )));
        }
        let file_len = cur.u64("shard manifest entry")?;
        let crc = cur.u32("shard manifest entry")?;
        entries.push(ShardEntry {
            file_name,
            file_len,
            crc32: crc,
        });
    }
    let body_end = cur.pos;
    let stored_crc = cur.u32("shard manifest checksum")?;
    if cur.pos != bytes.len() {
        return Err(manifest_err(format!(
            "{} trailing bytes after manifest",
            bytes.len() - cur.pos
        )));
    }
    let body = bytes.get(..body_end).ok_or(PersistError::Truncated {
        context: "shard manifest body",
    })?;
    let got = crc32(body);
    if got != stored_crc {
        return Err(PersistError::ChecksumMismatch {
            section: SECTION_MANIFEST,
            expected: stored_crc,
            got,
        });
    }
    Ok(ShardManifest { entries })
}
// xtask:hostile-input:end — callers below work with the typed manifest.

/// Reads and parses a manifest file.
pub fn load_manifest(path: impl AsRef<Path>) -> Result<ShardManifest, PersistError> {
    decode_manifest(&std::fs::read(path)?)
}

/// Report of a sharded save: where everything went.
#[derive(Debug, Clone)]
pub struct ShardedSaveReport {
    /// The manifest path.
    pub manifest_path: PathBuf,
    /// Per-shard artifact paths, in shard order.
    pub shard_paths: Vec<PathBuf>,
    /// Per-shard artifact sizes in bytes.
    pub shard_bytes: Vec<u64>,
    /// Per-shard indexed-resource counts (positive-norm members).
    pub shard_resources: Vec<usize>,
    /// Per-shard posting counts.
    pub shard_postings: Vec<usize>,
}

/// Writes `bytes` to `path` atomically (temp sibling + rename), the same
/// crash-safety contract as `persist::save_to_path`.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let result = (|| {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Partitions a built model into `num_shards` resource shards and writes
/// them next to `manifest_path` as ordinary `.cubelsi` artifacts
/// (`<manifest file name>.shard<i>`), then writes the manifest itself.
/// Every file is written atomically; the manifest goes last, so a crash
/// mid-save can never leave a manifest pointing at missing or stale
/// shards.
pub fn save_sharded(
    manifest_path: impl AsRef<Path>,
    model: &crate::pipeline::CubeLsi,
    folksonomy: &Folksonomy,
    num_shards: usize,
) -> Result<ShardedSaveReport, PersistError> {
    save_sharded_with(manifest_path, model, folksonomy, num_shards, false)
}

/// [`save_sharded`] with the compression choice of
/// [`crate::persist::save_to_vec_with`]: with `compress`, every shard
/// artifact carries the compressed posting mirror (format v3).
pub fn save_sharded_with(
    manifest_path: impl AsRef<Path>,
    model: &crate::pipeline::CubeLsi,
    folksonomy: &Folksonomy,
    num_shards: usize,
    compress: bool,
) -> Result<ShardedSaveReport, PersistError> {
    let manifest_path = manifest_path.as_ref();
    if num_shards == 0 || num_shards > MAX_SHARDS {
        return Err(manifest_err(format!(
            "shard count {num_shards} outside 1..={MAX_SHARDS}"
        )));
    }
    let manifest_name = manifest_path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| manifest_err("manifest path has no UTF-8 file name"))?;
    let dir = manifest_path.parent().unwrap_or(Path::new("."));

    let mut entries = Vec::with_capacity(num_shards);
    let mut report = ShardedSaveReport {
        manifest_path: manifest_path.to_path_buf(),
        shard_paths: Vec::with_capacity(num_shards),
        shard_bytes: Vec::with_capacity(num_shards),
        shard_resources: Vec::with_capacity(num_shards),
        shard_postings: Vec::with_capacity(num_shards),
    };
    for shard in 0..num_shards {
        let index = model.index().partition_by_resource(shard, num_shards);
        report.shard_postings.push(index.num_postings());
        report.shard_resources.push(
            (0..index.num_resources())
                .filter(|&r| index.resource_norm(r) > 0.0)
                .count(),
        );
        let shard_model = crate::pipeline::CubeLsi::from_restored(
            model.decomposition().clone(),
            model.distances().clone(),
            model.concepts().clone(),
            index,
            *model.timings(),
            folksonomy,
        );
        let bytes = crate::persist::save_to_vec_with(&shard_model, folksonomy, compress);
        let file_name = format!("{manifest_name}.shard{shard}");
        let path = dir.join(&file_name);
        write_atomic(&path, &bytes)?;
        entries.push(ShardEntry {
            file_name,
            file_len: bytes.len() as u64,
            crc32: crc32(&bytes),
        });
        report.shard_bytes.push(bytes.len() as u64);
        report.shard_paths.push(path);
    }
    write_atomic(manifest_path, &encode_manifest(&ShardManifest { entries }))?;
    Ok(report)
}

// ---------------------------------------------------------------------------
// ShardSet: one loaded generation of shards
// ---------------------------------------------------------------------------

/// Splits a single engine into `num_shards` partitioned engines (same
/// pruning strategy), the in-memory counterpart of [`save_sharded`] used
/// by benches and tests.
pub fn partition_engines(engine: &QueryEngine, num_shards: usize) -> Vec<QueryEngine> {
    (0..num_shards)
        .map(|shard| {
            QueryEngine::with_strategy(
                engine.index().partition_by_resource(shard, num_shards),
                engine.strategy(),
            )
        })
        .collect()
}

/// One loaded, validated generation of shards: per-shard engines over
/// disjoint resource slices of one corpus, plus the shared concept model
/// and corpus needed to serve name-level queries. Immutable once built —
/// hot reload swaps whole [`ShardSet`]s via [`ShardedEngine`].
#[derive(Debug)]
pub struct ShardSet {
    engines: Vec<QueryEngine>,
    folksonomy: Folksonomy,
    concepts: ConceptModel,
    /// Per-concept global maximum impact: `max` over the shards' per-list
    /// maxima, bit-identical to the unsharded index's `max_impact` array.
    /// Defines the shared term-processing order (see the module docs).
    global_max_impact: Vec<f64>,
    /// Per-concept posting count summed across shards — the unit of the
    /// adaptive-dispatch cost model: summing these over a prepared
    /// query's terms estimates the total scoring work without touching
    /// a single posting.
    postings_per_concept: Vec<u64>,
    /// Coalesced single-engine mirror ([`ConceptIndex::coalesce`]),
    /// built when the whole corpus is small enough
    /// ([`COALESCE_MAX_POSTINGS`]) that an N-way scatter costs more
    /// than it saves. Answers bit-identically to the scatter-merge
    /// path (same invariant the `sharded_equivalence` suite enforces),
    /// so [`ShardSet::search_tags_auto`] can route through it freely.
    coalesced: Option<Box<QueryEngine>>,
}

/// Adaptive-dispatch threshold: minimum *estimated* postings per shard
/// before a scatter query is worth handing to the worker pool. Below
/// it, per-shard work is microseconds and the fan-out handoff dominates;
/// the query runs sequentially on the caller thread instead.
const FANOUT_MIN_POSTINGS_PER_SHARD: u64 = 8192;

/// Total-posting ceiling under which a [`ShardSet`] additionally builds
/// a coalesced single-engine mirror at construction (≈ 2 M postings,
/// tens of MB of SoA arrays — a few milliseconds to build, recouped
/// within seconds of small-corpus traffic where the per-query scatter
/// overhead is the dominant cost).
const COALESCE_MAX_POSTINGS: u64 = 1 << 21;

/// How one scatter query is dispatched (see [`ShardSet::search_shards`]).
#[derive(Clone, Copy)]
enum Dispatch {
    /// Always per-shard sequential on the caller thread — the pure
    /// scatter-merge reference path.
    Sequential,
    /// Always fanned across the pool (when more than one thread and
    /// shard exist) — pins the pooled path for tests and benches.
    Scatter,
    /// Cost-model decision per query: fan out only when the estimated
    /// per-shard posting work amortizes the pool handoff.
    Auto,
}

fn shard_err(detail: impl Into<String>) -> PersistError {
    PersistError::Shard {
        detail: detail.into(),
    }
}

impl ShardSet {
    /// Assembles and validates a shard set from per-shard engines plus
    /// the shared corpus and concept model. Validation is all-or-nothing:
    /// mismatched dimensions, divergent idf arrays, or a resource indexed
    /// by the wrong shard yield a typed error, never a partial set.
    pub fn from_parts(
        engines: Vec<QueryEngine>,
        folksonomy: Folksonomy,
        concepts: ConceptModel,
    ) -> Result<Self, PersistError> {
        let n = engines.len();
        if n == 0 || n > MAX_SHARDS {
            return Err(shard_err(format!(
                "shard count {n} outside 1..={MAX_SHARDS}"
            )));
        }
        let num_resources = engines[0].index().num_resources();
        let num_concepts = engines[0].index().num_concepts();
        for (i, e) in engines.iter().enumerate() {
            let ix = e.index();
            if ix.num_resources() != num_resources || ix.num_concepts() != num_concepts {
                return Err(shard_err(format!(
                    "shard {i} is {}x{}, shard 0 is {num_resources}x{num_concepts}",
                    ix.num_resources(),
                    ix.num_concepts()
                )));
            }
            // Query weights are idf-scaled; divergent idf arrays would
            // mean shards score against different query vectors.
            for l in 0..num_concepts {
                if ix.idf(l).to_bits() != engines[0].index().idf(l).to_bits() {
                    return Err(shard_err(format!(
                        "shard {i} idf[{l}] = {} disagrees with shard 0's {}",
                        ix.idf(l),
                        engines[0].index().idf(l)
                    )));
                }
            }
            // Modulo-partition membership: a shard may only index its own
            // resources, or the disjointness the exact merge relies on is
            // gone.
            for r in 0..num_resources {
                if ix.resource_norm(r) > 0.0 && r % n != i {
                    return Err(shard_err(format!(
                        "shard {i} of {n} indexes resource {r} (belongs to shard {})",
                        r % n
                    )));
                }
            }
        }
        if concepts.num_concepts() != num_concepts {
            return Err(shard_err(format!(
                "concept model has {} concepts, index has {num_concepts}",
                concepts.num_concepts()
            )));
        }
        if folksonomy.num_resources() != num_resources {
            return Err(shard_err(format!(
                "corpus has {} resources, index has {num_resources}",
                folksonomy.num_resources()
            )));
        }
        let mut global_max_impact = vec![0.0f64; num_concepts];
        let mut postings_per_concept = vec![0u64; num_concepts];
        for e in &engines {
            for l in 0..num_concepts {
                global_max_impact[l] = global_max_impact[l].max(e.index().max_impact(l));
                postings_per_concept[l] += e.index().postings(l).ids.len() as u64;
            }
        }
        let total_postings: u64 = postings_per_concept.iter().sum();
        let coalesced = if engines.len() > 1 && total_postings <= COALESCE_MAX_POSTINGS {
            let shards: Vec<&ConceptIndex> = engines.iter().map(QueryEngine::index).collect();
            Some(Box::new(QueryEngine::with_strategy(
                ConceptIndex::coalesce(&shards),
                engines[0].strategy(),
            )))
        } else {
            None
        };
        Ok(ShardSet {
            engines,
            folksonomy,
            concepts,
            global_max_impact,
            postings_per_concept,
            coalesced,
        })
    }

    /// Assembles a shard set from loaded artifacts (shard `i` of
    /// `artifacts.len()` at index `i`), validating that all shards were
    /// cut from the same corpus and concept model.
    pub fn from_artifacts(artifacts: Vec<Artifact>) -> Result<Self, PersistError> {
        let mut artifacts = artifacts;
        if artifacts.is_empty() {
            return Err(shard_err("no shard artifacts"));
        }
        let first_stats = artifacts[0].folksonomy.stats();
        for (i, a) in artifacts.iter().enumerate().skip(1) {
            if a.folksonomy.stats() != first_stats {
                return Err(shard_err(format!(
                    "shard {i} corpus ({}) disagrees with shard 0's ({first_stats})",
                    a.folksonomy.stats()
                )));
            }
            if a.model.concepts().assignments() != artifacts[0].model.concepts().assignments() {
                return Err(shard_err(format!(
                    "shard {i} concept assignments disagree with shard 0's"
                )));
            }
        }
        let first = artifacts.remove(0);
        let folksonomy = first.folksonomy;
        let concepts = first.model.concepts().clone();
        let mut engines = Vec::with_capacity(artifacts.len() + 1);
        engines.push(first.model.into_engine());
        engines.extend(artifacts.into_iter().map(|a| a.model.into_engine()));
        Self::from_parts(engines, folksonomy, concepts)
    }

    /// Number of shards in the set.
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// Number of resources in the (global) id space.
    pub fn num_resources(&self) -> usize {
        self.engines[0].index().num_resources()
    }

    /// Number of concepts in the shared space.
    pub fn num_concepts(&self) -> usize {
        self.engines[0].index().num_concepts()
    }

    /// The shared corpus (name tables for query/result resolution).
    pub fn folksonomy(&self) -> &Folksonomy {
        &self.folksonomy
    }

    /// The shared hard concept model the shards were indexed under.
    pub fn concepts(&self) -> &ConceptModel {
        &self.concepts
    }

    /// The per-shard engines, in shard order.
    pub fn engines(&self) -> &[QueryEngine] {
        &self.engines
    }

    /// Whether the shards serve zero-copy out of artifact buffers.
    pub fn is_zero_copy(&self) -> bool {
        self.engines.iter().all(|e| e.index().is_zero_copy())
    }

    /// The active pruning strategy (uniform across shards).
    pub fn strategy(&self) -> PruningStrategy {
        self.engines[0].strategy()
    }

    /// Switches the pruning strategy on every shard (and on the
    /// coalesced mirror, when present). Results are bit-identical
    /// either way.
    pub fn set_strategy(&mut self, strategy: PruningStrategy) {
        for e in &mut self.engines {
            e.set_strategy(strategy);
        }
        if let Some(co) = &mut self.coalesced {
            co.set_strategy(strategy);
        }
    }

    /// Whether this set carries a coalesced single-engine mirror (built
    /// for small corpora; see [`Self::search_tags_auto`]).
    pub fn has_coalesced(&self) -> bool {
        self.coalesced.is_some()
    }

    /// Creates a reusable scatter-gather scratch session. The session
    /// sizes itself lazily on first use and survives hot reloads (shard
    /// scratch is epoch-tagged and grow-only).
    pub fn session(&self) -> ShardedSession {
        ShardedSession::default()
    }

    /// Scatter-gather top-k: prepares the query once, runs every shard's
    /// pruned top-k sequentially on the session's per-shard scratch, and
    /// k-way-merges the per-shard rankings. Bit-identical — scores,
    /// order, tie-breaks — to a single unsharded [`QueryEngine`] over the
    /// same corpus. Steady-state calls on a warmed session and reused
    /// `out` buffer perform no heap allocation.
    pub fn search_tags_with(
        &self,
        session: &mut ShardedSession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        self.search_shards(session, concepts, tags, top_k, out, Dispatch::Sequential);
    }

    /// Adaptive single query: the serving entry point. Small corpora
    /// (a coalesced mirror exists) answer through one unsharded engine
    /// on the caller thread; otherwise the per-query cost model picks
    /// between the sequential scatter and the pooled fan-out. Every
    /// route is bit-identical to [`Self::search_tags_with`]; the
    /// decision is recorded in the executor's inline/fanout counters.
    /// Steady-state allocation-free on a warmed session.
    pub fn search_tags_auto(
        &self,
        session: &mut ShardedSession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        if let Some(co) = &self.coalesced {
            exec::global().note_inline();
            co.search_tags_with(&mut session.prep, concepts, tags, top_k, out);
            return;
        }
        self.search_shards(session, concepts, tags, top_k, out, Dispatch::Auto);
    }

    /// Estimated postings the prepared terms touch, summed across all
    /// shards — the adaptive-dispatch cost model's input, computed from
    /// per-concept counts without reading any posting.
    fn estimate_postings(&self, terms: &[(u32, f64)]) -> u64 {
        terms
            .iter()
            .map(|&(l, _)| self.postings_per_concept[l as usize])
            .sum()
    }

    /// Shared scatter body: one preparation, one global term order, then
    /// per-shard scoring — sequential or fanned across the executor per
    /// `mode` — and the exact k-way merge. All modes are bit-identical:
    /// the per-shard ranking depends only on the broadcast terms, never
    /// on which thread or session scored the shard.
    fn search_shards(
        &self,
        session: &mut ShardedSession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
        mode: Dispatch,
    ) {
        out.clear();
        let n = self.engines.len();
        session.ensure_shards(n);
        let ShardedSession {
            prep,
            per_shard,
            terms,
            results,
            cursors,
        } = session;
        let Some(norm) = self.engines[0].collect_tag_terms(prep, concepts, tags) else {
            return;
        };
        terms.clear();
        terms.extend_from_slice(prep.terms());
        order_terms_with(terms, &self.global_max_impact);
        let width = parallel::num_threads().min(n).max(1);
        let fan_out = width > 1
            && match mode {
                Dispatch::Sequential => false,
                Dispatch::Scatter => true,
                Dispatch::Auto => {
                    self.estimate_postings(terms) / n as u64 >= FANOUT_MIN_POSTINGS_PER_SHARD
                }
            };
        if matches!(mode, Dispatch::Auto) {
            let exec = exec::global();
            if fan_out {
                exec.note_fanout();
            } else {
                exec.note_inline();
            }
        }
        if fan_out {
            self.scatter_shards(terms, norm, top_k, width, results);
        } else {
            for ((engine, shard_session), shard_out) in self
                .engines
                .iter()
                .zip(per_shard.iter_mut())
                .zip(results.iter_mut())
            {
                engine.run_with_terms(shard_session, terms, norm, top_k, shard_out);
            }
        }
        merge_ranked(results, cursors, top_k, out);
    }

    /// Fans per-shard scoring across the worker pool: one task per
    /// shard, each scoring into its own result slot on a pool-cached
    /// session. Blocks until every shard finished (the executor joins
    /// the batch before returning).
    fn scatter_shards(
        &self,
        terms: &[(u32, f64)],
        norm: f64,
        top_k: usize,
        width: usize,
        results: &mut [Vec<RankedResource>],
    ) {
        let slots = exec::DisjointSlots::new(results);
        let engines = &self.engines;
        exec::global().run_tasks(width, engines.len(), &|shard, scratch| {
            // SAFETY: one task per shard index, so each result slot is
            // claimed by exactly one task, and this frame's borrow of
            // `results` is held (not used) until the executor joins.
            let shard_out = unsafe { slots.slot(shard) };
            engines[shard].run_with_terms(&mut scratch.query, terms, norm, top_k, shard_out);
        });
    }

    /// Convenience single query: allocates a fresh session.
    pub fn search_tags(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        let mut session = self.session();
        let mut out = Vec::new();
        self.search_tags_with(&mut session, concepts, tags, top_k, &mut out);
        out
    }

    /// Scatter-gather with the per-shard top-k fanned across the
    /// persistent worker pool (one task per shard, pool-cached
    /// sessions): same preparation and global term order as
    /// [`Self::search_tags_with`], so results are bit-identical. Under
    /// a 1-thread cap (or a 1-shard set) this degrades to the
    /// sequential path. Steady-state calls on a warmed session and
    /// warmed pool spawn no threads and perform no heap allocation.
    /// Worth the handoff only when per-shard work is substantial —
    /// [`Self::search_tags_auto`] makes that call per query.
    pub fn search_tags_scatter_with(
        &self,
        session: &mut ShardedSession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        self.search_shards(session, concepts, tags, top_k, out, Dispatch::Scatter);
    }

    /// Convenience pooled scatter on a fresh session; prefer
    /// [`Self::search_tags_scatter_with`] in serving loops.
    pub fn search_tags_scatter(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        let mut session = self.session();
        let mut out = Vec::new();
        self.search_tags_scatter_with(&mut session, concepts, tags, top_k, &mut out);
        out
    }

    /// One query answered entirely on the current thread: through the
    /// coalesced mirror when present, else the sequential scatter. The
    /// per-query unit of the batch path (a batch task must never fan
    /// out again underneath itself).
    fn search_query_inline(
        &self,
        session: &mut ShardedSession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        if let Some(co) = &self.coalesced {
            co.search_tags_with(&mut session.prep, concepts, tags, top_k, out);
        } else {
            self.search_shards(session, concepts, tags, top_k, out, Dispatch::Sequential);
        }
    }

    /// Answers a batch of queries, oversplit into index ranges across
    /// the persistent worker pool — each participant drives every shard
    /// for its queries on a pool-cached [`ShardedSession`], writing
    /// straight into the query's own result slot. Results come back in
    /// query order and are bit-identical at any pool size.
    pub fn search_batch<Q>(
        &self,
        concepts: &dyn ConceptAssignment,
        queries: &[Q],
        top_k: usize,
    ) -> Vec<Vec<RankedResource>>
    where
        Q: AsRef<[TagId]> + Sync,
    {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        // Pool handoff costs ~a microsecond per task (no thread spawn),
        // so the fan-out bar is much lower than the old scoped-thread
        // path's — but still nonzero. Clamp to the batch size: a batch
        // smaller than the pool must never engage idle workers.
        const MIN_QUERIES_PER_TASK: usize = 8;
        let width = parallel::num_threads()
            .min(n.div_ceil(MIN_QUERIES_PER_TASK))
            .min(n)
            .max(1);
        if width == 1 {
            exec::global().note_inline();
            let mut session = self.session();
            return queries
                .iter()
                .map(|q| {
                    let mut out = Vec::new();
                    self.search_query_inline(&mut session, concepts, q.as_ref(), top_k, &mut out);
                    out
                })
                .collect();
        }
        exec::global().note_fanout();
        let mut results: Vec<Vec<RankedResource>> = Vec::new();
        results.resize_with(n, Vec::new);
        // Oversplit relative to the width so work stealing can rebalance
        // straggler ranges.
        let task_size = n.div_ceil(width * 4).max(1);
        let tasks = n.div_ceil(task_size);
        let slots = exec::DisjointSlots::new(&mut results);
        exec::global().run_tasks(width, tasks, &|task, scratch| {
            let lo = task * task_size;
            let hi = (lo + task_size).min(n);
            for (offset, q) in queries[lo..hi].iter().enumerate() {
                // SAFETY: tasks cover disjoint index ranges of 0..n, so
                // each slot is claimed by exactly one task; `results` is
                // not touched until the executor joins the batch.
                let out = unsafe { slots.slot(lo + offset) };
                self.search_query_inline(&mut scratch.sharded, concepts, q.as_ref(), top_k, out);
            }
        });
        results
    }
}

/// Reusable scatter-gather scratch: one prep session for query
/// construction, one [`QuerySession`] per shard, plus term/result/merge
/// buffers. Lazily sized on first use; safe to keep across hot reloads
/// (per-shard scratch is epoch-tagged and grows on demand, so a swapped
/// shard set is served correctly without reallocation in steady state).
#[derive(Debug, Default)]
pub struct ShardedSession {
    prep: QuerySession,
    per_shard: Vec<QuerySession>,
    terms: Vec<(u32, f64)>,
    results: Vec<Vec<RankedResource>>,
    cursors: Vec<usize>,
}

impl ShardedSession {
    fn ensure_shards(&mut self, n: usize) {
        if self.per_shard.len() != n {
            self.per_shard.resize_with(n, QuerySession::default);
            self.results.resize_with(n, Vec::new);
        }
    }
}

/// Exact k-way merge of per-shard rankings. Each input list is sorted
/// under the shared ranking order and the lists cover disjoint resource
/// sets, so repeatedly taking the best head reproduces exactly the
/// ranking a single engine would emit. `top_k = 0` concatenates and
/// sorts (the all-matches contract). Allocation-free on warmed buffers.
fn merge_ranked(
    results: &mut [Vec<RankedResource>],
    cursors: &mut Vec<usize>,
    top_k: usize,
    out: &mut Vec<RankedResource>,
) {
    if results.len() == 1 {
        out.extend_from_slice(&results[0]);
        return;
    }
    if top_k == 0 {
        for r in results.iter() {
            out.extend_from_slice(r);
        }
        out.sort_unstable_by(|a, b| {
            cmp_ranked(
                a.score,
                a.resource.index() as u32,
                b.score,
                b.resource.index() as u32,
            )
        });
        return;
    }
    cursors.clear();
    cursors.resize(results.len(), 0);
    while out.len() < top_k {
        let mut best: Option<(usize, RankedResource)> = None;
        for (i, list) in results.iter().enumerate() {
            if cursors[i] >= list.len() {
                continue;
            }
            let cand = list[cursors[i]];
            let better = match best {
                None => true,
                Some((_, b)) => {
                    cmp_ranked(
                        cand.score,
                        cand.resource.index() as u32,
                        b.score,
                        b.resource.index() as u32,
                    ) == std::cmp::Ordering::Less
                }
            };
            if better {
                best = Some((i, cand));
            }
        }
        match best {
            Some((i, cand)) => {
                cursors[i] += 1;
                out.push(cand);
            }
            None => break,
        }
    }
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

/// Loads a serving source — a single `.cubelsi` artifact **or** a shard
/// manifest, sniffed from the magic bytes — into a validated
/// [`ShardSet`] (a single artifact becomes a one-shard set). For a
/// manifest, every referenced artifact's length and CRC-32 are verified
/// against the manifest entry before parsing, so a swapped or damaged
/// shard file is rejected with [`PersistError::ChecksumMismatch`]
/// (`section` = the shard ordinal) and can never serve.
pub fn load_source(path: impl AsRef<Path>, mode: LoadMode) -> Result<ShardSet, PersistError> {
    let path = path.as_ref();
    match sniff_source(path)? {
        SourceKind::Artifact => {
            let artifact = load_artifact_file(path, mode)?;
            ShardSet::from_artifacts(vec![artifact])
        }
        SourceKind::Manifest => {
            let manifest = load_manifest(path)?;
            let dir = path.parent().unwrap_or(Path::new("."));
            let mut artifacts = Vec::with_capacity(manifest.entries.len());
            for (shard, entry) in manifest.entries.iter().enumerate() {
                let shard_path = dir.join(&entry.file_name);
                artifacts.push(load_checked_artifact(
                    &shard_path,
                    entry,
                    shard as u32,
                    mode,
                )?);
            }
            ShardSet::from_artifacts(artifacts)
        }
    }
}

fn load_artifact_file(path: &Path, mode: LoadMode) -> Result<Artifact, PersistError> {
    match mode {
        LoadMode::Owned => crate::persist::load_from_path(path),
        LoadMode::ZeroCopy => crate::persist::load_from_path_zero_copy(path),
    }
}

fn load_checked_artifact(
    path: &Path,
    entry: &ShardEntry,
    shard: u32,
    mode: LoadMode,
) -> Result<Artifact, PersistError> {
    let check = |bytes: &[u8]| -> Result<(), PersistError> {
        if bytes.len() as u64 != entry.file_len {
            return Err(PersistError::Truncated {
                context: "shard artifact",
            });
        }
        let got = crc32(bytes);
        if got != entry.crc32 {
            return Err(PersistError::ChecksumMismatch {
                section: shard,
                expected: entry.crc32,
                got,
            });
        }
        Ok(())
    };
    match mode {
        LoadMode::Owned => {
            let bytes = std::fs::read(path)?;
            check(&bytes)?;
            load_from_bytes(&bytes)
        }
        LoadMode::ZeroCopy => {
            let buf = Arc::new(AlignedBytes::read_file(path)?);
            check(buf.as_slice())?;
            load_zero_copy(buf)
        }
    }
}

// ---------------------------------------------------------------------------
// ShardedEngine: atomic generation swap (hot reload)
// ---------------------------------------------------------------------------

/// One installed generation: a generation number (monotonic per
/// [`ShardedEngine`]) plus the shard set serving it. Handed out as an
/// [`Arc`], so in-flight queries keep serving the generation they
/// started on even while a reload installs a successor.
#[derive(Debug)]
pub struct ShardGeneration {
    number: u64,
    set: ShardSet,
}

impl ShardGeneration {
    /// The generation number (starts at 1, +1 per install).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The shard set serving this generation.
    pub fn set(&self) -> &ShardSet {
        &self.set
    }
}

/// A hot-reloadable sharded engine: an atomically swappable
/// [`Arc<ShardGeneration>`]. Readers take a cheap `Arc` clone per query
/// (no allocation), a reload builds a complete new [`ShardSet`] off to
/// the side and swaps it in with one pointer store under a short write
/// lock — old sessions drain on the generation they hold, new queries
/// see the new one. A failed reload leaves the current generation
/// serving untouched.
#[derive(Debug)]
pub struct ShardedEngine {
    state: RwLock<Arc<ShardGeneration>>,
    next_generation: AtomicU64,
    strategy: PruningStrategy,
    source: Option<(PathBuf, LoadMode)>,
}

impl ShardedEngine {
    /// Wraps a shard set as generation 1, forcing `strategy` onto it
    /// (and onto every later installed generation).
    pub fn new(mut set: ShardSet, strategy: PruningStrategy) -> Self {
        set.set_strategy(strategy);
        ShardedEngine {
            state: RwLock::new(Arc::new(ShardGeneration { number: 1, set })),
            next_generation: AtomicU64::new(2),
            strategy,
            source: None,
        }
    }

    /// Records where this engine was loaded from, enabling
    /// [`Self::reload`].
    pub fn with_source(mut self, path: impl Into<PathBuf>, mode: LoadMode) -> Self {
        self.source = Some((path.into(), mode));
        self
    }

    /// The currently serving generation (cheap: one `Arc` clone).
    pub fn current(&self) -> Arc<ShardGeneration> {
        self.state
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Installs a new shard set as the next generation and returns it.
    /// In-flight queries keep their old `Arc`; subsequent queries see
    /// the new generation. The generation number is claimed *under* the
    /// write lock, so concurrent installs are serialized: the highest
    /// number is always the last one stored and can never be
    /// overwritten by a straggler that loaded earlier.
    pub fn install(&self, mut set: ShardSet) -> Arc<ShardGeneration> {
        set.set_strategy(self.strategy);
        let mut slot = self
            .state
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // ORDER: claimed under the `state` write lock, which already
        // serializes installs; SeqCst keeps the generation counter in a
        // single total order as belt and braces (reload frequency, so
        // the fence cost is irrelevant).
        let number = self.next_generation.fetch_add(1, Ordering::SeqCst);
        let generation = Arc::new(ShardGeneration { number, set });
        *slot = generation.clone();
        generation
    }

    /// Re-reads the engine's source path (manifest or single artifact)
    /// from disk, fully loads and validates it, and atomically installs
    /// it as the next generation. On error the current generation keeps
    /// serving, untouched.
    pub fn reload(&self) -> Result<Arc<ShardGeneration>, PersistError> {
        let (path, mode) = self
            .source
            .as_ref()
            .ok_or_else(|| shard_err("engine has no reload source path"))?;
        let set = load_source(path, *mode)?;
        Ok(self.install(set))
    }

    /// Creates a reusable scatter-gather session (lazily sized; valid
    /// across generations).
    pub fn session(&self) -> ShardedSession {
        ShardedSession::default()
    }

    /// Answers a tag-id query against the current generation using its
    /// own concept model, through the adaptive dispatch path
    /// ([`ShardSet::search_tags_auto`]): coalesced mirror or sequential
    /// scatter for cheap queries, pooled fan-out for heavy ones —
    /// bit-identical either way. Steady-state allocation-free on a
    /// warmed session; the session survives generation swaps (its
    /// scratch lazily re-validates against whichever generation's index
    /// it meets).
    pub fn search_tags_with(
        &self,
        session: &mut ShardedSession,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        let generation = self.current();
        let set = generation.set();
        set.search_tags_auto(session, set.concepts(), tags, top_k, out);
    }

    /// Convenience single query on a fresh session.
    pub fn search_tags(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource> {
        let mut session = self.session();
        let mut out = Vec::new();
        self.search_tags_with(&mut session, tags, top_k, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::ConceptModel;
    use crate::index::ConceptIndex;
    use cubelsi_folksonomy::FolksonomyBuilder;

    fn corpus() -> (Folksonomy, ConceptModel) {
        let mut b = FolksonomyBuilder::new();
        for r in 0..40 {
            b.add("u1", "alpha", &format!("r{r}"));
            if r % 3 == 0 {
                b.add("u2", "beta", &format!("r{r}"));
            }
            if r % 2 == 0 {
                b.add("u3", "gamma", &format!("r{r}"));
            }
        }
        let f = b.build();
        let model = ConceptModel::from_assignments(vec![0, 1, 2], 1.0);
        (f, model)
    }

    fn sharded(n: usize) -> (Folksonomy, ConceptModel, QueryEngine, ShardSet) {
        let (f, model) = corpus();
        let engine = QueryEngine::new(ConceptIndex::build(&f, &model));
        let engines = partition_engines(&engine, n);
        let set = ShardSet::from_parts(engines, f.clone(), model.clone()).unwrap();
        (f, model, engine, set)
    }

    #[test]
    fn manifest_round_trips() {
        let manifest = ShardManifest {
            entries: vec![
                ShardEntry {
                    file_name: "m.shard0".into(),
                    file_len: 123,
                    crc32: 0xDEAD_BEEF,
                },
                ShardEntry {
                    file_name: "m.shard1".into(),
                    file_len: 456,
                    crc32: 7,
                },
            ],
        };
        let bytes = encode_manifest(&manifest);
        assert_eq!(decode_manifest(&bytes).unwrap(), manifest);
    }

    #[test]
    fn manifest_rejects_path_traversal() {
        for hostile in ["../evil", "a/b", "a\\b", "..", "."] {
            let bytes = encode_manifest(&ShardManifest {
                entries: vec![ShardEntry {
                    file_name: hostile.into(),
                    file_len: 1,
                    crc32: 0,
                }],
            });
            assert!(
                matches!(decode_manifest(&bytes), Err(PersistError::Malformed { .. })),
                "{hostile} must be rejected"
            );
        }
    }

    #[test]
    fn partition_covers_each_resource_once() {
        let (f, model) = corpus();
        let index = ConceptIndex::build(&f, &model);
        let n = 3;
        let shards: Vec<ConceptIndex> = (0..n).map(|i| index.partition_by_resource(i, n)).collect();
        let mut postings = 0usize;
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.num_resources(), index.num_resources());
            assert_eq!(s.num_concepts(), index.num_concepts());
            postings += s.num_postings();
            for r in 0..s.num_resources() {
                if r % n != i {
                    assert_eq!(s.resource_norm(r), 0.0, "shard {i} holds foreign r{r}");
                    assert!(s.resource_vector(r).is_empty());
                } else {
                    assert_eq!(
                        s.resource_norm(r).to_bits(),
                        index.resource_norm(r).to_bits()
                    );
                }
            }
            for l in 0..s.num_concepts() {
                assert_eq!(s.idf(l).to_bits(), index.idf(l).to_bits());
            }
        }
        assert_eq!(postings, index.num_postings());
    }

    #[test]
    fn coalesced_index_matches_unsharded_build() {
        let (f, model) = corpus();
        let index = ConceptIndex::build(&f, &model);
        let n = 3;
        let shards: Vec<ConceptIndex> = (0..n).map(|i| index.partition_by_resource(i, n)).collect();
        let refs: Vec<&ConceptIndex> = shards.iter().collect();
        let merged = ConceptIndex::coalesce(&refs);
        assert_eq!(merged.num_resources(), index.num_resources());
        assert_eq!(merged.num_concepts(), index.num_concepts());
        assert_eq!(merged.num_postings(), index.num_postings());
        for l in 0..index.num_concepts() {
            assert_eq!(merged.idf(l).to_bits(), index.idf(l).to_bits());
            let (a, b) = (merged.postings(l), index.postings(l));
            assert_eq!(a.ids, b.ids, "concept {l} ids diverge");
            let (sa, sb): (Vec<u64>, Vec<u64>) = (
                a.scores.iter().map(|s| s.to_bits()).collect(),
                b.scores.iter().map(|s| s.to_bits()).collect(),
            );
            assert_eq!(sa, sb, "concept {l} scores diverge");
        }
        for r in 0..index.num_resources() {
            assert_eq!(
                merged.resource_norm(r).to_bits(),
                index.resource_norm(r).to_bits()
            );
        }
    }

    #[test]
    fn global_max_impact_matches_unsharded() {
        let (_, _, engine, set) = sharded(3);
        for l in 0..set.num_concepts() {
            assert_eq!(
                set.global_max_impact[l].to_bits(),
                engine.index().max_impact(l).to_bits(),
                "concept {l}"
            );
        }
    }

    #[test]
    fn sharded_search_matches_single_engine_on_toy_corpus() {
        let (f, model, engine, set) = sharded(3);
        let tags: Vec<Vec<TagId>> = vec![
            vec![f.tag_id("alpha").unwrap()],
            vec![f.tag_id("alpha").unwrap(), f.tag_id("beta").unwrap()],
            vec![
                f.tag_id("gamma").unwrap(),
                f.tag_id("beta").unwrap(),
                f.tag_id("alpha").unwrap(),
            ],
        ];
        for q in &tags {
            for k in [0usize, 1, 5, 100] {
                let single = engine.search_tags(&model, q, k);
                let merged = set.search_tags(&model, q, k);
                let scattered = set.search_tags_scatter(&model, q, k);
                assert_eq!(merged.len(), single.len(), "k={k} q={q:?}");
                for (m, s) in merged.iter().zip(single.iter()) {
                    assert_eq!(m.resource, s.resource, "k={k}");
                    assert_eq!(m.score.to_bits(), s.score.to_bits(), "k={k}");
                }
                assert_eq!(scattered, merged, "scatter k={k}");
            }
        }
    }

    #[test]
    fn wrong_shard_membership_is_rejected() {
        let (f, model) = corpus();
        let engine = QueryEngine::new(ConceptIndex::build(&f, &model));
        // Shard 1's index installed at position 0 of a 2-shard set:
        // every resource it serves belongs to the other shard.
        let wrong = vec![
            QueryEngine::new(engine.index().partition_by_resource(1, 2)),
            QueryEngine::new(engine.index().partition_by_resource(1, 2)),
        ];
        assert!(matches!(
            ShardSet::from_parts(wrong, f, model),
            Err(PersistError::Shard { .. })
        ));
    }

    #[test]
    fn hot_reload_swaps_generation_and_old_arc_survives() {
        let (_, _, _, set2) = sharded(2);
        let (f, model, single, set3) = sharded(3);
        let engine = ShardedEngine::new(set2, PruningStrategy::BlockMax);
        let mut session = engine.session();
        let mut out = Vec::new();
        let q = vec![f.tag_id("alpha").unwrap(), f.tag_id("gamma").unwrap()];
        engine.search_tags_with(&mut session, &q, 5, &mut out);
        let want = single.search_tags(&model, &q, 5);
        assert_eq!(out, want);

        let old = engine.current();
        let installed = engine.install(set3);
        assert_eq!(old.number() + 1, installed.number());
        // The drained generation still answers (in-flight queries hold
        // its Arc)...
        assert_eq!(old.set().num_shards(), 2);
        assert_eq!(old.set().search_tags(&model, &q, 5), want);
        // ...while the same warmed session now serves the new one.
        engine.search_tags_with(&mut session, &q, 5, &mut out);
        assert_eq!(out, want);
        assert_eq!(engine.current().set().num_shards(), 3);
    }

    #[test]
    fn reload_without_source_is_typed_error() {
        let (_, _, _, set) = sharded(2);
        let engine = ShardedEngine::new(set, PruningStrategy::BlockMax);
        assert!(matches!(engine.reload(), Err(PersistError::Shard { .. })));
    }

    #[test]
    fn merge_handles_ties_and_exhaustion() {
        let rr = |r: usize, s: f64| RankedResource {
            resource: cubelsi_folksonomy::ResourceId::from_index(r),
            score: s,
        };
        // Equal scores must interleave by ascending resource id.
        let mut results = vec![vec![rr(1, 0.5), rr(3, 0.5)], vec![rr(0, 0.5), rr(2, 0.25)]];
        let mut cursors = Vec::new();
        let mut out = Vec::new();
        merge_ranked(&mut results, &mut cursors, 10, &mut out);
        let got: Vec<usize> = out.iter().map(|h| h.resource.index()).collect();
        assert_eq!(got, vec![0, 1, 3, 2]);
        out.clear();
        merge_ranked(&mut results, &mut cursors, 2, &mut out);
        assert_eq!(out.len(), 2);
    }
}
