//! The CubeLSI algorithm (Bi, Lee, Kao, Cheng — ICDE 2011).
//!
//! CubeLSI is an offline/online retrieval pipeline for social tagging
//! systems (Figure 1 of the paper):
//!
//! **Offline** — represent the tag assignments as a third-order tensor
//! `F ∈ {0,1}^{|U|×|T|×|R|}` (Eq. 5); Tucker-decompose it (§IV-C); derive
//! pairwise *purified* tag distances `D̂` from the decomposition via the
//! Theorem 1/2 shortcuts — never materializing the dense purified tensor
//! `F̂` (§IV-D); distill *concepts* by spectral clustering of tags (§V);
//! re-represent every resource as a tf-idf weighted bag of concepts (§III).
//!
//! **Online** — map a tag query to the same concept space and rank
//! resources by cosine similarity (Eq. 4).
//!
//! Modules follow the paper's structure:
//!
//! * [`tensor_build`] — Eq. 5 tensor construction;
//! * [`distance`] — §IV-D distances: Theorem-1 fast path, literal Eq. 21
//!   per-pair evaluation, and the brute-force `F̂` reference (tests only);
//! * [`concepts`] — §V concept distillation;
//! * [`index`] — §III bag-of-concepts tf-idf index and cosine ranking;
//! * [`query`] — the online top-k engine: exact block-max / MaxScore
//!   pruning over impact-ordered SoA postings, bounded-heap selection,
//!   zero-allocation sessions, and parallel batched search;
//! * [`slab`] — hybrid owned/borrowed storage backing the index arrays,
//!   so a loaded artifact can serve straight out of its file buffer;
//! * [`pipeline`] — the [`CubeLsi`] facade wiring everything, with
//!   per-phase timings for the efficiency experiments (Tables V–VII);
//! * [`persist`] — versioned, checksummed binary save/load of a complete
//!   built engine (with an aligned SoA index section supporting owned and
//!   zero-copy loads), splitting the expensive offline build from cheap
//!   online serving across process lifetimes;
//! * [`shard`] — sharded scatter-gather serving over resource-partitioned
//!   shard artifacts (versioned manifest + exact k-way merge,
//!   bit-identical to a single engine) with hot generation-swapped
//!   artifact reload under live traffic;
//! * [`exec`] — the persistent query executor: a parked worker pool with
//!   per-worker cached sessions and work-stealing deques behind every
//!   batched/scattered serving path, plus the adaptive-dispatch counters
//!   surfaced by the `serve` STATS command.

pub mod concepts;
pub mod config;
pub mod distance;
pub mod exec;
pub mod index;
pub mod persist;
pub mod pipeline;
pub mod query;
pub mod shard;
pub mod slab;
pub mod soft;
pub mod tensor_build;

pub use concepts::{ConceptModel, TagClusterSummary};
pub use config::{CubeLsiConfig, SigmaSource};
pub use distance::{
    brute_force_distances, pairwise_distances_from_embedding, tag_embedding, TagDistances,
};
pub use exec::ExecutorStats;
pub use index::{
    ConceptAssignment, ConceptIndex, PostingsRef, PreparedQuery, RankedResource, ResourceVectorRef,
    BLOCK_LEN,
};
pub use persist::{Artifact, PersistError};
pub use pipeline::{CubeLsi, PhaseTimings};
pub use query::{PruningStrategy, QueryEngine, QuerySession};
pub use shard::{
    LoadMode, ShardEntry, ShardGeneration, ShardManifest, ShardSet, ShardedEngine, ShardedSession,
    SourceKind,
};
pub use slab::{AlignedBytes, Slab};
pub use soft::{SoftConceptModel, SoftConfig};
pub use tensor_build::build_tensor;
