//! Construction of the third-order tag-assignment tensor (Eq. 5).

use cubelsi_folksonomy::Folksonomy;
use cubelsi_linalg::LinAlgError;
use cubelsi_tensor::SparseTensor3;

/// Builds the binary tensor `F ∈ {0,1}^{|U|×|T|×|R|}` of Eq. 5:
/// `F[u, t, r] = 1` iff `(u, t, r) ∈ Y`.
pub fn build_tensor(f: &Folksonomy) -> Result<SparseTensor3, LinAlgError> {
    let dims = (f.num_users(), f.num_tags(), f.num_resources());
    SparseTensor3::from_entries(dims, &f.tensor_entries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::store::figure2_example;

    #[test]
    fn figure2_tensor_matches_eq5() {
        let f = figure2_example();
        let tensor = build_tensor(&f).unwrap();
        assert_eq!(tensor.dims(), (3, 3, 3));
        assert_eq!(tensor.nnz(), 7);
        // F[u3, t1, r2] = 1 (record 4 of Figure 2(a)).
        let u3 = f.user_id("u3").unwrap().index();
        let t1 = f.tag_id("folk").unwrap().index();
        let r2 = f.resource_id("r2").unwrap().index();
        let dense = tensor.to_dense();
        assert_eq!(dense.get(u3, t1, r2), 1.0);
        // Absent triple is 0.
        let t2 = f.tag_id("people").unwrap().index();
        assert_eq!(dense.get(u3, t2, r2), 0.0);
        // All entries are binary.
        for (_, _, _, v) in tensor.iter() {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn empty_folksonomy_gives_empty_tensor() {
        let f = cubelsi_folksonomy::FolksonomyBuilder::new().build();
        let tensor = build_tensor(&f).unwrap();
        assert_eq!(tensor.nnz(), 0);
        assert_eq!(tensor.dims(), (0, 0, 0));
    }
}
