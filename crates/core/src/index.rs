//! The bag-of-concepts retrieval model (§III of the paper).
//!
//! After concept distillation every resource's bag of tags is mapped to a
//! bag of concepts. Resources are vectors of tf-idf weights over concepts
//! (Eqs. 1–3); queries are transformed the same way; ranking is by cosine
//! similarity (Eq. 4), served from an inverted index over concepts.
//!
//! # Posting layout
//!
//! The inverted index is laid out for cache-friendly top-k pruning:
//!
//! * **Structure of arrays** — resource ids (`u32`) and cosine-normalized
//!   impacts (`f64`, `w(l, r) / ‖r‖`) live in two parallel flat arrays
//!   shared by all concepts, with a per-concept offset table. A pruning
//!   scan that only needs ids (the update-only tail of a list) touches
//!   4 bytes per posting instead of a padded 16-byte `(u32, f64)` pair.
//! * **Impact order** — each list is sorted by descending impact (ties by
//!   ascending resource id, the ranking tie-break), so a prefix of a list
//!   is already in final ranked order for single-term queries and the
//!   per-list maximum is simply the first impact.
//! * **Block maxima** — every list is carved into fixed [`BLOCK_LEN`]
//!   posting blocks, each carrying its maximum impact in a separate dense
//!   array. The block-max query path checks one bound per block instead of
//!   one per posting, and skips whole blocks that cannot beat the current
//!   top-k threshold. Per-list maxima (`max_impact`) remain as the
//!   MaxScore term-ordering metadata.
//!
//! All arrays are [`crate::slab::Slab`]s: owned for freshly built indexes,
//! or borrowed straight out of a loaded artifact buffer by the zero-copy
//! persist path. The actual pruned query engine lives in [`crate::query`];
//! this module keeps the exhaustive [`ConceptIndex::rank_exact`] path as
//! the reference implementation the engine is tested against.

use crate::concepts::ConceptModel;
use crate::slab::Slab;
use cubelsi_folksonomy::{Folksonomy, ResourceId, TagId};

/// Number of postings per block-max block. 64 keeps a block's ids within a
/// single 256-byte stretch (four cache lines) and amortizes one bound
/// check and one branch over 64 postings.
pub const BLOCK_LEN: usize = 64;

/// Abstraction over hard and soft tag→concept mappings, so one index and
/// one query path serve both the paper's hard clustering and the
/// soft-clustering extension (footnote 5).
///
/// `Sync` is required so the batched query engine can share an assignment
/// across worker threads; both implementations are plain owned data.
pub trait ConceptAssignment: Sync {
    /// Number of concepts in the space.
    fn num_concepts(&self) -> usize;
    /// Number of tags covered.
    fn num_tags(&self) -> usize;
    /// Calls `f(concept, weight)` for every concept the tag belongs to;
    /// weights sum to 1 per tag.
    fn for_each_weight(&self, tag: usize, f: &mut dyn FnMut(usize, f64));
}

impl ConceptAssignment for ConceptModel {
    fn num_concepts(&self) -> usize {
        ConceptModel::num_concepts(self)
    }
    fn num_tags(&self) -> usize {
        ConceptModel::num_tags(self)
    }
    fn for_each_weight(&self, tag: usize, f: &mut dyn FnMut(usize, f64)) {
        f(self.concept_of(tag), 1.0);
    }
}

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedResource {
    /// The resource.
    pub resource: ResourceId,
    /// Cosine similarity to the query (Eq. 4).
    pub score: f64,
}

/// The single ranking total order every path must agree on — score
/// descending, resource id ascending. The posting-list sort, the exact
/// reference sort, the pruned engine's heap, and the final result sort
/// all route through this function; the pruned-vs-exact bit-identity
/// contract depends on them never diverging.
#[inline]
pub(crate) fn cmp_ranked(a_score: f64, a_id: u32, b_score: f64, b_id: u32) -> std::cmp::Ordering {
    b_score
        .partial_cmp(&a_score)
        .unwrap_or_else(|| cmp_nan_last(a_score, b_score))
        .then(a_id.cmp(&b_id))
}

/// Tie-break for score comparisons involving NaN: NaN ranks strictly
/// below every number and NaNs tie with each other, which keeps the
/// comparator a total order. Without this, a non-finite query weight
/// reaching the exact reference path (`rank_exact` divides by a possibly
/// non-finite norm *after* its positivity filter) would hand
/// `sort_unstable_by` an intransitive comparator — allowed to panic.
#[inline]
fn cmp_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        _ => std::cmp::Ordering::Equal,
    }
}

/// Sorts query terms by descending `weight * max_impact[concept]` (ties
/// by ascending concept id) — the MaxScore processing order. This is the
/// single comparator behind [`ConceptIndex::order_terms`] *and* the
/// sharded engine's global term order: the engines consume terms in this
/// order, which makes their floating-point accumulation sequences — and
/// hence scores — identical for every surviving resource. `max_impact`
/// entries may be a shard-local or a global maximum; the order is exact
/// either way, it only has to be *the same* for every engine whose
/// results are merged. NaN products (possible only through the raw
/// weighted entry points) sort last, keeping the comparator total.
pub(crate) fn order_terms_with(terms: &mut [(u32, f64)], max_impact: &[f64]) {
    terms.sort_unstable_by(|a, b| {
        let ba = a.1 * max_impact[a.0 as usize];
        let bb = b.1 * max_impact[b.0 as usize];
        bb.partial_cmp(&ba)
            .unwrap_or_else(|| cmp_nan_last(ba, bb))
            .then(a.0.cmp(&b.0))
    });
}

/// A query mapped into concept space: non-negative `(concept, weight)`
/// terms sorted by descending maximum score contribution (the MaxScore
/// processing order), plus the query vector's L2 norm.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// `(concept, weight)` pairs, weights > 0, sorted by descending
    /// `weight * max_impact(concept)` (ties by concept id).
    pub terms: Vec<(u32, f64)>,
    /// L2 norm of the query weight vector (denominator of Eq. 4).
    pub norm: f64,
}

/// A borrowed view of one concept's posting list: parallel id/impact
/// slices of equal length, impact-descending.
#[derive(Debug, Clone, Copy)]
pub struct PostingsRef<'a> {
    /// Resource ids.
    pub ids: &'a [u32],
    /// Cosine-normalized impacts (`w(l, r) / ‖r‖`), descending.
    pub scores: &'a [f64],
}

impl<'a> PostingsRef<'a> {
    /// Number of postings in the list.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates `(resource, impact)` pairs in impact order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.ids.iter().copied().zip(self.scores.iter().copied())
    }
}

/// A borrowed view of one resource's sparse tf-idf vector: parallel
/// concept-id/weight slices, ascending concept id.
#[derive(Debug, Clone, Copy)]
pub struct ResourceVectorRef<'a> {
    /// Concept ids, ascending.
    pub concepts: &'a [u32],
    /// tf-idf weights (Eq. 3).
    pub weights: &'a [f64],
}

impl<'a> ResourceVectorRef<'a> {
    /// Number of nonzero concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Iterates `(concept, weight)` pairs in ascending concept order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.concepts
            .iter()
            .copied()
            .zip(self.weights.iter().copied())
    }
}

/// The raw SoA arrays of an index — the unit the persist layer serializes
/// and the zero-copy loader reconstructs. Offsets are `u64` so the
/// in-memory shape matches the on-disk shape exactly.
pub(crate) struct IndexArrays<'a> {
    pub idf: &'a [f64],
    pub resource_norms: &'a [f64],
    pub rv_offsets: &'a [u64],
    pub rv_concepts: &'a [u32],
    pub rv_weights: &'a [f64],
    pub post_offsets: &'a [u64],
    pub post_ids: &'a [u32],
    pub post_scores: &'a [f64],
    pub block_offsets: &'a [u64],
    pub block_max: &'a [f64],
    pub max_impact: &'a [f64],
}

/// The offline concept index: tf-idf resource vectors plus a
/// block-structured SoA inverted index from concepts to resources.
#[derive(Debug, Clone)]
pub struct ConceptIndex {
    num_resources: usize,
    num_concepts: usize,
    /// `idf[l] = log(N / n_l)`; 0 for unseen concepts (Eq. 1).
    idf: Slab<f64>,
    /// Per-resource vector L2 norms (denominator of Eq. 4).
    resource_norms: Slab<f64>,
    /// Resource tf-idf vectors, ragged SoA: resource `r` owns
    /// `rv_concepts/rv_weights[rv_offsets[r]..rv_offsets[r+1]]`,
    /// ascending concept id.
    rv_offsets: Slab<u64>,
    rv_concepts: Slab<u32>,
    rv_weights: Slab<f64>,
    /// Inverted index, ragged SoA: concept `l` owns
    /// `post_ids/post_scores[post_offsets[l]..post_offsets[l+1]]`,
    /// descending impact (ties by ascending resource id).
    post_offsets: Slab<u64>,
    post_ids: Slab<u32>,
    post_scores: Slab<f64>,
    /// Block maxima, ragged per concept: concept `l` owns
    /// `block_max[block_offsets[l]..block_offsets[l+1]]`, one entry per
    /// [`BLOCK_LEN`] postings (the last block may be short). Because the
    /// list is impact-descending, block `b`'s max is the impact at the
    /// block's first posting.
    block_offsets: Slab<u64>,
    block_max: Slab<f64>,
    /// Per-posting-list maximum impact (MaxScore upper-bound metadata);
    /// 0 for empty lists.
    max_impact: Slab<f64>,
}

impl ConceptIndex {
    /// Builds the index: for every resource, tag occurrence counts
    /// `c(t, r)` are aggregated into concept counts `c(l, r)`, normalized
    /// to `tf` (Eq. 2) and weighted by `idf` (Eq. 1). Accepts hard or soft
    /// assignments through [`ConceptAssignment`].
    pub fn build(folksonomy: &Folksonomy, concepts: &dyn ConceptAssignment) -> Self {
        let n_resources = folksonomy.num_resources();
        let n_concepts = concepts.num_concepts();

        // Concept counts per resource + document frequencies. One dense
        // scratch accumulator with a touched-list is reused across all
        // resources (cleared sparsely), instead of a fresh zeroed
        // `vec![0.0; n_concepts]` per resource.
        let mut doc_freq = vec![0usize; n_concepts];
        let mut raw_counts: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n_resources);
        let mut scratch = vec![0.0f64; n_concepts];
        let mut touched: Vec<u32> = Vec::new();
        for r in 0..n_resources {
            touched.clear();
            for (t, c) in folksonomy.resource_tag_counts(ResourceId::from_index(r)) {
                concepts.for_each_weight(t.index(), &mut |l, w| {
                    if scratch[l] == 0.0 {
                        touched.push(l as u32);
                    }
                    scratch[l] += w * c as f64;
                });
            }
            touched.sort_unstable();
            let mut sparse: Vec<(u32, f64)> = Vec::with_capacity(touched.len());
            for &l in &touched {
                let c = scratch[l as usize];
                scratch[l as usize] = 0.0;
                if c > 0.0 {
                    sparse.push((l, c));
                    doc_freq[l as usize] += 1;
                }
            }
            raw_counts.push(sparse);
        }

        let n = n_resources as f64;
        let idf: Vec<f64> = doc_freq
            .iter()
            .map(|&df| if df == 0 { 0.0 } else { (n / df as f64).ln() })
            .collect();

        // tf-idf vectors, norms, impact-ordered inverted index.
        let mut resource_vectors = Vec::with_capacity(n_resources);
        let mut resource_norms = Vec::with_capacity(n_resources);
        let mut postings: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_concepts];
        for (r, counts) in raw_counts.into_iter().enumerate() {
            let total: f64 = counts.iter().map(|&(_, c)| c).sum();
            let vector: Vec<(u32, f64)> = counts
                .into_iter()
                .map(|(l, c)| {
                    let tf = if total > 0.0 { c / total } else { 0.0 };
                    (l, tf * idf[l as usize])
                })
                .filter(|&(_, w)| w != 0.0)
                .collect();
            let norm: f64 = vector.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
            if norm > 0.0 {
                for &(l, w) in &vector {
                    postings[l as usize].push((r as u32, w / norm));
                }
            }
            resource_vectors.push(vector);
            resource_norms.push(norm);
        }
        for list in &mut postings {
            // Impact order; equal impacts fall back to the ranking
            // tie-break (ascending resource id) so a prefix of a list is
            // already in final ranked order for single-term queries.
            list.sort_unstable_by(|a, b| cmp_ranked(a.1, a.0, b.1, b.0));
        }

        Self::from_lists(
            n_resources,
            n_concepts,
            idf,
            resource_vectors,
            resource_norms,
            postings,
        )
    }

    /// Assembles the SoA layout from per-list vectors. This is the single
    /// place the block structure is derived, shared by [`Self::build`] and
    /// the legacy (format v1) artifact decoder; posting lists must already
    /// be impact-ordered. Block maxima and per-list maxima are derived
    /// from the sorted lists (the first impact of each block / list).
    pub(crate) fn from_lists(
        num_resources: usize,
        num_concepts: usize,
        idf: Vec<f64>,
        resource_vectors: Vec<Vec<(u32, f64)>>,
        resource_norms: Vec<f64>,
        postings: Vec<Vec<(u32, f64)>>,
    ) -> Self {
        debug_assert_eq!(idf.len(), num_concepts);
        debug_assert_eq!(resource_vectors.len(), num_resources);
        debug_assert_eq!(resource_norms.len(), num_resources);
        debug_assert_eq!(postings.len(), num_concepts);

        let rv_nnz: usize = resource_vectors.iter().map(Vec::len).sum();
        let mut rv_offsets = Vec::with_capacity(num_resources + 1);
        let mut rv_concepts = Vec::with_capacity(rv_nnz);
        let mut rv_weights = Vec::with_capacity(rv_nnz);
        rv_offsets.push(0u64);
        for vector in &resource_vectors {
            for &(l, w) in vector {
                rv_concepts.push(l);
                rv_weights.push(w);
            }
            rv_offsets.push(rv_concepts.len() as u64);
        }

        let n_postings: usize = postings.iter().map(Vec::len).sum();
        let mut post_offsets = Vec::with_capacity(num_concepts + 1);
        let mut post_ids = Vec::with_capacity(n_postings);
        let mut post_scores = Vec::with_capacity(n_postings);
        let mut block_offsets = Vec::with_capacity(num_concepts + 1);
        let mut block_max = Vec::new();
        let mut max_impact = Vec::with_capacity(num_concepts);
        post_offsets.push(0u64);
        block_offsets.push(0u64);
        for list in &postings {
            for (j, &(r, w)) in list.iter().enumerate() {
                post_ids.push(r);
                post_scores.push(w);
                if j % BLOCK_LEN == 0 {
                    // Lists are impact-descending, so the block's first
                    // impact is its maximum.
                    block_max.push(w);
                }
            }
            post_offsets.push(post_ids.len() as u64);
            block_offsets.push(block_max.len() as u64);
            max_impact.push(list.first().map_or(0.0, |&(_, w)| w));
        }

        ConceptIndex {
            num_resources,
            num_concepts,
            idf: idf.into(),
            resource_norms: resource_norms.into(),
            rv_offsets: rv_offsets.into(),
            rv_concepts: rv_concepts.into(),
            rv_weights: rv_weights.into(),
            post_offsets: post_offsets.into(),
            post_ids: post_ids.into(),
            post_scores: post_scores.into(),
            block_offsets: block_offsets.into(),
            block_max: block_max.into(),
            max_impact: max_impact.into(),
        }
    }

    /// Reassembles an index directly from SoA slabs, exactly as a previous
    /// build laid them out. Used by `crate::persist` to restore a saved
    /// artifact — owned or borrowed from the file buffer: because every
    /// array (including the impact-sorted posting order, the block maxima,
    /// and the precomputed norms) is restored verbatim, a loaded index
    /// answers queries bit-identically to the one that was saved. The
    /// caller (the deserializer) is responsible for structural validation;
    /// this constructor only debug-asserts shapes.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_soa_parts(
        num_resources: usize,
        num_concepts: usize,
        idf: Slab<f64>,
        resource_norms: Slab<f64>,
        rv_offsets: Slab<u64>,
        rv_concepts: Slab<u32>,
        rv_weights: Slab<f64>,
        post_offsets: Slab<u64>,
        post_ids: Slab<u32>,
        post_scores: Slab<f64>,
        block_offsets: Slab<u64>,
        block_max: Slab<f64>,
        max_impact: Slab<f64>,
    ) -> Self {
        debug_assert_eq!(idf.len(), num_concepts);
        debug_assert_eq!(resource_norms.len(), num_resources);
        debug_assert_eq!(rv_offsets.len(), num_resources + 1);
        debug_assert_eq!(rv_concepts.len(), rv_weights.len());
        debug_assert_eq!(post_offsets.len(), num_concepts + 1);
        debug_assert_eq!(post_ids.len(), post_scores.len());
        debug_assert_eq!(block_offsets.len(), num_concepts + 1);
        debug_assert_eq!(max_impact.len(), num_concepts);
        ConceptIndex {
            num_resources,
            num_concepts,
            idf,
            resource_norms,
            rv_offsets,
            rv_concepts,
            rv_weights,
            post_offsets,
            post_ids,
            post_scores,
            block_offsets,
            block_max,
            max_impact,
        }
    }

    /// The raw SoA arrays (for serialization).
    pub(crate) fn as_arrays(&self) -> IndexArrays<'_> {
        IndexArrays {
            idf: &self.idf,
            resource_norms: &self.resource_norms,
            rv_offsets: &self.rv_offsets,
            rv_concepts: &self.rv_concepts,
            rv_weights: &self.rv_weights,
            post_offsets: &self.post_offsets,
            post_ids: &self.post_ids,
            post_scores: &self.post_scores,
            block_offsets: &self.block_offsets,
            block_max: &self.block_max,
            max_impact: &self.max_impact,
        }
    }

    /// Whether the hot arrays are served zero-copy out of an artifact
    /// buffer (true only for indexes restored via the borrowed load path).
    pub fn is_zero_copy(&self) -> bool {
        self.post_scores.is_borrowed()
    }

    /// Number of indexed resources.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Number of concepts in the space.
    pub fn num_concepts(&self) -> usize {
        self.num_concepts
    }

    /// Total number of postings across all concepts.
    pub fn num_postings(&self) -> usize {
        self.post_ids.len()
    }

    /// `idf` of a concept (Eq. 1's `log(N/n_l)`).
    pub fn idf(&self, concept: usize) -> f64 {
        self.idf[concept]
    }

    /// The sparse tf-idf vector of a resource (Eq. 3), ascending concept
    /// id.
    pub fn resource_vector(&self, r: usize) -> ResourceVectorRef<'_> {
        let lo = self.rv_offsets[r] as usize;
        let hi = self.rv_offsets[r + 1] as usize;
        ResourceVectorRef {
            concepts: &self.rv_concepts[lo..hi],
            weights: &self.rv_weights[lo..hi],
        }
    }

    /// L2 norm of a resource's tf-idf vector.
    pub fn resource_norm(&self, r: usize) -> f64 {
        self.resource_norms[r]
    }

    /// The impact-ordered posting list of a concept: parallel
    /// `(resource, impact)` arrays with `impact = w(l, r) / ‖r‖`,
    /// descending.
    pub fn postings(&self, concept: usize) -> PostingsRef<'_> {
        let lo = self.post_offsets[concept] as usize;
        let hi = self.post_offsets[concept + 1] as usize;
        PostingsRef {
            ids: &self.post_ids[lo..hi],
            scores: &self.post_scores[lo..hi],
        }
    }

    /// The block maxima of a concept's posting list: entry `b` is the
    /// maximum impact among postings `[b·BLOCK_LEN, (b+1)·BLOCK_LEN)` of
    /// the list (the last block may be short).
    pub fn block_maxima(&self, concept: usize) -> &[f64] {
        let lo = self.block_offsets[concept] as usize;
        let hi = self.block_offsets[concept + 1] as usize;
        &self.block_max[lo..hi]
    }

    /// Maximum impact in a concept's posting list (0 if empty).
    pub fn max_impact(&self, concept: usize) -> f64 {
        self.max_impact[concept]
    }

    /// Maps query tags to a [`PreparedQuery`]: each tag occurrence counts
    /// 1, spread over its concept memberships (hard or soft), normalized
    /// and idf-weighted exactly like resource vectors. Returns `None` when
    /// no known tag or no positively-weighted concept survives.
    pub fn prepare_query(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
    ) -> Option<PreparedQuery> {
        let mut counts = vec![0.0f64; self.num_concepts];
        let mut total = 0.0;
        for t in tags {
            if t.index() < concepts.num_tags() {
                concepts.for_each_weight(t.index(), &mut |l, w| {
                    counts[l] += w;
                });
                total += 1.0;
            }
        }
        if total == 0.0 {
            return None;
        }
        let terms: Vec<(u32, f64)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(l, &c)| (l as u32, (c / total) * self.idf[l]))
            .filter(|&(_, w)| w != 0.0)
            .collect();
        self.prepare_weighted(&terms)
    }

    /// Builds a [`PreparedQuery`] from raw `(concept, weight)` pairs:
    /// computes the norm (in ascending concept order, so every query path
    /// sums it identically) and applies the MaxScore term order.
    /// Out-of-range concept ids are dropped defensively, mirroring how
    /// unknown tags are ignored.
    pub fn prepare_weighted(&self, terms: &[(u32, f64)]) -> Option<PreparedQuery> {
        let mut terms: Vec<(u32, f64)> = terms
            .iter()
            .filter(|&&(l, _)| (l as usize) < self.num_concepts)
            .copied()
            .collect();
        terms.sort_unstable_by_key(|&(l, _)| l);
        let norm: f64 = terms.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm == 0.0 {
            return None;
        }
        self.order_terms(&mut terms);
        Some(PreparedQuery { terms, norm })
    }

    /// Sorts query terms by descending `weight * max_impact` — the shared
    /// MaxScore processing order. The exact reference path and both pruned
    /// engine paths consume terms in this order, which makes their
    /// floating-point accumulation sequences — and hence scores —
    /// identical for every surviving resource.
    pub(crate) fn order_terms(&self, terms: &mut [(u32, f64)]) {
        order_terms_with(terms, &self.max_impact);
    }

    /// Copies out the shard of this index owned by `shard` of
    /// `num_shards` under the deterministic modulo partition
    /// (resource `r` belongs to shard `r % num_shards`).
    ///
    /// The shard keeps the **global** resource-id space and the
    /// **global** idf array verbatim, so a query prepared against any
    /// shard is bit-identical to one prepared against the full index;
    /// only the postings, resource vectors, and norms of member
    /// resources are retained (non-members read as unindexed: empty
    /// vector, zero norm, no postings). Per-list metadata — block
    /// structure, block maxima, per-list maxima — is rederived from the
    /// filtered lists, whose impact order is inherited from the full
    /// index, so every per-shard structural invariant the persist
    /// validator checks holds by construction. Kept impacts are the
    /// full index's bytes, untouched: a resource scores bit-identically
    /// in its shard and in the full index.
    pub fn partition_by_resource(&self, shard: usize, num_shards: usize) -> ConceptIndex {
        assert!(num_shards >= 1, "num_shards must be >= 1");
        assert!(shard < num_shards, "shard {shard} out of {num_shards}");
        let member = |r: usize| r % num_shards == shard;
        let mut resource_vectors = Vec::with_capacity(self.num_resources);
        let mut resource_norms = Vec::with_capacity(self.num_resources);
        for r in 0..self.num_resources {
            if member(r) {
                resource_vectors.push(self.resource_vector(r).iter().collect());
                resource_norms.push(self.resource_norm(r));
            } else {
                resource_vectors.push(Vec::new());
                resource_norms.push(0.0);
            }
        }
        let postings: Vec<Vec<(u32, f64)>> = (0..self.num_concepts)
            .map(|l| {
                self.postings(l)
                    .iter()
                    .filter(|&(r, _)| member(r as usize))
                    .collect()
            })
            .collect();
        Self::from_lists(
            self.num_resources,
            self.num_concepts,
            self.idf.to_vec(),
            resource_vectors,
            resource_norms,
            postings,
        )
    }

    /// Exhaustive reference ranking: dense accumulation over every posting
    /// of every term, full sort, truncate. `top_k = 0` returns all
    /// matches. This is the path the paper describes (Eq. 4 over the
    /// inverted index) and the ground truth for the pruned engine.
    pub fn rank_exact(&self, query: &PreparedQuery, top_k: usize) -> Vec<RankedResource> {
        let mut scores = vec![0.0f64; self.num_resources];
        for &(l, wq) in &query.terms {
            let p = self.postings(l as usize);
            for (r, w) in p.iter() {
                scores[r as usize] += wq * w;
            }
        }
        let mut ranked: Vec<RankedResource> = scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0.0)
            .map(|(r, &s)| RankedResource {
                resource: ResourceId::from_index(r),
                score: s / query.norm,
            })
            .collect();
        ranked.sort_unstable_by(|a, b| {
            cmp_ranked(
                a.score,
                a.resource.index() as u32,
                b.score,
                b.resource.index() as u32,
            )
        });
        if top_k > 0 {
            ranked.truncate(top_k);
        }
        ranked
    }

    /// Transforms query tags into the concept space and ranks resources by
    /// cosine similarity. Unknown concepts (empty `idf`) contribute nothing;
    /// resources with zero similarity are omitted. Ties break by resource id
    /// for determinism. `top_k = 0` returns all matches.
    ///
    /// Convenience wrapper over the exact reference path; latency-critical
    /// callers should use [`crate::query::QueryEngine`] instead.
    pub fn query_tag_ids(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        match self.prepare_query(concepts, tags) {
            Some(query) => self.rank_exact(&query, top_k),
            None => Vec::new(),
        }
    }

    /// Ranks resources against a raw query vector of `(concept, weight)`
    /// pairs (Eq. 4) via the exact reference path.
    pub fn query_weighted_concepts(
        &self,
        query: &[(usize, f64)],
        top_k: usize,
    ) -> Vec<RankedResource> {
        let terms: Vec<(u32, f64)> = query.iter().map(|&(l, w)| (l as u32, w)).collect();
        match self.prepare_weighted(&terms) {
            Some(query) => self.rank_exact(&query, top_k),
            None => Vec::new(),
        }
    }

    /// Size of the index in `f64`-equivalents (for memory accounting).
    pub fn footprint_len(&self) -> usize {
        let vectors = 2 * self.rv_concepts.len();
        let postings = 2 * self.post_ids.len();
        self.idf.len()
            + self.resource_norms.len()
            + self.max_impact.len()
            + self.block_max.len()
            + vectors
            + postings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::FolksonomyBuilder;

    /// Corpus: r1 tagged with music-ish tags, r2 with both, r3 with tech.
    fn corpus() -> (Folksonomy, ConceptModel) {
        let mut b = FolksonomyBuilder::new();
        // music concept tags: audio(0), mp3(1); tech: laptop(2), wifi(3).
        b.add("u1", "audio", "r1");
        b.add("u2", "audio", "r1");
        b.add("u3", "mp3", "r1");
        b.add("u1", "audio", "r2");
        b.add("u2", "laptop", "r2");
        b.add("u1", "laptop", "r3");
        b.add("u2", "wifi", "r3");
        b.add("u3", "laptop", "r3");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 0, 1, 1], 1.0);
        (f, concepts)
    }

    #[test]
    fn tfidf_weights_follow_eq1_eq2() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        // Concept 0 (music) appears in r1, r2 → df = 2 of N = 3.
        assert!((index.idf(0) - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        // Concept 1 (tech) appears in r2, r3 → same idf.
        assert!((index.idf(1) - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        // r1: 3 music occurrences, 0 tech → tf(music) = 1.
        let r1 = f.resource_id("r1").unwrap().index();
        let v1 = index.resource_vector(r1);
        assert_eq!(v1.len(), 1);
        assert_eq!(v1.concepts[0], 0);
        assert!((v1.weights[0] - 1.0 * (1.5f64).ln()).abs() < 1e-12);
        // r2: 1 music + 1 tech → tf = 0.5 each.
        let r2 = f.resource_id("r2").unwrap().index();
        let v2 = index.resource_vector(r2);
        assert_eq!(v2.len(), 2);
        assert!((v2.weights[0] - 0.5 * (1.5f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn music_query_ranks_music_resource_first() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio], 0);
        assert_eq!(ranked.len(), 2, "r1 and r2 match the music concept");
        assert_eq!(f.resource_name(ranked[0].resource), "r1");
        assert!(ranked[0].score > ranked[1].score);
        // Pure-concept resource has cosine exactly 1 with a pure query.
        assert!((ranked[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synonym_query_matches_via_concepts() {
        // The whole point of CubeLSI: querying "mp3" must retrieve r2 even
        // though r2 was never tagged "mp3" — they share the music concept.
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let mp3 = f.tag_id("mp3").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[mp3], 0);
        let names: Vec<&str> = ranked.iter().map(|r| f.resource_name(r.resource)).collect();
        assert!(names.contains(&"r2"), "concept match must reach r2");
    }

    #[test]
    fn multi_tag_query_blends_concepts() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let laptop = f.tag_id("laptop").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio, laptop], 0);
        // r2 holds both concepts → best match.
        assert_eq!(f.resource_name(ranked[0].resource), "r2");
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn top_k_truncates() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio], 1);
        assert_eq!(ranked.len(), 1);
    }

    #[test]
    fn empty_and_unknown_queries() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        assert!(index.query_tag_ids(&concepts, &[], 0).is_empty());
        // A tag id beyond the concept model is ignored defensively.
        let bogus = TagId::from_index(99);
        assert!(index.query_tag_ids(&concepts, &[bogus], 0).is_empty());
        let _ = f;
    }

    #[test]
    fn scores_ranked_descending_with_deterministic_ties() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let laptop = f.tag_id("laptop").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[laptop], 0);
        for w in ranked.windows(2) {
            assert!(
                w[0].score > w[1].score
                    || (w[0].score == w[1].score && w[0].resource < w[1].resource)
            );
        }
    }

    #[test]
    fn postings_are_impact_ordered_with_max_metadata() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        for l in 0..index.num_concepts() {
            let list = index.postings(l);
            for j in 1..list.len() {
                assert!(
                    list.scores[j - 1] > list.scores[j]
                        || (list.scores[j - 1] == list.scores[j] && list.ids[j - 1] < list.ids[j]),
                    "postings of concept {l} not impact-ordered"
                );
            }
            let expected_max = list.scores.first().copied().unwrap_or(0.0);
            assert_eq!(index.max_impact(l), expected_max);
            // Every impact is a normalized weight: within (0, 1].
            for (r, w) in list.iter() {
                assert!(w > 0.0 && w <= 1.0 + 1e-12, "impact out of range");
                let norm = index.resource_norm(r as usize);
                assert!(norm > 0.0);
            }
        }
    }

    #[test]
    fn block_maxima_match_block_heads() {
        // Long single-concept lists spanning several blocks: block maxima
        // must equal the first impact of every block.
        let mut b = FolksonomyBuilder::new();
        for r in 0..300 {
            b.add("u1", "t", &format!("r{r}"));
            if r % 3 == 0 {
                b.add("u2", "other", &format!("r{r}"));
            }
        }
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 1], 1.0);
        let index = ConceptIndex::build(&f, &concepts);
        for l in 0..index.num_concepts() {
            let list = index.postings(l);
            let blocks = index.block_maxima(l);
            assert_eq!(blocks.len(), list.len().div_ceil(BLOCK_LEN));
            for (bi, &bm) in blocks.iter().enumerate() {
                let lo = bi * BLOCK_LEN;
                let hi = (lo + BLOCK_LEN).min(list.len());
                let head = list.scores[lo];
                assert_eq!(bm.to_bits(), head.to_bits(), "block {bi} of concept {l}");
                for &w in &list.scores[lo..hi] {
                    assert!(w <= bm, "block max must dominate its block");
                }
            }
        }
    }

    #[test]
    fn prepared_terms_follow_maxscore_order() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let laptop = f.tag_id("laptop").unwrap();
        let wifi = f.tag_id("wifi").unwrap();
        let q = index
            .prepare_query(&concepts, &[audio, laptop, wifi])
            .unwrap();
        assert!(!q.terms.is_empty());
        assert!(q.norm > 0.0);
        for w in q.terms.windows(2) {
            let b0 = w[0].1 * index.max_impact(w[0].0 as usize);
            let b1 = w[1].1 * index.max_impact(w[1].0 as usize);
            assert!(b0 >= b1, "terms must be in descending bound order");
        }
    }

    #[test]
    fn footprint_is_positive_and_bounded() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let fp = index.footprint_len();
        assert!(fp > 0);
        // Sanity: strictly less than a dense resources×concepts matrix + slack.
        assert!(fp <= 2 * (index.num_resources() * index.num_concepts() + 10) * 2);
    }

    #[test]
    fn idf_zero_concept_is_inert() {
        // A concept that annotates every resource gets idf 0 and must not
        // influence ranking.
        let mut b = FolksonomyBuilder::new();
        b.add("u1", "common", "r1");
        b.add("u1", "common", "r2");
        b.add("u1", "niche", "r2");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 1], 1.0);
        let index = ConceptIndex::build(&f, &concepts);
        assert_eq!(index.idf(0), 0.0);
        let common = f.tag_id("common").unwrap();
        assert!(index.query_tag_ids(&concepts, &[common], 0).is_empty());
        let niche = f.tag_id("niche").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[niche], 0);
        assert_eq!(ranked.len(), 1);
        assert_eq!(f.resource_name(ranked[0].resource), "r2");
    }
}
