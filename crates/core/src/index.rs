//! The bag-of-concepts retrieval model (§III of the paper).
//!
//! After concept distillation every resource's bag of tags is mapped to a
//! bag of concepts. Resources are vectors of tf-idf weights over concepts
//! (Eqs. 1–3); queries are transformed the same way; ranking is by cosine
//! similarity (Eq. 4), served from an inverted index over concepts.
//!
//! # Posting layout
//!
//! The inverted index is laid out for cache-friendly top-k pruning:
//!
//! * **Structure of arrays** — resource ids (`u32`) and cosine-normalized
//!   impacts (`f64`, `w(l, r) / ‖r‖`) live in two parallel flat arrays
//!   shared by all concepts, with a per-concept offset table. A pruning
//!   scan that only needs ids (the update-only tail of a list) touches
//!   4 bytes per posting instead of a padded 16-byte `(u32, f64)` pair.
//! * **Impact order** — each list is sorted by descending impact (ties by
//!   ascending resource id, the ranking tie-break), so a prefix of a list
//!   is already in final ranked order for single-term queries and the
//!   per-list maximum is simply the first impact.
//! * **Block maxima** — every list is carved into fixed [`BLOCK_LEN`]
//!   posting blocks, each carrying its maximum impact in a separate dense
//!   array. The block-max query path checks one bound per block instead of
//!   one per posting, and skips whole blocks that cannot beat the current
//!   top-k threshold. Per-list maxima (`max_impact`) remain as the
//!   MaxScore term-ordering metadata.
//!
//! All arrays are [`crate::slab::Slab`]s: owned for freshly built indexes,
//! or borrowed straight out of a loaded artifact buffer by the zero-copy
//! persist path. The actual pruned query engine lives in [`crate::query`];
//! this module keeps the exhaustive [`ConceptIndex::rank_exact`] path as
//! the reference implementation the engine is tested against.

use crate::concepts::ConceptModel;
use crate::slab::Slab;
use cubelsi_folksonomy::{Folksonomy, ResourceId, TagId};

/// Number of postings per block-max block. 64 keeps a block's ids within a
/// single 256-byte stretch (four cache lines) and amortizes one bound
/// check and one branch over 64 postings.
pub const BLOCK_LEN: usize = 64;

/// Abstraction over hard and soft tag→concept mappings, so one index and
/// one query path serve both the paper's hard clustering and the
/// soft-clustering extension (footnote 5).
///
/// `Sync` is required so the batched query engine can share an assignment
/// across worker threads; both implementations are plain owned data.
pub trait ConceptAssignment: Sync {
    /// Number of concepts in the space.
    fn num_concepts(&self) -> usize;
    /// Number of tags covered.
    fn num_tags(&self) -> usize;
    /// Calls `f(concept, weight)` for every concept the tag belongs to;
    /// weights sum to 1 per tag.
    fn for_each_weight(&self, tag: usize, f: &mut dyn FnMut(usize, f64));
}

impl ConceptAssignment for ConceptModel {
    fn num_concepts(&self) -> usize {
        ConceptModel::num_concepts(self)
    }
    fn num_tags(&self) -> usize {
        ConceptModel::num_tags(self)
    }
    fn for_each_weight(&self, tag: usize, f: &mut dyn FnMut(usize, f64)) {
        f(self.concept_of(tag), 1.0);
    }
}

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedResource {
    /// The resource.
    pub resource: ResourceId,
    /// Cosine similarity to the query (Eq. 4).
    pub score: f64,
}

/// The single ranking total order every path must agree on — score
/// descending, resource id ascending. The posting-list sort, the exact
/// reference sort, the pruned engine's heap, and the final result sort
/// all route through this function; the pruned-vs-exact bit-identity
/// contract depends on them never diverging.
#[inline]
pub(crate) fn cmp_ranked(a_score: f64, a_id: u32, b_score: f64, b_id: u32) -> std::cmp::Ordering {
    b_score
        .partial_cmp(&a_score)
        .unwrap_or_else(|| cmp_nan_last(a_score, b_score))
        .then(a_id.cmp(&b_id))
}

/// Tie-break for score comparisons involving NaN: NaN ranks strictly
/// below every number and NaNs tie with each other, which keeps the
/// comparator a total order. Without this, a non-finite query weight
/// reaching the exact reference path (`rank_exact` divides by a possibly
/// non-finite norm *after* its positivity filter) would hand
/// `sort_unstable_by` an intransitive comparator — allowed to panic.
#[inline]
fn cmp_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        _ => std::cmp::Ordering::Equal,
    }
}

/// Sorts query terms by descending `weight * max_impact[concept]` (ties
/// by ascending concept id) — the MaxScore processing order. This is the
/// single comparator behind [`ConceptIndex::order_terms`] *and* the
/// sharded engine's global term order: the engines consume terms in this
/// order, which makes their floating-point accumulation sequences — and
/// hence scores — identical for every surviving resource. `max_impact`
/// entries may be a shard-local or a global maximum; the order is exact
/// either way, it only has to be *the same* for every engine whose
/// results are merged. NaN products (possible only through the raw
/// weighted entry points) sort last, keeping the comparator total.
pub(crate) fn order_terms_with(terms: &mut [(u32, f64)], max_impact: &[f64]) {
    terms.sort_unstable_by(|a, b| {
        let ba = a.1 * max_impact[a.0 as usize];
        let bb = b.1 * max_impact[b.0 as usize];
        bb.partial_cmp(&ba)
            .unwrap_or_else(|| cmp_nan_last(ba, bb))
            .then(a.0.cmp(&b.0))
    });
}

/// A query mapped into concept space: non-negative `(concept, weight)`
/// terms sorted by descending maximum score contribution (the MaxScore
/// processing order), plus the query vector's L2 norm.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// `(concept, weight)` pairs, weights > 0, sorted by descending
    /// `weight * max_impact(concept)` (ties by concept id).
    pub terms: Vec<(u32, f64)>,
    /// L2 norm of the query weight vector (denominator of Eq. 4).
    pub norm: f64,
}

/// A borrowed view of one concept's posting list: parallel id/impact
/// slices of equal length, impact-descending.
#[derive(Debug, Clone, Copy)]
pub struct PostingsRef<'a> {
    /// Resource ids.
    pub ids: &'a [u32],
    /// Cosine-normalized impacts (`w(l, r) / ‖r‖`), descending.
    pub scores: &'a [f64],
}

impl<'a> PostingsRef<'a> {
    /// Number of postings in the list.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates `(resource, impact)` pairs in impact order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.ids.iter().copied().zip(self.scores.iter().copied())
    }
}

/// A borrowed view of one resource's sparse tf-idf vector: parallel
/// concept-id/weight slices, ascending concept id.
#[derive(Debug, Clone, Copy)]
pub struct ResourceVectorRef<'a> {
    /// Concept ids, ascending.
    pub concepts: &'a [u32],
    /// tf-idf weights (Eq. 3).
    pub weights: &'a [f64],
}

impl<'a> ResourceVectorRef<'a> {
    /// Number of nonzero concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Iterates `(concept, weight)` pairs in ascending concept order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.concepts
            .iter()
            .copied()
            .zip(self.weights.iter().copied())
    }
}

/// Compressed block postings: the hot, cache-dense mirror of the posting
/// arrays the [`crate::query::PruningStrategy::CompressedBlockMax`] path
/// streams instead of `post_ids`/`post_scores`.
///
/// Blocks share the global block index space of `block_max` (concept `l`
/// owns blocks `block_offsets[l]..block_offsets[l+1]`). Per block of up
/// to [`BLOCK_LEN`] postings:
///
/// * **ids** are frame-of-reference coded: `blk_base` holds the block's
///   minimum resource id and `packed_ids` stores `id - base` for each
///   posting at the block's fixed bit width `blk_bits` (the width of the
///   largest delta; 0 when all ids in the block are equal). Ids within a
///   block are impact-ordered, *not* monotone, which is why deltas are
///   taken against the block minimum rather than the previous id. Every
///   block's packed run starts at a byte boundary (`blk_pack_start`).
/// * **impacts** are 8-bit quantized *upper bounds*: posting `j` with
///   quantized value `q = quant[j]` satisfies
///   `blk_offset + blk_scale · q ≥ post_scores[j]` (evaluated exactly as
///   written, in f64 after widening the f32 block constants). The query
///   path uses the dequantized value only to *reject* candidates; every
///   accumulated contribution reads the exact f64 impact, which is what
///   keeps compressed results bit-identical to the uncompressed paths.
///
/// `packed_ids` carries 8 zero guard bytes past the last used byte so
/// the decoder can always issue an unaligned 8-byte load, branch-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompressedPostings {
    /// Per-block minimum resource id (the frame of reference).
    pub blk_base: Slab<u32>,
    /// Per-block packed bit width, `0..=32`.
    pub blk_bits: Slab<u8>,
    /// Per-block quantization scale (f32, widened to f64 at use).
    pub blk_scale: Slab<f32>,
    /// Per-block quantization offset (f32, widened to f64 at use).
    pub blk_offset: Slab<f32>,
    /// Byte offset of each block's packed run inside `packed_ids`;
    /// `n_blocks + 1` entries, monotone, last = used bytes (excluding
    /// the guard bytes).
    pub blk_pack_start: Slab<u64>,
    /// Per-posting 8-bit quantized impact (upper bound when dequantized).
    pub quant: Slab<u8>,
    /// Bit-packed id deltas, plus 8 zero guard bytes.
    pub packed_ids: Slab<u8>,
}

impl CompressedPostings {
    /// Number of blocks described.
    pub fn num_blocks(&self) -> usize {
        self.blk_base.len()
    }

    /// Decodes the bit-packed resource ids of global block `blk`
    /// (holding `len ≤ BLOCK_LEN` postings) into `out[..len]`.
    /// `wrapping_add` keeps a hostile id payload free of arithmetic
    /// panics; the reads themselves rely on the pack-run-chain + guard
    /// invariant (see [`window_unchecked`]), which the persist
    /// validator establishes on a loaded section before its first
    /// decode and then uses to reject any section whose decoded ids
    /// differ from the exact id array.
    #[inline]
    pub fn decode_block_ids(&self, blk: usize, len: usize, out: &mut [u32]) {
        let base = self.blk_base[blk];
        let bits = self.blk_bits[blk] as usize;
        let out = &mut out[..len];
        if bits == 0 {
            out.fill(base);
            return;
        }
        let bytes = &self.packed_ids[self.blk_pack_start[blk] as usize..];
        if unpack_simd_if_supported(bytes, bits, base, out) {
            return;
        }
        let mask = (1u64 << bits) - 1;
        // Each 8-byte window starting at bit `b` holds every bit of the
        // `g` ids beginning there as long as `(b & 7) + g·bits ≤ 64`, so
        // narrow widths decode several ids per unaligned load — the
        // iterations stay independent (no reservoir carry), which keeps
        // the loads pipelined, and the group factor divides the
        // bounds-check count. The guard bytes past the packed run keep
        // every window in bounds.
        // Monomorphized per group size so each inner loop unrolls to
        // straight-line code instead of a runtime-bounded loop.
        match bits {
            ..=14 => unpack_grouped::<4>(bytes, bits, mask, base, out),
            15..=19 => unpack_grouped::<3>(bytes, bits, mask, base, out),
            20..=28 => unpack_grouped::<2>(bytes, bits, mask, base, out),
            _ => unpack_grouped::<1>(bytes, bits, mask, base, out),
        }
    }

    /// Streams the decoded ids of block `blk` (holding `len ≤ BLOCK_LEN`
    /// postings) to `f(j, id)` without materializing them — the scan
    /// paths that consume each id exactly once (slot-map probes,
    /// gated admission) fuse the decode into their own loop and skip
    /// the staging-buffer round-trip. Same grouped windows (and the
    /// same read-safety invariant) as [`Self::decode_block_ids`].
    #[inline]
    pub fn for_each_block_id(&self, blk: usize, len: usize, mut f: impl FnMut(usize, u32)) {
        let base = self.blk_base[blk];
        let bits = self.blk_bits[blk] as usize;
        if bits == 0 {
            for j in 0..len {
                f(j, base);
            }
            return;
        }
        let bytes = &self.packed_ids[self.blk_pack_start[blk] as usize..];
        // The wide widths decode fastest through the vector kernel even
        // with a stack staging hop: 8 ids per shuffle beats 2–3 ids per
        // scalar window by enough to pay for the L1 round-trip.
        let mut buf = [0u32; BLOCK_LEN];
        if unpack_simd_if_supported(bytes, bits, base, &mut buf[..len]) {
            for (j, &r) in buf[..len].iter().enumerate() {
                f(j, r);
            }
            return;
        }
        let mask = (1u64 << bits) - 1;
        match bits {
            ..=14 => stream_grouped::<4>(bytes, bits, mask, base, len, f),
            15..=19 => stream_grouped::<3>(bytes, bits, mask, base, len, f),
            20..=28 => stream_grouped::<2>(bytes, bits, mask, base, len, f),
            _ => stream_grouped::<1>(bytes, bits, mask, base, len, f),
        }
    }
}

/// One unaligned 8-byte little-endian load at bit offset `bit` of
/// `bytes`, shifted so the value starting at `bit` sits at bit 0. This
/// is the only memory access in the hot decode loops, so it skips the
/// slice bounds check.
///
/// # Safety
///
/// `(bit >> 3) + 8 ≤ bytes.len()` must hold. Callers pass a block's
/// packed run with everything after it in the id stream, and only form
/// windows starting inside the run (`bit < len·bits`); the run is
/// always followed by at least 8 readable bytes because
/// [`compress_postings`] appends 8 zero guard bytes after the final
/// run, and the persist validator re-establishes the identical
/// pack-run-chain + guard-tail invariant on every loaded artifact
/// before its first decode.
#[inline]
unsafe fn window_unchecked(bytes: &[u8], bit: usize) -> u64 {
    let byte = bit >> 3;
    debug_assert!(byte + 8 <= bytes.len());
    // SAFETY: `byte + 8 ≤ bytes.len()` is the caller's contract (see
    // `# Safety` above), so the unaligned 8-byte read stays in bounds
    // of the provenance-carrying slice pointer.
    u64::from_le_bytes(unsafe { bytes.as_ptr().add(byte).cast::<[u8; 8]>().read_unaligned() })
        >> (bit & 7)
}

/// Unpacks `out.len()` bit-packed values of width `bits` from `bytes`,
/// adding `base` to each, reading `G` values per 8-byte window. Each
/// window starting at bit `b` holds every bit of the `G` values
/// beginning there as long as `(b & 7) + G·bits ≤ 64`, so narrow widths
/// decode several ids per unaligned load — the windows stay independent
/// (no reservoir carry), which keeps the loads pipelined, and the group
/// factor divides the bounds-check count. The guard bytes past the
/// packed run keep every window in bounds.
#[inline]
fn unpack_grouped<const G: usize>(
    bytes: &[u8],
    bits: usize,
    mask: u64,
    base: u32,
    out: &mut [u32],
) {
    debug_assert!(7 + G * bits <= 64);
    // SAFETY: every requested window starts inside the packed run and
    // the run carries 8 guard bytes past its end (pack-run-chain
    // invariant re-validated on load), so `window_unchecked`'s
    // in-bounds contract holds for each call below.
    let window = |bit: usize| -> u64 { unsafe { window_unchecked(bytes, bit) } };
    let done = out.len() / G * G;
    let mut chunks = out.chunks_exact_mut(G);
    for (i, chunk) in chunks.by_ref().enumerate() {
        let mut w = window(i * G * bits);
        for slot in chunk {
            *slot = base.wrapping_add((w & mask) as u32);
            w >>= bits;
        }
    }
    for (j, slot) in chunks.into_remainder().iter_mut().enumerate() {
        *slot = base.wrapping_add((window((done + j) * bits) & mask) as u32);
    }
}

/// Closure-consuming sibling of [`unpack_grouped`]: identical window
/// walk, but each value goes to `f(j, id)` instead of a slice slot.
#[inline]
fn stream_grouped<const G: usize>(
    bytes: &[u8],
    bits: usize,
    mask: u64,
    base: u32,
    len: usize,
    mut f: impl FnMut(usize, u32),
) {
    debug_assert!(7 + G * bits <= 64);
    // SAFETY: every requested window starts inside the packed run and
    // the run carries 8 guard bytes past its end (pack-run-chain
    // invariant re-validated on load), so `window_unchecked`'s
    // in-bounds contract holds for each call below.
    let window = |bit: usize| -> u64 { unsafe { window_unchecked(bytes, bit) } };
    let mut j = 0;
    while j + G <= len {
        let mut w = window(j * bits);
        for g in 0..G {
            f(j + g, base.wrapping_add((w & mask) as u32));
            w >>= bits;
        }
        j += G;
    }
    while j < len {
        f(j, base.wrapping_add((window(j * bits) & mask) as u32));
        j += 1;
    }
}

/// Decodes `out.len()` ids through the AVX2 kernel when the width is in
/// its supported range and the CPU has the feature, returning whether it
/// ran. Callers fall back to the scalar grouped windows on `false`, so
/// the vector path is a pure mirror of the scalar one: same inputs, same
/// ids, verified bit-for-bit by `simd_unpack_matches_scalar` below and by
/// every equivalence / persist-validator decode on wide-width datasets.
///
/// The same pack-run-chain + guard-tail invariant that backs
/// [`window_unchecked`] makes the vector loads sound — see
/// [`simd::unpack`] for the width-range derivation.
#[inline]
fn unpack_simd_if_supported(bytes: &[u8], bits: usize, base: u32, out: &mut [u32]) -> bool {
    // Under Miri the vector kernel is compiled out (no AVX2 intrinsic
    // shims there); the scalar grouped windows cover every width, so
    // the interpreted runs exercise the same decode results.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if (simd::MIN_BITS..=simd::MAX_BITS).contains(&bits)
        && std::arch::is_x86_feature_detected!("avx2")
    {
        // SAFETY: feature checked above; the byte-range invariant is the
        // callers' (established at build by `compress_postings`, on load
        // by the persist validator — see `window_unchecked`).
        unsafe { simd::unpack(bytes, bits, base, out) };
        return true;
    }
    #[cfg(any(not(target_arch = "x86_64"), miri))]
    let _ = (bytes, bits, base, out);
    false
}

/// AVX2 bit-unpack kernel for the mid/wide widths where the scalar
/// grouped windows drop to 2–3 ids per load: one `vpshufb` byte-gather
/// plus a per-lane variable shift decodes 8 ids per iteration.
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod simd {
    use super::window_unchecked;
    use core::arch::x86_64::*;

    /// Narrowest width the kernel accepts. Below 15 bits the final
    /// group's high-lane load could outrun the 8 guard bytes (see the
    /// derivation on [`unpack`]) — and the scalar 4-per-window tier is
    /// at its best there anyway.
    pub const MIN_BITS: usize = 15;
    /// Widest width the kernel accepts: a dword lane must hold a whole
    /// value after its sub-byte shift, i.e. `7 + bits ≤ 32`.
    pub const MAX_BITS: usize = 25;

    /// Per-width shuffle control and per-lane shift counts. Groups of 8
    /// ids start at bit `8g·bits` — always byte-aligned — so lane 0's
    /// phase is 0 and lane 1's (loaded at byte `4·bits >> 3`) is the
    /// fixed `4·bits & 7`; dword `i` of a lane gathers the 4 bytes
    /// covering its value and then shifts by `(phase + i·bits) & 7`.
    const fn ctrl(bits: usize) -> ([u8; 32], [u32; 8]) {
        let mut shuf = [0u8; 32];
        let mut shift = [0u32; 8];
        let mut lane = 0;
        while lane < 2 {
            let phase = if lane == 0 { 0 } else { (4 * bits) & 7 };
            let mut i = 0;
            while i < 4 {
                let bit = phase + i * bits;
                shift[lane * 4 + i] = (bit & 7) as u32;
                let mut k = 0;
                while k < 4 {
                    shuf[lane * 16 + i * 4 + k] = ((bit >> 3) + k) as u8;
                    k += 1;
                }
                i += 1;
            }
            lane += 1;
        }
        (shuf, shift)
    }

    const CTRL: [([u8; 32], [u32; 8]); MAX_BITS + 1] = {
        let mut t = [([0u8; 32], [0u32; 8]); MAX_BITS + 1];
        let mut w = MIN_BITS;
        while w <= MAX_BITS {
            t[w] = ctrl(w);
            w += 1;
        }
        t
    };

    /// Decodes `out.len()` values of width `bits ∈ [MIN_BITS, MAX_BITS]`
    /// from the packed run at `bytes`, adding `base` (wrapping, like the
    /// scalar path) to each. Groups of 8 go through the vector pipe; the
    /// tail reuses the scalar window.
    ///
    /// # Safety
    ///
    /// Caller must uphold the [`window_unchecked`] invariant (the run is
    /// followed by at least 8 readable bytes) and have verified AVX2.
    /// Each iteration issues two 16-byte loads; the later one, for group
    /// `g` of `n = out.len()` values, ends at byte
    /// `g·bits + (4·bits >> 3) + 16` with `g ≤ n/8 − 1`, which stays
    /// within `ceil(n·bits/8) + 8` exactly when `ceil(bits/2) ≥ 8` —
    /// hence the `MIN_BITS` floor of 15.
    #[target_feature(enable = "avx2")]
    pub unsafe fn unpack(bytes: &[u8], bits: usize, base: u32, out: &mut [u32]) {
        debug_assert!((MIN_BITS..=MAX_BITS).contains(&bits));
        let (shuf_ctrl, shift_ctrl) = &CTRL[bits];
        // SAFETY: 32-byte unaligned loads from the 32-byte const
        // control tables (`[u8; 32]` / `[u32; 8]`), fully in bounds.
        let (shuf, shift) = unsafe {
            (
                _mm256_loadu_si256(shuf_ctrl.as_ptr() as *const __m256i),
                _mm256_loadu_si256(shift_ctrl.as_ptr() as *const __m256i),
            )
        };
        let maskv = _mm256_set1_epi32(((1u32 << bits) - 1) as i32);
        let basev = _mm256_set1_epi32(base as i32);
        let len = out.len();
        let hi_off = (4 * bits) >> 3;
        let src = bytes.as_ptr();
        let dst = out.as_mut_ptr();
        let mut g = 0;
        while (g + 1) * 8 <= len {
            // SAFETY: both 16-byte loads for group `g ≤ len/8 − 1` end
            // within the guard-padded run (the `# Safety` derivation
            // above, backed by the caller's `window_unchecked`
            // invariant), and the 32-byte store covers
            // `out[8g..8g + 8]`, in bounds by the loop condition.
            unsafe {
                let lo = src.add(g * bits);
                let v = _mm256_loadu2_m128i(lo.add(hi_off) as *const __m128i, lo as *const __m128i);
                let v = _mm256_shuffle_epi8(v, shuf);
                let v = _mm256_srlv_epi32(v, shift);
                let v = _mm256_and_si256(v, maskv);
                let v = _mm256_add_epi32(v, basev);
                _mm256_storeu_si256(dst.add(g * 8) as *mut __m256i, v);
            }
            g += 1;
        }
        let mask = (1u64 << bits) - 1;
        for (j, slot) in out.iter_mut().enumerate().skip(g * 8) {
            // SAFETY: the window starts inside the run (`j < len`) and
            // the 8 guard bytes keep the read in bounds — the caller's
            // contract, unchanged from the vector groups above.
            *slot = base.wrapping_add((unsafe { window_unchecked(bytes, j * bits) } & mask) as u32);
        }
    }
}

/// Derives the compressed block mirror from impact-ordered SoA posting
/// arrays. This is the single source of the compressed layout: the index
/// build, the v1/uncompressed-artifact load paths, and shard
/// partitioning all route through it, so `CompressedBlockMax` is
/// available on every index regardless of provenance.
pub(crate) fn compress_postings(
    num_concepts: usize,
    post_offsets: &[u64],
    post_ids: &[u32],
    post_scores: &[f64],
) -> CompressedPostings {
    let n_postings = post_ids.len();
    let n_blocks: usize = (0..num_concepts)
        .map(|l| ((post_offsets[l + 1] - post_offsets[l]) as usize).div_ceil(BLOCK_LEN))
        .sum();
    let mut blk_base = Vec::with_capacity(n_blocks);
    let mut blk_bits = Vec::with_capacity(n_blocks);
    let mut blk_scale = Vec::with_capacity(n_blocks);
    let mut blk_offset = Vec::with_capacity(n_blocks);
    let mut blk_pack_start = Vec::with_capacity(n_blocks + 1);
    let mut quant = Vec::with_capacity(n_postings);
    let mut packed: Vec<u8> = Vec::new();
    blk_pack_start.push(0u64);
    for l in 0..num_concepts {
        let hi = post_offsets[l + 1] as usize;
        let mut b = post_offsets[l] as usize;
        while b < hi {
            let e = (b + BLOCK_LEN).min(hi);
            let ids = &post_ids[b..e];
            let base = ids.iter().copied().min().unwrap();
            let max_delta = ids.iter().map(|&r| r - base).max().unwrap();
            let bits = (32 - max_delta.leading_zeros()) as usize;
            blk_base.push(base);
            blk_bits.push(bits as u8);
            pack_block_ids(&mut packed, ids, base, bits);
            blk_pack_start.push(packed.len() as u64);
            let (scale, offset) = quantize_block(&post_scores[b..e], &mut quant);
            blk_scale.push(scale);
            blk_offset.push(offset);
            b = e;
        }
    }
    packed.extend_from_slice(&[0u8; 8]);
    CompressedPostings {
        blk_base: blk_base.into(),
        blk_bits: blk_bits.into(),
        blk_scale: blk_scale.into(),
        blk_offset: blk_offset.into(),
        blk_pack_start: blk_pack_start.into(),
        quant: quant.into(),
        packed_ids: packed.into(),
    }
}

/// Appends one block's `id - base` deltas at the fixed `bits` width.
fn pack_block_ids(out: &mut Vec<u8>, ids: &[u32], base: u32, bits: usize) {
    if bits == 0 {
        return;
    }
    let start = out.len();
    out.resize(start + (ids.len() * bits).div_ceil(8), 0);
    let bytes = &mut out[start..];
    let mut bitpos = 0usize;
    for &r in ids {
        let byte = bitpos >> 3;
        let shift = bitpos & 7;
        // shift + bits ≤ 7 + 32 < 64, so the shifted delta fits in u64.
        let v = (((r - base) as u64) << shift).to_le_bytes();
        for (i, vb) in v.iter().take((shift + bits).div_ceil(8)).enumerate() {
            bytes[byte + i] |= vb;
        }
        bitpos += bits;
    }
}

/// Largest f32 whose f64 widening does not exceed `x` (for `x ≥ 0`).
fn f32_at_most(x: f64) -> f32 {
    let mut v = x as f32;
    while (v as f64) > x {
        // v widened above a non-negative x, so v is strictly positive
        // and finite: stepping its bit pattern down moves toward 0.
        v = f32::from_bits(v.to_bits() - 1);
    }
    v
}

/// Quantizes one block of exact impacts to 8-bit per-posting upper
/// bounds, appending to `quant`; returns the block's `(scale, offset)`.
/// The contract — `offset + scale · q ≥ score`, evaluated in f64 — is
/// enforced per posting by construction (and re-checked by the persist
/// validator on load). Non-finite impacts (possible only from hostile
/// v1 artifacts, which the persist validator rejects after this runs)
/// saturate harmlessly instead of panicking.
fn quantize_block(scores: &[f64], quant: &mut Vec<u8>) -> (f32, f32) {
    // Impact order: the block's max is its first score, min its last.
    let max = scores[0];
    let min = *scores.last().unwrap();
    let offset = f32_at_most(min);
    let mut scale = ((max - offset as f64) / 255.0) as f32;
    // Nearest-rounding of the division may undershoot; bump until the
    // top of the quantized range covers the block max (≤ 2 steps).
    while (offset as f64) + (scale as f64) * 255.0 < max {
        scale = f32::from_bits(scale.to_bits() + 1);
    }
    for &s in scores {
        let mut q = if scale == 0.0 {
            // Loop exit above proved offset ≥ max, so q = 0 covers all.
            0u8
        } else {
            (((s - offset as f64) / scale as f64).ceil()).clamp(0.0, 255.0) as u8
        };
        // The f64 division can still undershoot by an ulp; restore the
        // per-posting bound exactly as the query path evaluates it.
        while q < 255 && (offset as f64) + (scale as f64) * (q as f64) < s {
            q += 1;
        }
        quant.push(q);
    }
    (scale, offset)
}

/// The raw SoA arrays of an index — the unit the persist layer serializes
/// and the zero-copy loader reconstructs. Offsets are `u64` so the
/// in-memory shape matches the on-disk shape exactly.
pub(crate) struct IndexArrays<'a> {
    pub idf: &'a [f64],
    pub resource_norms: &'a [f64],
    pub rv_offsets: &'a [u64],
    pub rv_concepts: &'a [u32],
    pub rv_weights: &'a [f64],
    pub post_offsets: &'a [u64],
    pub post_ids: &'a [u32],
    pub post_scores: &'a [f64],
    pub block_offsets: &'a [u64],
    pub block_max: &'a [f64],
    pub max_impact: &'a [f64],
}

/// The offline concept index: tf-idf resource vectors plus a
/// block-structured SoA inverted index from concepts to resources.
#[derive(Debug, Clone)]
pub struct ConceptIndex {
    num_resources: usize,
    num_concepts: usize,
    /// `idf[l] = log(N / n_l)`; 0 for unseen concepts (Eq. 1).
    idf: Slab<f64>,
    /// Per-resource vector L2 norms (denominator of Eq. 4).
    resource_norms: Slab<f64>,
    /// Resource tf-idf vectors, ragged SoA: resource `r` owns
    /// `rv_concepts/rv_weights[rv_offsets[r]..rv_offsets[r+1]]`,
    /// ascending concept id.
    rv_offsets: Slab<u64>,
    rv_concepts: Slab<u32>,
    rv_weights: Slab<f64>,
    /// Inverted index, ragged SoA: concept `l` owns
    /// `post_ids/post_scores[post_offsets[l]..post_offsets[l+1]]`,
    /// descending impact (ties by ascending resource id).
    post_offsets: Slab<u64>,
    post_ids: Slab<u32>,
    post_scores: Slab<f64>,
    /// Block maxima, ragged per concept: concept `l` owns
    /// `block_max[block_offsets[l]..block_offsets[l+1]]`, one entry per
    /// [`BLOCK_LEN`] postings (the last block may be short). Because the
    /// list is impact-descending, block `b`'s max is the impact at the
    /// block's first posting.
    block_offsets: Slab<u64>,
    block_max: Slab<f64>,
    /// Per-posting-list maximum impact (MaxScore upper-bound metadata);
    /// 0 for empty lists.
    max_impact: Slab<f64>,
    /// Compressed hot mirror of the posting arrays (bit-packed ids,
    /// quantized impact bounds), always present — derived at build/load
    /// or restored verbatim from a compressed artifact.
    compressed: CompressedPostings,
}

impl ConceptIndex {
    /// Builds the index: for every resource, tag occurrence counts
    /// `c(t, r)` are aggregated into concept counts `c(l, r)`, normalized
    /// to `tf` (Eq. 2) and weighted by `idf` (Eq. 1). Accepts hard or soft
    /// assignments through [`ConceptAssignment`].
    pub fn build(folksonomy: &Folksonomy, concepts: &dyn ConceptAssignment) -> Self {
        let n_resources = folksonomy.num_resources();
        let n_concepts = concepts.num_concepts();

        // Concept counts per resource + document frequencies. One dense
        // scratch accumulator with a touched-list is reused across all
        // resources (cleared sparsely), instead of a fresh zeroed
        // `vec![0.0; n_concepts]` per resource.
        let mut doc_freq = vec![0usize; n_concepts];
        let mut raw_counts: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n_resources);
        let mut scratch = vec![0.0f64; n_concepts];
        let mut touched: Vec<u32> = Vec::new();
        for r in 0..n_resources {
            touched.clear();
            for (t, c) in folksonomy.resource_tag_counts(ResourceId::from_index(r)) {
                concepts.for_each_weight(t.index(), &mut |l, w| {
                    if scratch[l] == 0.0 {
                        touched.push(l as u32);
                    }
                    scratch[l] += w * c as f64;
                });
            }
            touched.sort_unstable();
            let mut sparse: Vec<(u32, f64)> = Vec::with_capacity(touched.len());
            for &l in &touched {
                let c = scratch[l as usize];
                scratch[l as usize] = 0.0;
                if c > 0.0 {
                    sparse.push((l, c));
                    doc_freq[l as usize] += 1;
                }
            }
            raw_counts.push(sparse);
        }

        let n = n_resources as f64;
        let idf: Vec<f64> = doc_freq
            .iter()
            .map(|&df| if df == 0 { 0.0 } else { (n / df as f64).ln() })
            .collect();

        // tf-idf vectors, norms, impact-ordered inverted index.
        let mut resource_vectors = Vec::with_capacity(n_resources);
        let mut resource_norms = Vec::with_capacity(n_resources);
        let mut postings: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_concepts];
        for (r, counts) in raw_counts.into_iter().enumerate() {
            let total: f64 = counts.iter().map(|&(_, c)| c).sum();
            let vector: Vec<(u32, f64)> = counts
                .into_iter()
                .map(|(l, c)| {
                    let tf = if total > 0.0 { c / total } else { 0.0 };
                    (l, tf * idf[l as usize])
                })
                .filter(|&(_, w)| w != 0.0)
                .collect();
            let norm: f64 = vector.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
            if norm > 0.0 {
                for &(l, w) in &vector {
                    postings[l as usize].push((r as u32, w / norm));
                }
            }
            resource_vectors.push(vector);
            resource_norms.push(norm);
        }
        for list in &mut postings {
            // Impact order; equal impacts fall back to the ranking
            // tie-break (ascending resource id) so a prefix of a list is
            // already in final ranked order for single-term queries.
            list.sort_unstable_by(|a, b| cmp_ranked(a.1, a.0, b.1, b.0));
        }

        Self::from_lists(
            n_resources,
            n_concepts,
            idf,
            resource_vectors,
            resource_norms,
            postings,
        )
    }

    /// Assembles the SoA layout from per-list vectors. This is the single
    /// place the block structure is derived, shared by [`Self::build`] and
    /// the legacy (format v1) artifact decoder; posting lists must already
    /// be impact-ordered. Block maxima and per-list maxima are derived
    /// from the sorted lists (the first impact of each block / list).
    pub(crate) fn from_lists(
        num_resources: usize,
        num_concepts: usize,
        idf: Vec<f64>,
        resource_vectors: Vec<Vec<(u32, f64)>>,
        resource_norms: Vec<f64>,
        postings: Vec<Vec<(u32, f64)>>,
    ) -> Self {
        debug_assert_eq!(idf.len(), num_concepts);
        debug_assert_eq!(resource_vectors.len(), num_resources);
        debug_assert_eq!(resource_norms.len(), num_resources);
        debug_assert_eq!(postings.len(), num_concepts);

        let rv_nnz: usize = resource_vectors.iter().map(Vec::len).sum();
        let mut rv_offsets = Vec::with_capacity(num_resources + 1);
        let mut rv_concepts = Vec::with_capacity(rv_nnz);
        let mut rv_weights = Vec::with_capacity(rv_nnz);
        rv_offsets.push(0u64);
        for vector in &resource_vectors {
            for &(l, w) in vector {
                rv_concepts.push(l);
                rv_weights.push(w);
            }
            rv_offsets.push(rv_concepts.len() as u64);
        }

        let n_postings: usize = postings.iter().map(Vec::len).sum();
        let mut post_offsets = Vec::with_capacity(num_concepts + 1);
        let mut post_ids = Vec::with_capacity(n_postings);
        let mut post_scores = Vec::with_capacity(n_postings);
        let mut block_offsets = Vec::with_capacity(num_concepts + 1);
        let mut block_max = Vec::new();
        let mut max_impact = Vec::with_capacity(num_concepts);
        post_offsets.push(0u64);
        block_offsets.push(0u64);
        for list in &postings {
            for (j, &(r, w)) in list.iter().enumerate() {
                post_ids.push(r);
                post_scores.push(w);
                if j % BLOCK_LEN == 0 {
                    // Lists are impact-descending, so the block's first
                    // impact is its maximum.
                    block_max.push(w);
                }
            }
            post_offsets.push(post_ids.len() as u64);
            block_offsets.push(block_max.len() as u64);
            max_impact.push(list.first().map_or(0.0, |&(_, w)| w));
        }

        let compressed = compress_postings(num_concepts, &post_offsets, &post_ids, &post_scores);
        let index = ConceptIndex {
            num_resources,
            num_concepts,
            idf: idf.into(),
            resource_norms: resource_norms.into(),
            rv_offsets: rv_offsets.into(),
            rv_concepts: rv_concepts.into(),
            rv_weights: rv_weights.into(),
            post_offsets: post_offsets.into(),
            post_ids: post_ids.into(),
            post_scores: post_scores.into(),
            block_offsets: block_offsets.into(),
            block_max: block_max.into(),
            max_impact: max_impact.into(),
            compressed,
        };
        debug_assert_eq!(index.check_structure(), Ok(()));
        index
    }

    /// Reassembles an index directly from SoA slabs, exactly as a previous
    /// build laid them out. Used by `crate::persist` to restore a saved
    /// artifact — owned or borrowed from the file buffer: because every
    /// array (including the impact-sorted posting order, the block maxima,
    /// and the precomputed norms) is restored verbatim, a loaded index
    /// answers queries bit-identically to the one that was saved. The
    /// caller (the deserializer) is responsible for structural validation;
    /// this constructor only debug-asserts shapes.
    ///
    /// `compressed` is `Some` when the artifact carried a compressed
    /// posting section (restored verbatim, zero-copy capable); `None`
    /// rederives the compressed mirror from the exact arrays, so every
    /// restored index serves `CompressedBlockMax` either way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_soa_parts(
        num_resources: usize,
        num_concepts: usize,
        idf: Slab<f64>,
        resource_norms: Slab<f64>,
        rv_offsets: Slab<u64>,
        rv_concepts: Slab<u32>,
        rv_weights: Slab<f64>,
        post_offsets: Slab<u64>,
        post_ids: Slab<u32>,
        post_scores: Slab<f64>,
        block_offsets: Slab<u64>,
        block_max: Slab<f64>,
        max_impact: Slab<f64>,
        compressed: Option<CompressedPostings>,
    ) -> Self {
        debug_assert_eq!(idf.len(), num_concepts);
        debug_assert_eq!(resource_norms.len(), num_resources);
        debug_assert_eq!(rv_offsets.len(), num_resources + 1);
        debug_assert_eq!(rv_concepts.len(), rv_weights.len());
        debug_assert_eq!(post_offsets.len(), num_concepts + 1);
        debug_assert_eq!(post_ids.len(), post_scores.len());
        debug_assert_eq!(block_offsets.len(), num_concepts + 1);
        debug_assert_eq!(max_impact.len(), num_concepts);
        let compressed = compressed.unwrap_or_else(|| {
            compress_postings(num_concepts, &post_offsets, &post_ids, &post_scores)
        });
        debug_assert_eq!(compressed.num_blocks(), block_max.len());
        debug_assert_eq!(compressed.quant.len(), post_ids.len());
        let index = ConceptIndex {
            num_resources,
            num_concepts,
            idf,
            resource_norms,
            rv_offsets,
            rv_concepts,
            rv_weights,
            post_offsets,
            post_ids,
            post_scores,
            block_offsets,
            block_max,
            max_impact,
            compressed,
        };
        debug_assert_eq!(index.check_structure(), Ok(()));
        index
    }

    /// Debug-build structural validator, shared between the
    /// `debug_assert!`s in the constructors and the test suite. Checks
    /// the three invariants the unsafe decode kernels and the pruning
    /// strategies lean on, returning a description of the first
    /// violation:
    ///
    /// * **pack-run chain** — `blk_pack_start` is monotone, each block's
    ///   run is exactly `ceil(len·bits / 8)` bytes, the chain's end plus
    ///   the 8 guard bytes equals `packed_ids.len()`, and the guard
    ///   bytes are zero (this is what makes every `window_unchecked`
    ///   load in-bounds);
    /// * **block-max consistency** — `block_offsets` is monotone with
    ///   `ceil(len / BLOCK_LEN)` blocks per concept, every `block_max`
    ///   entry equals its block's first (maximum) impact, posting lists
    ///   are impact-descending with ties ascending by id, and
    ///   `max_impact` mirrors each list head;
    /// * **shape coherence** — every parallel array has the advertised
    ///   length and `post_offsets`/`rv_offsets` are monotone and end at
    ///   their arrays' lengths.
    pub(crate) fn check_structure(&self) -> Result<(), String> {
        let fail = |what: String| -> Result<(), String> { Err(what) };
        // Shape coherence.
        if self.idf.len() != self.num_concepts {
            return fail(format!(
                "idf len {} != {}",
                self.idf.len(),
                self.num_concepts
            ));
        }
        if self.resource_norms.len() != self.num_resources
            || self.rv_offsets.len() != self.num_resources + 1
            || self.rv_concepts.len() != self.rv_weights.len()
        {
            return fail("resource-vector arrays out of shape".to_owned());
        }
        if self.post_offsets.len() != self.num_concepts + 1
            || self.post_ids.len() != self.post_scores.len()
            || self.block_offsets.len() != self.num_concepts + 1
            || self.max_impact.len() != self.num_concepts
        {
            return fail("posting arrays out of shape".to_owned());
        }
        let monotone_to = |offsets: &[u64], end: usize, what: &str| -> Result<(), String> {
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(format!("{what} offsets not monotone"));
            }
            if offsets.last().copied() != Some(end as u64) {
                return Err(format!("{what} offsets do not end at {end}"));
            }
            Ok(())
        };
        monotone_to(&self.rv_offsets, self.rv_concepts.len(), "resource-vector")?;
        monotone_to(&self.post_offsets, self.post_ids.len(), "posting")?;
        monotone_to(&self.block_offsets, self.block_max.len(), "block")?;

        // Block-max consistency + impact order.
        for l in 0..self.num_concepts {
            let lo = self.post_offsets[l] as usize;
            let hi = self.post_offsets[l + 1] as usize;
            let list_ids = &self.post_ids[lo..hi];
            let list_scores = &self.post_scores[lo..hi];
            for j in 1..list_scores.len() {
                if cmp_ranked(
                    list_scores[j - 1],
                    list_ids[j - 1],
                    list_scores[j],
                    list_ids[j],
                ) == std::cmp::Ordering::Greater
                {
                    return fail(format!("concept {l} posting {j} out of impact order"));
                }
            }
            let head = list_scores.first().copied().unwrap_or(0.0);
            if self.max_impact[l].to_bits() != head.to_bits() {
                return fail(format!("concept {l} max_impact disagrees with list head"));
            }
            let blo = self.block_offsets[l] as usize;
            let bhi = self.block_offsets[l + 1] as usize;
            if bhi - blo != list_ids.len().div_ceil(BLOCK_LEN) {
                return fail(format!(
                    "concept {l} owns {} blocks, expected ceil",
                    bhi - blo
                ));
            }
            for (b, block) in (blo..bhi).zip(list_scores.chunks(BLOCK_LEN)) {
                let first = block.first().copied().unwrap_or(0.0);
                if self.block_max[b].to_bits() != first.to_bits() {
                    return fail(format!("block {b} max disagrees with its first impact"));
                }
            }
        }

        // Pack-run chain over the compressed mirror.
        let c = &self.compressed;
        let n_blocks = self.block_max.len();
        if c.blk_base.len() != n_blocks
            || c.blk_bits.len() != n_blocks
            || c.blk_scale.len() != n_blocks
            || c.blk_offset.len() != n_blocks
            || c.blk_pack_start.len() != n_blocks + 1
            || c.quant.len() != self.post_ids.len()
        {
            return fail("compressed arrays out of shape".to_owned());
        }
        let mut block = 0usize;
        for l in 0..self.num_concepts {
            let mut len = (self.post_offsets[l + 1] - self.post_offsets[l]) as usize;
            while len > 0 {
                let blk_len = len.min(BLOCK_LEN);
                let start = c.blk_pack_start[block] as usize;
                let end = c.blk_pack_start[block + 1] as usize;
                let bits = c.blk_bits[block] as usize;
                if end < start || end - start != (blk_len * bits).div_ceil(8) {
                    return fail(format!("block {block} packed run has wrong length"));
                }
                block += 1;
                len -= blk_len;
            }
        }
        let used = c.blk_pack_start.last().copied().unwrap_or(0) as usize;
        if c.packed_ids.len() != used + 8 {
            return fail(format!(
                "packed id stream is {} bytes, chain + guard require {}",
                c.packed_ids.len(),
                used + 8
            ));
        }
        if self.compressed.packed_ids[used..].iter().any(|&b| b != 0) {
            return fail("guard bytes are not zero".to_owned());
        }
        Ok(())
    }

    /// The raw SoA arrays (for serialization).
    pub(crate) fn as_arrays(&self) -> IndexArrays<'_> {
        IndexArrays {
            idf: &self.idf,
            resource_norms: &self.resource_norms,
            rv_offsets: &self.rv_offsets,
            rv_concepts: &self.rv_concepts,
            rv_weights: &self.rv_weights,
            post_offsets: &self.post_offsets,
            post_ids: &self.post_ids,
            post_scores: &self.post_scores,
            block_offsets: &self.block_offsets,
            block_max: &self.block_max,
            max_impact: &self.max_impact,
        }
    }

    /// Whether the hot arrays are served zero-copy out of an artifact
    /// buffer (true only for indexes restored via the borrowed load path).
    pub fn is_zero_copy(&self) -> bool {
        self.post_scores.is_borrowed()
    }

    /// Number of indexed resources.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Number of concepts in the space.
    pub fn num_concepts(&self) -> usize {
        self.num_concepts
    }

    /// Total number of postings across all concepts.
    pub fn num_postings(&self) -> usize {
        self.post_ids.len()
    }

    /// `idf` of a concept (Eq. 1's `log(N/n_l)`).
    pub fn idf(&self, concept: usize) -> f64 {
        self.idf[concept]
    }

    /// The sparse tf-idf vector of a resource (Eq. 3), ascending concept
    /// id.
    pub fn resource_vector(&self, r: usize) -> ResourceVectorRef<'_> {
        let lo = self.rv_offsets[r] as usize;
        let hi = self.rv_offsets[r + 1] as usize;
        ResourceVectorRef {
            concepts: &self.rv_concepts[lo..hi],
            weights: &self.rv_weights[lo..hi],
        }
    }

    /// L2 norm of a resource's tf-idf vector.
    pub fn resource_norm(&self, r: usize) -> f64 {
        self.resource_norms[r]
    }

    /// The impact-ordered posting list of a concept: parallel
    /// `(resource, impact)` arrays with `impact = w(l, r) / ‖r‖`,
    /// descending.
    pub fn postings(&self, concept: usize) -> PostingsRef<'_> {
        let lo = self.post_offsets[concept] as usize;
        let hi = self.post_offsets[concept + 1] as usize;
        PostingsRef {
            ids: &self.post_ids[lo..hi],
            scores: &self.post_scores[lo..hi],
        }
    }

    /// The block maxima of a concept's posting list: entry `b` is the
    /// maximum impact among postings `[b·BLOCK_LEN, (b+1)·BLOCK_LEN)` of
    /// the list (the last block may be short).
    pub fn block_maxima(&self, concept: usize) -> &[f64] {
        let lo = self.block_offsets[concept] as usize;
        let hi = self.block_offsets[concept + 1] as usize;
        &self.block_max[lo..hi]
    }

    /// Maximum impact in a concept's posting list (0 if empty).
    pub fn max_impact(&self, concept: usize) -> f64 {
        self.max_impact[concept]
    }

    /// The compressed hot mirror of the posting arrays.
    pub(crate) fn compressed(&self) -> &CompressedPostings {
        &self.compressed
    }

    /// Global index of a concept's first block (its block-maxima slice
    /// and its compressed per-block metadata start here).
    pub(crate) fn first_block(&self, concept: usize) -> usize {
        self.block_offsets[concept] as usize
    }

    /// Offset of a concept's first posting in the flat posting arrays
    /// (indexes the per-posting `quant` array of the compressed mirror).
    pub(crate) fn posting_start(&self, concept: usize) -> usize {
        self.post_offsets[concept] as usize
    }

    /// Decodes the bit-packed resource ids of global block `blk` into
    /// `out[..len]` (see [`CompressedPostings::decode_block_ids`]).
    #[inline]
    pub(crate) fn decode_block_ids(&self, blk: usize, len: usize, out: &mut [u32]) {
        self.compressed.decode_block_ids(blk, len, out)
    }

    /// Bytes the compressed query path keeps hot per steady-state scan:
    /// packed ids, quantized impacts, and the per-block metadata. The
    /// exact `post_ids`/`post_scores` arrays (the rescore side) and the
    /// shared `block_max` bounds are excluded, mirroring how
    /// [`Self::uncompressed_hot_bytes`] counts only the id/score
    /// streams.
    pub fn compressed_hot_bytes(&self) -> usize {
        let c = &self.compressed;
        c.packed_ids.len()
            + c.quant.len()
            + c.blk_base.len() * std::mem::size_of::<u32>()
            + c.blk_bits.len()
            + c.blk_scale.len() * std::mem::size_of::<f32>()
            + c.blk_offset.len() * std::mem::size_of::<f32>()
            + c.blk_pack_start.len() * std::mem::size_of::<u64>()
    }

    /// Bytes the uncompressed paths stream per steady-state scan: the
    /// exact id and impact arrays (12 bytes per posting).
    pub fn uncompressed_hot_bytes(&self) -> usize {
        self.post_ids.len() * std::mem::size_of::<u32>()
            + self.post_scores.len() * std::mem::size_of::<f64>()
    }

    /// Maps query tags to a [`PreparedQuery`]: each tag occurrence counts
    /// 1, spread over its concept memberships (hard or soft), normalized
    /// and idf-weighted exactly like resource vectors. Returns `None` when
    /// no known tag or no positively-weighted concept survives.
    pub fn prepare_query(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
    ) -> Option<PreparedQuery> {
        let mut counts = vec![0.0f64; self.num_concepts];
        let mut total = 0.0;
        for t in tags {
            if t.index() < concepts.num_tags() {
                concepts.for_each_weight(t.index(), &mut |l, w| {
                    counts[l] += w;
                });
                total += 1.0;
            }
        }
        if total == 0.0 {
            return None;
        }
        let terms: Vec<(u32, f64)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(l, &c)| (l as u32, (c / total) * self.idf[l]))
            .filter(|&(_, w)| w != 0.0)
            .collect();
        self.prepare_weighted(&terms)
    }

    /// Builds a [`PreparedQuery`] from raw `(concept, weight)` pairs:
    /// computes the norm (in ascending concept order, so every query path
    /// sums it identically) and applies the MaxScore term order.
    /// Out-of-range concept ids are dropped defensively, mirroring how
    /// unknown tags are ignored.
    pub fn prepare_weighted(&self, terms: &[(u32, f64)]) -> Option<PreparedQuery> {
        let mut terms: Vec<(u32, f64)> = terms
            .iter()
            .filter(|&&(l, _)| (l as usize) < self.num_concepts)
            .copied()
            .collect();
        terms.sort_unstable_by_key(|&(l, _)| l);
        let norm: f64 = terms.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm == 0.0 {
            return None;
        }
        self.order_terms(&mut terms);
        Some(PreparedQuery { terms, norm })
    }

    /// Sorts query terms by descending `weight * max_impact` — the shared
    /// MaxScore processing order. The exact reference path and both pruned
    /// engine paths consume terms in this order, which makes their
    /// floating-point accumulation sequences — and hence scores —
    /// identical for every surviving resource.
    pub(crate) fn order_terms(&self, terms: &mut [(u32, f64)]) {
        order_terms_with(terms, &self.max_impact);
    }

    /// Copies out the shard of this index owned by `shard` of
    /// `num_shards` under the deterministic modulo partition
    /// (resource `r` belongs to shard `r % num_shards`).
    ///
    /// The shard keeps the **global** resource-id space and the
    /// **global** idf array verbatim, so a query prepared against any
    /// shard is bit-identical to one prepared against the full index;
    /// only the postings, resource vectors, and norms of member
    /// resources are retained (non-members read as unindexed: empty
    /// vector, zero norm, no postings). Per-list metadata — block
    /// structure, block maxima, per-list maxima — is rederived from the
    /// filtered lists, whose impact order is inherited from the full
    /// index, so every per-shard structural invariant the persist
    /// validator checks holds by construction. Kept impacts are the
    /// full index's bytes, untouched: a resource scores bit-identically
    /// in its shard and in the full index.
    pub fn partition_by_resource(&self, shard: usize, num_shards: usize) -> ConceptIndex {
        assert!(num_shards >= 1, "num_shards must be >= 1");
        assert!(shard < num_shards, "shard {shard} out of {num_shards}");
        let member = |r: usize| r % num_shards == shard;
        let mut resource_vectors = Vec::with_capacity(self.num_resources);
        let mut resource_norms = Vec::with_capacity(self.num_resources);
        for r in 0..self.num_resources {
            if member(r) {
                resource_vectors.push(self.resource_vector(r).iter().collect());
                resource_norms.push(self.resource_norm(r));
            } else {
                resource_vectors.push(Vec::new());
                resource_norms.push(0.0);
            }
        }
        let postings: Vec<Vec<(u32, f64)>> = (0..self.num_concepts)
            .map(|l| {
                self.postings(l)
                    .iter()
                    .filter(|&(r, _)| member(r as usize))
                    .collect()
            })
            .collect();
        Self::from_lists(
            self.num_resources,
            self.num_concepts,
            self.idf.to_vec(),
            resource_vectors,
            resource_norms,
            postings,
        )
    }

    /// Merges resource-partitioned shard indices (the output of
    /// [`Self::partition_by_resource`], or shard artifacts loaded from a
    /// manifest) back into one unsharded index — the inverse of
    /// partitioning, used by the shard layer to serve small corpora
    /// through a single coalesced engine instead of an N-way scatter.
    ///
    /// Exactness: every resource's vector and norm are taken verbatim
    /// from its owning shard (`r % shards.len()`), and each concept's
    /// posting list is the concatenation of the shards' disjoint lists
    /// re-sorted under [`cmp_ranked`] — a *total* order (impact
    /// descending, ties ascending by resource id), so the merged list is
    /// byte-identical to the one [`Self::build`] would emit no matter
    /// how the postings were interleaved across shards. Per-list
    /// metadata is rederived by [`Self::from_lists`] exactly as at build
    /// time. The caller (`ShardSet::from_parts`) has already validated
    /// matching shapes, identical idf arrays, and modulo membership.
    pub(crate) fn coalesce(shards: &[&ConceptIndex]) -> ConceptIndex {
        assert!(!shards.is_empty(), "coalesce needs at least one shard");
        let n = shards.len();
        let num_resources = shards[0].num_resources;
        let num_concepts = shards[0].num_concepts;
        let mut resource_vectors = Vec::with_capacity(num_resources);
        let mut resource_norms = Vec::with_capacity(num_resources);
        for r in 0..num_resources {
            let owner = shards[r % n];
            resource_vectors.push(owner.resource_vector(r).iter().collect());
            resource_norms.push(owner.resource_norm(r));
        }
        let postings: Vec<Vec<(u32, f64)>> = (0..num_concepts)
            .map(|l| {
                let mut list: Vec<(u32, f64)> =
                    shards.iter().flat_map(|s| s.postings(l).iter()).collect();
                list.sort_unstable_by(|a, b| cmp_ranked(a.1, a.0, b.1, b.0));
                list
            })
            .collect();
        Self::from_lists(
            num_resources,
            num_concepts,
            shards[0].idf.to_vec(),
            resource_vectors,
            resource_norms,
            postings,
        )
    }

    /// Exhaustive reference ranking: dense accumulation over every posting
    /// of every term, full sort, truncate. `top_k = 0` returns all
    /// matches. This is the path the paper describes (Eq. 4 over the
    /// inverted index) and the ground truth for the pruned engine.
    pub fn rank_exact(&self, query: &PreparedQuery, top_k: usize) -> Vec<RankedResource> {
        let mut scores = vec![0.0f64; self.num_resources];
        for &(l, wq) in &query.terms {
            let p = self.postings(l as usize);
            for (r, w) in p.iter() {
                scores[r as usize] += wq * w;
            }
        }
        let mut ranked: Vec<RankedResource> = scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0.0)
            .map(|(r, &s)| RankedResource {
                resource: ResourceId::from_index(r),
                score: s / query.norm,
            })
            .collect();
        ranked.sort_unstable_by(|a, b| {
            cmp_ranked(
                a.score,
                a.resource.index() as u32,
                b.score,
                b.resource.index() as u32,
            )
        });
        if top_k > 0 {
            ranked.truncate(top_k);
        }
        ranked
    }

    /// Transforms query tags into the concept space and ranks resources by
    /// cosine similarity. Unknown concepts (empty `idf`) contribute nothing;
    /// resources with zero similarity are omitted. Ties break by resource id
    /// for determinism. `top_k = 0` returns all matches.
    ///
    /// Convenience wrapper over the exact reference path; latency-critical
    /// callers should use [`crate::query::QueryEngine`] instead.
    pub fn query_tag_ids(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        match self.prepare_query(concepts, tags) {
            Some(query) => self.rank_exact(&query, top_k),
            None => Vec::new(),
        }
    }

    /// Ranks resources against a raw query vector of `(concept, weight)`
    /// pairs (Eq. 4) via the exact reference path.
    pub fn query_weighted_concepts(
        &self,
        query: &[(usize, f64)],
        top_k: usize,
    ) -> Vec<RankedResource> {
        let terms: Vec<(u32, f64)> = query.iter().map(|&(l, w)| (l as u32, w)).collect();
        match self.prepare_weighted(&terms) {
            Some(query) => self.rank_exact(&query, top_k),
            None => Vec::new(),
        }
    }

    /// Size of the index in `f64`-equivalents (for memory accounting).
    pub fn footprint_len(&self) -> usize {
        let vectors = 2 * self.rv_concepts.len();
        let postings = 2 * self.post_ids.len();
        self.idf.len()
            + self.resource_norms.len()
            + self.max_impact.len()
            + self.block_max.len()
            + vectors
            + postings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::FolksonomyBuilder;

    /// Corpus: r1 tagged with music-ish tags, r2 with both, r3 with tech.
    fn corpus() -> (Folksonomy, ConceptModel) {
        let mut b = FolksonomyBuilder::new();
        // music concept tags: audio(0), mp3(1); tech: laptop(2), wifi(3).
        b.add("u1", "audio", "r1");
        b.add("u2", "audio", "r1");
        b.add("u3", "mp3", "r1");
        b.add("u1", "audio", "r2");
        b.add("u2", "laptop", "r2");
        b.add("u1", "laptop", "r3");
        b.add("u2", "wifi", "r3");
        b.add("u3", "laptop", "r3");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 0, 1, 1], 1.0);
        (f, concepts)
    }

    #[test]
    fn tfidf_weights_follow_eq1_eq2() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        // Concept 0 (music) appears in r1, r2 → df = 2 of N = 3.
        assert!((index.idf(0) - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        // Concept 1 (tech) appears in r2, r3 → same idf.
        assert!((index.idf(1) - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        // r1: 3 music occurrences, 0 tech → tf(music) = 1.
        let r1 = f.resource_id("r1").unwrap().index();
        let v1 = index.resource_vector(r1);
        assert_eq!(v1.len(), 1);
        assert_eq!(v1.concepts[0], 0);
        assert!((v1.weights[0] - 1.0 * (1.5f64).ln()).abs() < 1e-12);
        // r2: 1 music + 1 tech → tf = 0.5 each.
        let r2 = f.resource_id("r2").unwrap().index();
        let v2 = index.resource_vector(r2);
        assert_eq!(v2.len(), 2);
        assert!((v2.weights[0] - 0.5 * (1.5f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn music_query_ranks_music_resource_first() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio], 0);
        assert_eq!(ranked.len(), 2, "r1 and r2 match the music concept");
        assert_eq!(f.resource_name(ranked[0].resource), "r1");
        assert!(ranked[0].score > ranked[1].score);
        // Pure-concept resource has cosine exactly 1 with a pure query.
        assert!((ranked[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synonym_query_matches_via_concepts() {
        // The whole point of CubeLSI: querying "mp3" must retrieve r2 even
        // though r2 was never tagged "mp3" — they share the music concept.
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let mp3 = f.tag_id("mp3").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[mp3], 0);
        let names: Vec<&str> = ranked.iter().map(|r| f.resource_name(r.resource)).collect();
        assert!(names.contains(&"r2"), "concept match must reach r2");
    }

    #[test]
    fn multi_tag_query_blends_concepts() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let laptop = f.tag_id("laptop").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio, laptop], 0);
        // r2 holds both concepts → best match.
        assert_eq!(f.resource_name(ranked[0].resource), "r2");
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn top_k_truncates() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio], 1);
        assert_eq!(ranked.len(), 1);
    }

    #[test]
    fn empty_and_unknown_queries() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        assert!(index.query_tag_ids(&concepts, &[], 0).is_empty());
        // A tag id beyond the concept model is ignored defensively.
        let bogus = TagId::from_index(99);
        assert!(index.query_tag_ids(&concepts, &[bogus], 0).is_empty());
        let _ = f;
    }

    #[test]
    fn scores_ranked_descending_with_deterministic_ties() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let laptop = f.tag_id("laptop").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[laptop], 0);
        for w in ranked.windows(2) {
            assert!(
                w[0].score > w[1].score
                    || (w[0].score == w[1].score && w[0].resource < w[1].resource)
            );
        }
    }

    #[test]
    fn postings_are_impact_ordered_with_max_metadata() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        for l in 0..index.num_concepts() {
            let list = index.postings(l);
            for j in 1..list.len() {
                assert!(
                    list.scores[j - 1] > list.scores[j]
                        || (list.scores[j - 1] == list.scores[j] && list.ids[j - 1] < list.ids[j]),
                    "postings of concept {l} not impact-ordered"
                );
            }
            let expected_max = list.scores.first().copied().unwrap_or(0.0);
            assert_eq!(index.max_impact(l), expected_max);
            // Every impact is a normalized weight: within (0, 1].
            for (r, w) in list.iter() {
                assert!(w > 0.0 && w <= 1.0 + 1e-12, "impact out of range");
                let norm = index.resource_norm(r as usize);
                assert!(norm > 0.0);
            }
        }
    }

    #[test]
    fn block_maxima_match_block_heads() {
        // Long single-concept lists spanning several blocks: block maxima
        // must equal the first impact of every block.
        let mut b = FolksonomyBuilder::new();
        for r in 0..300 {
            b.add("u1", "t", &format!("r{r}"));
            if r % 3 == 0 {
                b.add("u2", "other", &format!("r{r}"));
            }
        }
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 1], 1.0);
        let index = ConceptIndex::build(&f, &concepts);
        for l in 0..index.num_concepts() {
            let list = index.postings(l);
            let blocks = index.block_maxima(l);
            assert_eq!(blocks.len(), list.len().div_ceil(BLOCK_LEN));
            for (bi, &bm) in blocks.iter().enumerate() {
                let lo = bi * BLOCK_LEN;
                let hi = (lo + BLOCK_LEN).min(list.len());
                let head = list.scores[lo];
                assert_eq!(bm.to_bits(), head.to_bits(), "block {bi} of concept {l}");
                for &w in &list.scores[lo..hi] {
                    assert!(w <= bm, "block max must dominate its block");
                }
            }
        }
    }

    #[test]
    fn compressed_blocks_decode_exactly_and_bound_impacts() {
        // Multi-block lists: decoded ids must equal the exact id array
        // bitwise, every dequantized impact must dominate its exact
        // impact, and the byte layout must honor the pack offsets.
        let mut b = FolksonomyBuilder::new();
        for r in 0..517 {
            b.add("u1", "t", &format!("r{r}"));
            if r % 3 == 0 {
                b.add("u2", "other", &format!("r{r}"));
            }
            if r % 7 == 0 {
                b.add("u3", "t", &format!("r{r}"));
            }
        }
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 1], 1.0);
        let index = ConceptIndex::build(&f, &concepts);
        let c = index.compressed();
        assert_eq!(c.num_blocks(), index.block_max.len());
        assert_eq!(c.quant.len(), index.num_postings());
        assert_eq!(c.blk_pack_start.len(), c.num_blocks() + 1);
        assert_eq!(
            *c.blk_pack_start.last().unwrap() as usize + 8,
            c.packed_ids.len(),
            "pack offsets must end at the guard bytes"
        );
        let mut buf = [0u32; BLOCK_LEN];
        for l in 0..index.num_concepts() {
            let list = index.postings(l);
            let first_blk = index.block_offsets[l] as usize;
            let base_post = index.post_offsets[l] as usize;
            for local in 0..list.len().div_ceil(BLOCK_LEN) {
                let lo = local * BLOCK_LEN;
                let hi = (lo + BLOCK_LEN).min(list.len());
                let blk = first_blk + local;
                index.decode_block_ids(blk, hi - lo, &mut buf);
                assert_eq!(&buf[..hi - lo], &list.ids[lo..hi], "block {blk}");
                let scale = c.blk_scale[blk] as f64;
                let offset = c.blk_offset[blk] as f64;
                for j in lo..hi {
                    let q = c.quant[base_post + j] as f64;
                    assert!(
                        offset + scale * q >= list.scores[j],
                        "dequantized bound must dominate exact impact \
                         (block {blk}, posting {j})"
                    );
                }
                assert!(c.blk_bits[blk] <= 32);
            }
        }
        // Hot footprint: strictly below the 12 B/posting exact streams
        // (and below the 4 B/posting acceptance target on this corpus).
        assert!(index.compressed_hot_bytes() < index.uncompressed_hot_bytes());
        assert!(index.compressed_hot_bytes() <= 4 * index.num_postings());
    }

    #[test]
    fn compression_handles_degenerate_blocks() {
        // Single-posting lists (width-0 blocks, scale-0 quantization) and
        // an empty concept must compress without panicking.
        let mut b = FolksonomyBuilder::new();
        b.add("u1", "only", "r5");
        b.add("u1", "pair", "r5");
        b.add("u2", "pair", "r9");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 1], 1.0);
        let index = ConceptIndex::build(&f, &concepts);
        let mut buf = [0u32; BLOCK_LEN];
        for l in 0..index.num_concepts() {
            let list = index.postings(l);
            if list.is_empty() {
                continue;
            }
            let blk = index.block_offsets[l] as usize;
            index.decode_block_ids(blk, list.len(), &mut buf);
            assert_eq!(&buf[..list.len()], list.ids);
        }
    }

    #[test]
    fn prepared_terms_follow_maxscore_order() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let laptop = f.tag_id("laptop").unwrap();
        let wifi = f.tag_id("wifi").unwrap();
        let q = index
            .prepare_query(&concepts, &[audio, laptop, wifi])
            .unwrap();
        assert!(!q.terms.is_empty());
        assert!(q.norm > 0.0);
        for w in q.terms.windows(2) {
            let b0 = w[0].1 * index.max_impact(w[0].0 as usize);
            let b1 = w[1].1 * index.max_impact(w[1].0 as usize);
            assert!(b0 >= b1, "terms must be in descending bound order");
        }
    }

    #[test]
    fn footprint_is_positive_and_bounded() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let fp = index.footprint_len();
        assert!(fp > 0);
        // Sanity: strictly less than a dense resources×concepts matrix + slack.
        assert!(fp <= 2 * (index.num_resources() * index.num_concepts() + 10) * 2);
    }

    #[test]
    fn idf_zero_concept_is_inert() {
        // A concept that annotates every resource gets idf 0 and must not
        // influence ranking.
        let mut b = FolksonomyBuilder::new();
        b.add("u1", "common", "r1");
        b.add("u1", "common", "r2");
        b.add("u1", "niche", "r2");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 1], 1.0);
        let index = ConceptIndex::build(&f, &concepts);
        assert_eq!(index.idf(0), 0.0);
        let common = f.tag_id("common").unwrap();
        assert!(index.query_tag_ids(&concepts, &[common], 0).is_empty());
        let niche = f.tag_id("niche").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[niche], 0);
        assert_eq!(ranked.len(), 1);
        assert_eq!(f.resource_name(ranked[0].resource), "r2");
    }

    /// The AVX2 unpack kernel must reproduce the scalar grouped-window
    /// decode bit-for-bit at every width it accepts, including partial
    /// blocks and the worst-case buffer layout (exactly 8 guard bytes
    /// after the final run, as `compress_postings` emits).
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn simd_unpack_matches_scalar() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for bits in simd::MIN_BITS..=simd::MAX_BITS {
            for len in [1usize, 7, 8, 9, 37, 61, 63, 64] {
                let base = (next() as u32) & 0x00FF_FFFF;
                let ids: Vec<u32> = (0..len)
                    .map(|_| base.wrapping_add((next() as u32) & ((1u32 << bits) - 1)))
                    .collect();
                let mut packed = Vec::new();
                pack_block_ids(&mut packed, &ids, base, bits);
                packed.extend_from_slice(&[0u8; 8]);
                let mut scalar = vec![0u32; len];
                unpack_grouped::<2>(&packed, bits, (1u64 << bits) - 1, base, &mut scalar);
                assert_eq!(scalar, ids, "scalar decode broken at bits={bits} len={len}");
                let mut vector = vec![0u32; len];
                // SAFETY: avx2 verified above; the run is followed by
                // exactly the 8 guard bytes the kernel's derivation needs.
                unsafe { simd::unpack(&packed, bits, base, &mut vector) };
                assert_eq!(
                    vector, scalar,
                    "simd decode diverges at bits={bits} len={len}"
                );
            }
        }
    }

    #[test]
    fn structural_validator_accepts_builds_and_flags_corruption() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        assert_eq!(index.check_structure(), Ok(()));

        // Block-max drift: one cached maximum no longer matches its
        // block's first impact.
        let mut bad = index.clone();
        let mut bm: Vec<f64> = bad.block_max.to_vec();
        bm[0] += 1.0;
        bad.block_max = bm.into();
        let err = bad.check_structure().unwrap_err();
        assert!(err.contains("disagrees with its first impact"), "{err}");

        // Stale per-concept bound.
        let mut bad = index.clone();
        let mut mi: Vec<f64> = bad.max_impact.to_vec();
        mi[0] *= 0.5;
        bad.max_impact = mi.into();
        let err = bad.check_structure().unwrap_err();
        assert!(err.contains("disagrees with list head"), "{err}");

        // Impact order broken: reverse one posting list in place.
        let mut bad = index.clone();
        let mut scores: Vec<f64> = bad.post_scores.to_vec();
        let (lo, hi) = (bad.post_offsets[0] as usize, bad.post_offsets[1] as usize);
        if hi - lo >= 2 && scores[lo] != scores[hi - 1] {
            scores[lo..hi].reverse();
            bad.post_scores = scores.into();
            let err = bad.check_structure().unwrap_err();
            assert!(err.contains("out of impact order"), "{err}");
        }

        // Pack-run chain: dropping a byte breaks the chain-end + guard
        // accounting the unchecked window reads rely on.
        let mut bad = index.clone();
        let mut packed: Vec<u8> = bad.compressed.packed_ids.to_vec();
        packed.pop();
        bad.compressed.packed_ids = packed.into();
        let err = bad.check_structure().unwrap_err();
        assert!(err.contains("chain + guard require"), "{err}");

        // Dirty guard byte.
        let mut bad = index.clone();
        let mut packed: Vec<u8> = bad.compressed.packed_ids.to_vec();
        *packed.last_mut().unwrap() = 1;
        bad.compressed.packed_ids = packed.into();
        let err = bad.check_structure().unwrap_err();
        assert!(err.contains("guard bytes are not zero"), "{err}");

        // Non-monotone offsets.
        let mut bad = index.clone();
        let mut po: Vec<u64> = bad.post_offsets.to_vec();
        po[1] = po[po.len() - 1] + 1;
        bad.post_offsets = po.into();
        let err = bad.check_structure().unwrap_err();
        assert!(err.contains("posting offsets"), "{err}");
    }
}
