//! The bag-of-concepts retrieval model (§III of the paper).
//!
//! After concept distillation every resource's bag of tags is mapped to a
//! bag of concepts. Resources are vectors of tf-idf weights over concepts
//! (Eqs. 1–3); queries are transformed the same way; ranking is by cosine
//! similarity (Eq. 4), served from an inverted index over concepts.

use crate::concepts::ConceptModel;
use cubelsi_folksonomy::{Folksonomy, ResourceId, TagId};

/// Abstraction over hard and soft tag→concept mappings, so one index and
/// one query path serve both the paper's hard clustering and the
/// soft-clustering extension (footnote 5).
pub trait ConceptAssignment {
    /// Number of concepts in the space.
    fn num_concepts(&self) -> usize;
    /// Number of tags covered.
    fn num_tags(&self) -> usize;
    /// Calls `f(concept, weight)` for every concept the tag belongs to;
    /// weights sum to 1 per tag.
    fn for_each_weight(&self, tag: usize, f: &mut dyn FnMut(usize, f64));
}

impl ConceptAssignment for ConceptModel {
    fn num_concepts(&self) -> usize {
        ConceptModel::num_concepts(self)
    }
    fn num_tags(&self) -> usize {
        ConceptModel::num_tags(self)
    }
    fn for_each_weight(&self, tag: usize, f: &mut dyn FnMut(usize, f64)) {
        f(self.concept_of(tag), 1.0);
    }
}

/// One ranked search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedResource {
    /// The resource.
    pub resource: ResourceId,
    /// Cosine similarity to the query (Eq. 4).
    pub score: f64,
}

/// The offline concept index: tf-idf resource vectors plus an inverted
/// index from concepts to resources.
#[derive(Debug, Clone)]
pub struct ConceptIndex {
    num_resources: usize,
    num_concepts: usize,
    /// `idf[l] = log(N / n_l)`; 0 for unseen concepts (Eq. 1).
    idf: Vec<f64>,
    /// Per-resource sparse tf-idf vectors, sorted by concept id.
    resource_vectors: Vec<Vec<(u32, f64)>>,
    /// Per-resource vector L2 norms (denominator of Eq. 4).
    resource_norms: Vec<f64>,
    /// Inverted index: concept → `(resource, weight)` postings.
    inverted: Vec<Vec<(u32, f64)>>,
}

impl ConceptIndex {
    /// Builds the index: for every resource, tag occurrence counts
    /// `c(t, r)` are aggregated into concept counts `c(l, r)`, normalized
    /// to `tf` (Eq. 2) and weighted by `idf` (Eq. 1). Accepts hard or soft
    /// assignments through [`ConceptAssignment`].
    pub fn build(folksonomy: &Folksonomy, concepts: &dyn ConceptAssignment) -> Self {
        let n_resources = folksonomy.num_resources();
        let n_concepts = concepts.num_concepts();

        // Concept counts per resource + document frequencies.
        let mut doc_freq = vec![0usize; n_concepts];
        let mut raw_counts: Vec<Vec<(u32, f64)>> = Vec::with_capacity(n_resources);
        for r in 0..n_resources {
            let mut counts = vec![0.0f64; n_concepts];
            for (t, c) in folksonomy.resource_tag_counts(ResourceId::from_index(r)) {
                concepts.for_each_weight(t.index(), &mut |l, w| {
                    counts[l] += w * c as f64;
                });
            }
            let sparse: Vec<(u32, f64)> = counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0.0)
                .map(|(l, &c)| (l as u32, c))
                .collect();
            for &(l, _) in &sparse {
                doc_freq[l as usize] += 1;
            }
            raw_counts.push(sparse);
        }

        let n = n_resources as f64;
        let idf: Vec<f64> = doc_freq
            .iter()
            .map(|&df| if df == 0 { 0.0 } else { (n / df as f64).ln() })
            .collect();

        // tf-idf vectors, norms, inverted index.
        let mut resource_vectors = Vec::with_capacity(n_resources);
        let mut resource_norms = Vec::with_capacity(n_resources);
        let mut inverted: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_concepts];
        for (r, counts) in raw_counts.into_iter().enumerate() {
            let total: f64 = counts.iter().map(|&(_, c)| c).sum();
            let mut vector: Vec<(u32, f64)> = counts
                .into_iter()
                .map(|(l, c)| {
                    let tf = if total > 0.0 { c / total } else { 0.0 };
                    (l, tf * idf[l as usize])
                })
                .filter(|&(_, w)| w != 0.0)
                .collect();
            vector.sort_unstable_by_key(|&(l, _)| l);
            let norm: f64 = vector.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
            for &(l, w) in &vector {
                inverted[l as usize].push((r as u32, w));
            }
            resource_vectors.push(vector);
            resource_norms.push(norm);
        }

        ConceptIndex {
            num_resources: n_resources,
            num_concepts: n_concepts,
            idf,
            resource_vectors,
            resource_norms,
            inverted,
        }
    }

    /// Number of indexed resources.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Number of concepts in the space.
    pub fn num_concepts(&self) -> usize {
        self.num_concepts
    }

    /// `idf` of a concept (Eq. 1's `log(N/n_l)`).
    pub fn idf(&self, concept: usize) -> f64 {
        self.idf[concept]
    }

    /// The sparse tf-idf vector of a resource (Eq. 3).
    pub fn resource_vector(&self, r: usize) -> &[(u32, f64)] {
        &self.resource_vectors[r]
    }

    /// Transforms query tags into the concept space and ranks resources by
    /// cosine similarity. Unknown concepts (empty `idf`) contribute nothing;
    /// resources with zero similarity are omitted. Ties break by resource id
    /// for determinism. `top_k = 0` returns all matches.
    pub fn query_tag_ids(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        // Bag of concepts for the query: each tag occurrence counts 1,
        // spread over its concept memberships.
        let mut counts = vec![0.0f64; self.num_concepts];
        let mut total = 0.0;
        for t in tags {
            if t.index() < concepts.num_tags() {
                concepts.for_each_weight(t.index(), &mut |l, w| {
                    counts[l] += w;
                });
                total += 1.0;
            }
        }
        if total == 0.0 {
            return Vec::new();
        }
        let query: Vec<(usize, f64)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(l, &c)| (l, (c / total) * self.idf[l]))
            .filter(|&(_, w)| w != 0.0)
            .collect();
        self.query_weighted_concepts(&query, top_k)
    }

    /// Ranks resources against a prepared query vector of
    /// `(concept, weight)` pairs (Eq. 4).
    pub fn query_weighted_concepts(
        &self,
        query: &[(usize, f64)],
        top_k: usize,
    ) -> Vec<RankedResource> {
        let query_norm: f64 = query.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if query_norm == 0.0 {
            return Vec::new();
        }
        let mut scores = vec![0.0f64; self.num_resources];
        for &(l, wq) in query {
            for &(r, wr) in &self.inverted[l] {
                scores[r as usize] += wq * wr;
            }
        }
        let mut ranked: Vec<RankedResource> = scores
            .iter()
            .enumerate()
            .filter(|(_, &s)| s > 0.0)
            .map(|(r, &s)| RankedResource {
                resource: ResourceId::from_index(r),
                score: s / (query_norm * self.resource_norms[r]),
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.resource.cmp(&b.resource))
        });
        if top_k > 0 {
            ranked.truncate(top_k);
        }
        ranked
    }

    /// Size of the index in `f64`-equivalents (for memory accounting).
    pub fn footprint_len(&self) -> usize {
        let vectors: usize = self.resource_vectors.iter().map(|v| v.len() * 2).sum();
        let postings: usize = self.inverted.iter().map(|p| p.len() * 2).sum();
        self.idf.len() + self.resource_norms.len() + vectors + postings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::FolksonomyBuilder;

    /// Corpus: r1 tagged with music-ish tags, r2 with both, r3 with tech.
    fn corpus() -> (Folksonomy, ConceptModel) {
        let mut b = FolksonomyBuilder::new();
        // music concept tags: audio(0), mp3(1); tech: laptop(2), wifi(3).
        b.add("u1", "audio", "r1");
        b.add("u2", "audio", "r1");
        b.add("u3", "mp3", "r1");
        b.add("u1", "audio", "r2");
        b.add("u2", "laptop", "r2");
        b.add("u1", "laptop", "r3");
        b.add("u2", "wifi", "r3");
        b.add("u3", "laptop", "r3");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 0, 1, 1], 1.0);
        (f, concepts)
    }

    #[test]
    fn tfidf_weights_follow_eq1_eq2() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        // Concept 0 (music) appears in r1, r2 → df = 2 of N = 3.
        assert!((index.idf(0) - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        // Concept 1 (tech) appears in r2, r3 → same idf.
        assert!((index.idf(1) - (3.0f64 / 2.0).ln()).abs() < 1e-12);
        // r1: 3 music occurrences, 0 tech → tf(music) = 1.
        let r1 = f.resource_id("r1").unwrap().index();
        let v1 = index.resource_vector(r1);
        assert_eq!(v1.len(), 1);
        assert_eq!(v1[0].0, 0);
        assert!((v1[0].1 - 1.0 * (1.5f64).ln()).abs() < 1e-12);
        // r2: 1 music + 1 tech → tf = 0.5 each.
        let r2 = f.resource_id("r2").unwrap().index();
        let v2 = index.resource_vector(r2);
        assert_eq!(v2.len(), 2);
        assert!((v2[0].1 - 0.5 * (1.5f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn music_query_ranks_music_resource_first() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio], 0);
        assert_eq!(ranked.len(), 2, "r1 and r2 match the music concept");
        assert_eq!(f.resource_name(ranked[0].resource), "r1");
        assert!(ranked[0].score > ranked[1].score);
        // Pure-concept resource has cosine exactly 1 with a pure query.
        assert!((ranked[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn synonym_query_matches_via_concepts() {
        // The whole point of CubeLSI: querying "mp3" must retrieve r2 even
        // though r2 was never tagged "mp3" — they share the music concept.
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let mp3 = f.tag_id("mp3").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[mp3], 0);
        let names: Vec<&str> = ranked
            .iter()
            .map(|r| f.resource_name(r.resource))
            .collect();
        assert!(names.contains(&"r2"), "concept match must reach r2");
    }

    #[test]
    fn multi_tag_query_blends_concepts() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let laptop = f.tag_id("laptop").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio, laptop], 0);
        // r2 holds both concepts → best match.
        assert_eq!(f.resource_name(ranked[0].resource), "r2");
        assert_eq!(ranked.len(), 3);
    }

    #[test]
    fn top_k_truncates() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let audio = f.tag_id("audio").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[audio], 1);
        assert_eq!(ranked.len(), 1);
    }

    #[test]
    fn empty_and_unknown_queries() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        assert!(index.query_tag_ids(&concepts, &[], 0).is_empty());
        // A tag id beyond the concept model is ignored defensively.
        let bogus = TagId::from_index(99);
        assert!(index.query_tag_ids(&concepts, &[bogus], 0).is_empty());
        let _ = f;
    }

    #[test]
    fn scores_ranked_descending_with_deterministic_ties() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let laptop = f.tag_id("laptop").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[laptop], 0);
        for w in ranked.windows(2) {
            assert!(
                w[0].score > w[1].score
                    || (w[0].score == w[1].score && w[0].resource < w[1].resource)
            );
        }
    }

    #[test]
    fn footprint_is_positive_and_bounded() {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let fp = index.footprint_len();
        assert!(fp > 0);
        // Sanity: strictly less than a dense resources×concepts matrix + slack.
        assert!(fp <= 2 * (index.num_resources() * index.num_concepts() + 10) * 2);
    }

    #[test]
    fn idf_zero_concept_is_inert() {
        // A concept that annotates every resource gets idf 0 and must not
        // influence ranking.
        let mut b = FolksonomyBuilder::new();
        b.add("u1", "common", "r1");
        b.add("u1", "common", "r2");
        b.add("u1", "niche", "r2");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 1], 1.0);
        let index = ConceptIndex::build(&f, &concepts);
        assert_eq!(index.idf(0), 0.0);
        let common = f.tag_id("common").unwrap();
        assert!(index.query_tag_ids(&concepts, &[common], 0).is_empty());
        let niche = f.tag_id("niche").unwrap();
        let ranked = index.query_tag_ids(&concepts, &[niche], 0);
        assert_eq!(ranked.len(), 1);
        assert_eq!(f.resource_name(ranked[0].resource), "r2");
    }
}
