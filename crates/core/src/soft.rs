//! Soft concept assignment — the extension the paper flags as future work
//! (footnote 5): "To address the polysemy problem, a soft-clustering
//! method could be employed, so that each tag may be assigned to multiple
//! concepts with different weights."
//!
//! The soft model reuses the §V spectral embedding: after k-means, each
//! tag receives Gaussian-kernel membership weights over the cluster
//! centroids, truncated to the strongest `top_m` concepts and normalized.
//! A polysemous tag sitting between two concept centroids then
//! contributes to both concepts' tf-idf mass instead of being forced into
//! one.

use crate::concepts::ConceptModel;
use crate::distance::TagDistances;
use crate::index::ConceptAssignment;
use cubelsi_linalg::spectral::{spectral_clustering, SpectralConfig};
use cubelsi_linalg::{LinAlgError, Matrix};

/// Parameters of the soft assignment.
#[derive(Debug, Clone)]
pub struct SoftConfig {
    /// Kernel temperature τ: membership ∝ exp(−‖x_t − μ_c‖²/τ²). `None` →
    /// the mean tag–centroid distance (a scale-free default).
    pub temperature: Option<f64>,
    /// Keep at most this many concepts per tag.
    pub top_m: usize,
    /// Drop memberships below this weight (after normalization).
    pub min_weight: f64,
}

impl Default for SoftConfig {
    fn default() -> Self {
        SoftConfig {
            temperature: None,
            top_m: 3,
            min_weight: 0.05,
        }
    }
}

/// A soft tag→concepts assignment.
#[derive(Debug, Clone)]
pub struct SoftConceptModel {
    /// Per tag: `(concept, weight)` with weights summing to 1, sorted by
    /// descending weight.
    memberships: Vec<Vec<(u32, f64)>>,
    num_concepts: usize,
    temperature: f64,
}

impl SoftConceptModel {
    /// Runs §V steps 1–3, then replaces the hard k-means step with
    /// Gaussian-kernel memberships over the k-means centroids.
    pub fn distill(
        distances: &TagDistances,
        spectral: &SpectralConfig,
        soft: &SoftConfig,
    ) -> Result<Self, LinAlgError> {
        let result = spectral_clustering(distances.matrix(), spectral)?;
        let embedding = &result.embedding;
        let k = result.k;
        // Centroids = mean embedding row per hard cluster (equals the
        // k-means fixed point).
        let d = embedding.cols();
        let mut centroids = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (t, &c) in result.assignments.iter().enumerate() {
            counts[c] += 1;
            let row = embedding.row(t);
            let crow = centroids.row_mut(c);
            for (acc, &x) in crow.iter_mut().zip(row.iter()) {
                *acc += x;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                let inv = 1.0 / count as f64;
                for x in centroids.row_mut(c) {
                    *x *= inv;
                }
            }
        }
        Ok(Self::from_embedding(embedding, &centroids, soft))
    }

    /// Builds memberships from an embedding and centroid set directly.
    pub fn from_embedding(embedding: &Matrix, centroids: &Matrix, config: &SoftConfig) -> Self {
        let n = embedding.rows();
        let k = centroids.rows();
        // Distance matrix tag × centroid.
        let mut dist = Matrix::zeros(n, k);
        let mut total = 0.0;
        for t in 0..n {
            let row = embedding.row(t);
            for c in 0..k {
                let mut acc = 0.0;
                for (a, b) in row.iter().zip(centroids.row(c).iter()) {
                    let d = a - b;
                    acc += d * d;
                }
                let d = acc.sqrt();
                dist[(t, c)] = d;
                total += d;
            }
        }
        let tau = config
            .temperature
            .unwrap_or_else(|| (total / (n * k).max(1) as f64).max(1e-12));
        let inv_tau_sq = 1.0 / (tau * tau);
        let mut memberships = Vec::with_capacity(n);
        for t in 0..n {
            let mut weights: Vec<(u32, f64)> = (0..k)
                .map(|c| {
                    let d = dist[(t, c)];
                    (c as u32, (-d * d * inv_tau_sq).exp())
                })
                .collect();
            weights.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            weights.truncate(config.top_m.max(1));
            // Degenerate kernel (all weights underflow): fall back to the
            // nearest centroid, hard.
            let sum: f64 = weights.iter().map(|&(_, w)| w).sum();
            if sum <= 0.0 {
                let nearest = (0..k)
                    .min_by(|&a, &b| {
                        dist[(t, a)]
                            .partial_cmp(&dist[(t, b)])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0);
                memberships.push(vec![(nearest as u32, 1.0)]);
                continue;
            }
            let mut kept: Vec<(u32, f64)> = weights
                .into_iter()
                .map(|(c, w)| (c, w / sum))
                .filter(|&(_, w)| w >= config.min_weight)
                .collect();
            // Renormalize after the min-weight cut.
            let kept_sum: f64 = kept.iter().map(|&(_, w)| w).sum();
            for (_, w) in &mut kept {
                *w /= kept_sum;
            }
            memberships.push(kept);
        }
        SoftConceptModel {
            memberships,
            num_concepts: k,
            temperature: tau,
        }
    }

    /// Derives the equivalent hard model (strongest concept per tag).
    pub fn harden(&self) -> ConceptModel {
        let assignments: Vec<usize> = self
            .memberships
            .iter()
            .map(|m| m.first().map_or(0, |&(c, _)| c as usize))
            .collect();
        ConceptModel::from_assignments(assignments, self.temperature)
    }

    /// Number of tags covered.
    pub fn num_tags(&self) -> usize {
        self.memberships.len()
    }

    /// Memberships of one tag.
    pub fn memberships_of(&self, tag: usize) -> &[(u32, f64)] {
        &self.memberships[tag]
    }

    /// Temperature used by the kernel.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Number of tags assigned to more than one concept.
    pub fn num_polysemous(&self) -> usize {
        self.memberships.iter().filter(|m| m.len() > 1).count()
    }
}

impl ConceptAssignment for SoftConceptModel {
    fn num_concepts(&self) -> usize {
        self.num_concepts
    }

    fn num_tags(&self) -> usize {
        self.memberships.len()
    }

    fn for_each_weight(&self, tag: usize, f: &mut dyn FnMut(usize, f64)) {
        for &(c, w) in &self.memberships[tag] {
            f(c as usize, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::TagDistances;
    use cubelsi_linalg::spectral::KSelection;

    fn embedding_with_bridge() -> (Matrix, Matrix) {
        // Tags 0,1 near centroid A; tags 3,4 near centroid B; tag 2 halfway.
        let embedding = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.5, 0.0], // the polysemous bridge
            vec![1.0, 0.0],
            vec![0.9, 0.0],
        ])
        .unwrap();
        let centroids = Matrix::from_rows(&[vec![0.05, 0.0], vec![0.95, 0.0]]).unwrap();
        (embedding, centroids)
    }

    #[test]
    fn bridge_tag_gets_two_concepts() {
        let (e, c) = embedding_with_bridge();
        let soft = SoftConceptModel::from_embedding(&e, &c, &SoftConfig::default());
        assert_eq!(soft.num_concepts(), 2);
        assert_eq!(ConceptAssignment::num_tags(&soft), 5);
        let bridge = soft.memberships_of(2);
        assert_eq!(bridge.len(), 2, "bridge tag must be polysemous: {bridge:?}");
        assert!((bridge.iter().map(|&(_, w)| w).sum::<f64>() - 1.0).abs() < 1e-9);
        // Extreme tags stay essentially hard.
        assert!(soft.memberships_of(0)[0].1 > 0.9);
        assert!(soft.num_polysemous() >= 1);
    }

    #[test]
    fn harden_matches_nearest_centroid() {
        let (e, c) = embedding_with_bridge();
        let soft = SoftConceptModel::from_embedding(&e, &c, &SoftConfig::default());
        let hard = soft.harden();
        assert_eq!(hard.concept_of(0), hard.concept_of(1));
        assert_eq!(hard.concept_of(3), hard.concept_of(4));
        assert_ne!(hard.concept_of(0), hard.concept_of(3));
    }

    #[test]
    fn min_weight_filter_and_renormalization() {
        let (e, c) = embedding_with_bridge();
        let cfg = SoftConfig {
            min_weight: 0.45, // keeps only near-ties
            ..Default::default()
        };
        let soft = SoftConceptModel::from_embedding(&e, &c, &cfg);
        for t in 0..5 {
            let sum: f64 = soft.memberships_of(t).iter().map(|&(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        // The clearly-assigned tags collapse to one concept.
        assert_eq!(soft.memberships_of(0).len(), 1);
    }

    #[test]
    fn distill_from_distances_runs() {
        // Two clean groups plus one ambiguous tag between them.
        let n = 7;
        let pos: [f64; 7] = [0.0, 0.05, 0.1, 0.5, 0.9, 0.95, 1.0];
        let m = Matrix::from_fn(n, n, |i, j| (pos[i] - pos[j]).abs());
        let distances = TagDistances::from_matrix(m).unwrap();
        let spectral = SpectralConfig {
            sigma: Some(0.3),
            k: KSelection::Fixed(2),
            ..Default::default()
        };
        let soft =
            SoftConceptModel::distill(&distances, &spectral, &SoftConfig::default()).unwrap();
        assert_eq!(soft.num_concepts(), 2);
        assert_eq!(soft.num_tags(), 7);
        assert!(soft.temperature() > 0.0);
    }
}
