//! Hybrid owned/borrowed storage for the serving-time arrays.
//!
//! The zero-copy artifact path (`crate::persist`) maps the hot index
//! arrays — posting ids, impact scores, block maxima — straight out of
//! the loaded file buffer instead of deserializing them element by
//! element. That requires a slice type that can either *own* its data
//! (the portable default, and the only mode for freshly built indexes)
//! or *borrow* it from a reference-counted file buffer whose alignment
//! is guaranteed. [`Slab`] is that type; [`AlignedBytes`] is the
//! 8-byte-aligned buffer it borrows from.
//!
//! # Safety model
//!
//! The only `unsafe` is the pointer cast in [`Slab::as_slice`] for the
//! borrowed representation. It is sound because:
//!
//! * [`AlignedBytes`] stores its bytes inside a `Vec<u64>`, so the base
//!   pointer is always 8-byte aligned — at least the alignment of every
//!   [`Pod`] element type (`u8`, `u32`, `u64`, `f32`, `f64`);
//! * [`Slab::borrowed`] validates at construction that the byte offset
//!   is a multiple of the element alignment and that
//!   `offset + len * size_of::<T>()` lies inside the buffer, so the
//!   derived slice can neither be misaligned nor out of bounds;
//! * the buffer is immutable after construction (no `&mut` accessor
//!   exists) and is kept alive by the `Arc` stored inside the slab, so
//!   the bytes can neither change nor be freed while a view exists;
//! * every [`Pod`] type is valid for any bit pattern, so reinterpreting
//!   arbitrary file bytes can produce garbage *values* (the persist
//!   layer validates those) but never undefined behavior.

use std::ops::Deref;
use std::sync::Arc;

/// Marker for plain-old-data element types that may be viewed directly
/// inside an [`AlignedBytes`] buffer: any bit pattern is a valid value
/// and the alignment divides 8. Sealed — the persist format only ever
/// stores these five shapes.
pub trait Pod: Copy + private::Sealed + 'static {}

mod private {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

impl Pod for u8 {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for f32 {}
impl Pod for f64 {}

/// An immutable byte buffer whose base address is 8-byte aligned, so
/// `u32`/`u64`/`f64` array views at properly aligned offsets are valid.
/// Backed by a `Vec<u64>` (the allocator then guarantees the alignment);
/// the logical length in bytes may be smaller than the backing capacity.
#[derive(Debug, Clone)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh 8-aligned buffer.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let n_words = bytes.len().div_ceil(8);
        let mut words = vec![0u64; n_words];
        // Safety-free copy: view the word vec as bytes via le_bytes per
        // word would be slow; use the safe split: copy chunks of 8.
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(w);
        }
        // On little-endian targets the in-memory byte order of the word
        // array now equals `bytes`; the debug assert pins the assumption
        // the borrowed views rely on. (Every supported target of this
        // repo is little-endian; the persist format is LE on disk.)
        let out = AlignedBytes {
            words,
            len: bytes.len(),
        };
        debug_assert_eq!(out.as_slice(), bytes);
        out
    }

    /// Reads an entire file into an aligned buffer.
    pub fn read_file(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        // One extra copy relative to reading straight into the word
        // buffer; acceptable because it is a single bulk memcpy, not a
        // per-element decode.
        let bytes = std::fs::read(path)?;
        Ok(Self::from_bytes(&bytes))
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: u8 has alignment 1 and any byte pattern is valid; the
        // first `len` bytes of the word array are initialized.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A contiguous `[T]` that either owns its elements (`Vec<T>`) or
/// borrows them from a shared [`AlignedBytes`] file buffer. Dereferences
/// to `&[T]` either way, so the query engine is oblivious to the storage
/// mode.
#[derive(Clone)]
pub enum Slab<T: Pod> {
    /// Heap-owned elements — freshly built indexes and the portable
    /// artifact-load path.
    Owned(Vec<T>),
    /// A view into a shared aligned buffer — the zero-copy artifact
    /// path. Invariants (enforced by [`Slab::borrowed`]): `byte_offset`
    /// is a multiple of `align_of::<T>()` and
    /// `byte_offset + len * size_of::<T>() <= owner.len()`.
    Borrowed {
        /// The buffer the view points into; keeps it alive.
        owner: Arc<AlignedBytes>,
        /// Byte offset of the first element inside `owner`.
        byte_offset: usize,
        /// Number of elements.
        len: usize,
    },
}

impl<T: Pod> Slab<T> {
    /// Wraps a view into `owner`, validating alignment and bounds.
    /// Returns `None` when the requested window is misaligned or does
    /// not fit — the caller (the artifact loader) maps that to a typed
    /// persist error.
    pub fn borrowed(owner: Arc<AlignedBytes>, byte_offset: usize, len: usize) -> Option<Self> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_offset.checked_add(bytes)?;
        if !byte_offset.is_multiple_of(std::mem::align_of::<T>()) || end > owner.len() {
            return None;
        }
        Some(Slab::Borrowed {
            owner,
            byte_offset,
            len,
        })
    }

    /// The elements, regardless of storage mode.
    pub fn as_slice(&self) -> &[T] {
        match self {
            Slab::Owned(v) => v,
            Slab::Borrowed {
                owner,
                byte_offset,
                len,
            } => {
                // SAFETY: construction validated alignment of
                // `byte_offset` (and the base pointer is 8-aligned by
                // `AlignedBytes`), bounds (`byte_offset + len * size`
                // inside the buffer), the buffer is immutable and kept
                // alive by `owner`, and `T: Pod` accepts any bit
                // pattern.
                unsafe {
                    std::slice::from_raw_parts(
                        owner.as_slice().as_ptr().add(*byte_offset) as *const T,
                        *len,
                    )
                }
            }
        }
    }

    /// Whether this slab borrows from a shared file buffer.
    pub fn is_borrowed(&self) -> bool {
        matches!(self, Slab::Borrowed { .. })
    }
}

impl<T: Pod> Deref for Slab<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for Slab<T> {
    fn from(v: Vec<T>) -> Self {
        Slab::Owned(v)
    }
}

impl<T: Pod> Default for Slab<T> {
    fn default() -> Self {
        Slab::Owned(Vec::new())
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = if self.is_borrowed() {
            "borrowed"
        } else {
            "owned"
        };
        write!(f, "Slab<{mode}>({} elems)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bytes_round_trip_any_length() {
        for n in 0..40usize {
            let bytes: Vec<u8> = (0..n as u8).map(|b| b.wrapping_mul(37)).collect();
            let a = AlignedBytes::from_bytes(&bytes);
            assert_eq!(a.as_slice(), &bytes[..]);
            assert_eq!(a.len(), n);
            assert_eq!(a.is_empty(), n == 0);
            assert_eq!(a.as_slice().as_ptr() as usize % 8, 0, "base alignment");
        }
    }

    #[test]
    fn borrowed_views_read_le_values() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&3.5f64.to_le_bytes());
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&11u32.to_le_bytes());
        let owner = Arc::new(AlignedBytes::from_bytes(&bytes));

        let u: Slab<u64> = Slab::borrowed(owner.clone(), 0, 1).unwrap();
        assert_eq!(&*u, &[7u64]);
        let f: Slab<f64> = Slab::borrowed(owner.clone(), 8, 1).unwrap();
        assert_eq!(&*f, &[3.5f64]);
        let i: Slab<u32> = Slab::borrowed(owner.clone(), 16, 2).unwrap();
        assert_eq!(&*i, &[9u32, 11]);
        assert!(i.is_borrowed());
        // The narrow compressed-posting element types: u8 views are
        // valid at any offset, f32 at multiples of 4.
        let b: Slab<u8> = Slab::borrowed(owner.clone(), 1, 3).unwrap();
        assert_eq!(&*b, &7u64.to_le_bytes()[1..4]);
        let g: Slab<f32> = Slab::borrowed(owner.clone(), 16, 1).unwrap();
        assert_eq!(g[0].to_bits(), 9u32);
        assert!(
            Slab::<f32>::borrowed(owner, 2, 1).is_none(),
            "misaligned f32"
        );
    }

    #[test]
    fn borrowed_rejects_misalignment_and_overflow() {
        let owner = Arc::new(AlignedBytes::from_bytes(&[0u8; 32]));
        assert!(
            Slab::<f64>::borrowed(owner.clone(), 4, 1).is_none(),
            "misaligned f64"
        );
        assert!(
            Slab::<u32>::borrowed(owner.clone(), 2, 1).is_none(),
            "misaligned u32"
        );
        assert!(
            Slab::<f64>::borrowed(owner.clone(), 0, 5).is_none(),
            "past the end"
        );
        assert!(
            Slab::<u64>::borrowed(owner.clone(), 32, 1).is_none(),
            "starts at end"
        );
        assert!(
            Slab::<u64>::borrowed(owner.clone(), 0, usize::MAX).is_none(),
            "len overflow"
        );
        assert!(
            Slab::<u64>::borrowed(owner, 24, 1).is_some(),
            "last word ok"
        );
    }

    #[test]
    fn owned_default_and_from_vec() {
        let s: Slab<u32> = vec![1, 2, 3].into();
        assert_eq!(&*s, &[1, 2, 3]);
        assert!(!s.is_borrowed());
        let d: Slab<f64> = Slab::default();
        assert!(d.is_empty());
    }
}
