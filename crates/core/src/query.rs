//! The online top-k query engine: MaxScore-style pruning over
//! impact-ordered postings, bounded-heap selection, and reusable
//! zero-allocation scratch.
//!
//! # Why this exists
//!
//! CubeLSI's online component (Table VI of the paper) is cosine matching
//! over the concept index. The textbook implementation — allocate a dense
//! `O(num_resources)` accumulator, score every matching resource, sort
//! them all, truncate to `k` — wastes most of its time when `k` is small,
//! which is the common serving case. This module replaces it with:
//!
//! * **Impact-ordered postings** ([`ConceptIndex`] stores
//!   `w(l, r) / ‖r‖` sorted descending, with per-list maxima), enabling
//!   MaxScore-style early termination;
//! * **Bounded-heap selection**: a `k`-element min-heap replaces the full
//!   sort, so selection is `O(matches · log k)` instead of
//!   `O(matches · log matches)`;
//! * **[`QuerySession`] scratch**: epoch-tagged dense accumulators and
//!   reusable buffers make steady-state queries allocation-free;
//! * **[`QueryEngine::search_batch`]**: fans a slice of queries across
//!   worker threads (one session per worker), for throughput workloads.
//!
//! # Pruning invariants (why early termination is exact)
//!
//! All query term weights and posting impacts are **non-negative**, so a
//! resource's partial score only grows as terms are processed. The engine
//! processes terms in descending `weight × max_impact` order and maintains
//! `threshold` = the k-th largest *partial* score among touched resources
//! — a valid lower bound on the final k-th largest score. Two prunes
//! apply, both only to resources that have not been touched yet:
//!
//! 1. **Term prune**: if the summed bound of all remaining terms is below
//!    `threshold`, no new resource can enter the top k; stop admitting new
//!    accumulators (existing ones still receive every update).
//! 2. **In-list prune**: within an impact-ordered list, once
//!    `wq·impact + rest_bound` drops below `threshold`, no later posting
//!    can admit a new resource either (impacts only decrease); the rest of
//!    the list is scanned in update-only mode.
//!
//! Both comparisons require the candidate's upper bound to be *relatively*
//! below the threshold (`bound · (1 + 1e-9) < threshold`), which absorbs
//! floating-point rounding in the bound sums — ties at the boundary are
//! therefore never pruned, and a pruned resource is strictly below the
//! k-th result even after the final division by the query norm. Because
//! pruning never changes the order or the set of additions applied to a
//! *surviving* resource, the pruned path returns bit-identical scores —
//! and an identical ranked list, including tie-breaks — to
//! [`ConceptIndex::rank_exact`]. The equivalence is enforced by the
//! `query_engine_equivalence` integration test over randomized corpora.
//!
//! A query whose terms may carry negative weights (possible through the
//! raw [`QueryEngine::search_weighted`] entry point) falls back to the
//! exact path, where no bound argument is needed.

use crate::index::{ConceptAssignment, ConceptIndex, RankedResource};
use cubelsi_folksonomy::{ResourceId, TagId};
use cubelsi_linalg::parallel;

/// Relative slack applied to upper bounds before pruning: a candidate is
/// discarded only when `bound * PRUNE_SLACK < threshold`, so accumulated
/// float rounding (≈1e-16 per op) can never prune a true top-k member.
const PRUNE_SLACK: f64 = 1.0 + 1e-9;

/// The online query engine over a built [`ConceptIndex`].
#[derive(Debug, Clone)]
pub struct QueryEngine {
    index: ConceptIndex,
}

/// Reusable per-thread scratch for query processing. Create one with
/// [`QueryEngine::session`] and reuse it across queries: after warm-up
/// (buffers grown to their steady sizes) a
/// [`QueryEngine::search_tags_with`] call performs **zero heap
/// allocations**.
#[derive(Debug, Default)]
pub struct QuerySession {
    // Concept-space scratch (query construction).
    concept_weight: Vec<f64>,
    concept_epoch: Vec<u32>,
    concept_touched: Vec<u32>,
    concept_cur: u32,
    // Resource-space scratch (accumulation).
    acc: Vec<f64>,
    res_epoch: Vec<u32>,
    touched: Vec<u32>,
    res_cur: u32,
    // Per-query term list, suffix bounds, selection scratch.
    terms: Vec<(u32, f64)>,
    suffix: Vec<f64>,
    select_scratch: Vec<f64>,
    heap: Vec<(f64, u32)>,
}

impl QuerySession {
    fn for_index(index: &ConceptIndex) -> Self {
        QuerySession {
            concept_weight: vec![0.0; index.num_concepts()],
            concept_epoch: vec![0; index.num_concepts()],
            acc: vec![0.0; index.num_resources()],
            res_epoch: vec![0; index.num_resources()],
            ..QuerySession::default()
        }
    }

    /// Starts a new query: bumps the epochs so all scratch reads as
    /// untouched, without clearing the dense arrays.
    fn begin(&mut self) {
        self.concept_cur = bump_epoch(self.concept_cur, &mut self.concept_epoch);
        self.res_cur = bump_epoch(self.res_cur, &mut self.res_epoch);
        self.concept_touched.clear();
        self.touched.clear();
        self.terms.clear();
        self.heap.clear();
    }

    /// Grows the dense scratch to the engine's dimensions if needed, so a
    /// `Default`-constructed session — or one created for a smaller
    /// engine — is safe to use (steady-state reuse on one engine never
    /// resizes). New slots carry epoch 0, which reads as untouched.
    fn ensure_capacity(&mut self, index: &ConceptIndex) {
        if self.concept_epoch.len() < index.num_concepts() {
            self.concept_weight.resize(index.num_concepts(), 0.0);
            self.concept_epoch.resize(index.num_concepts(), 0);
        }
        if self.res_epoch.len() < index.num_resources() {
            self.acc.resize(index.num_resources(), 0.0);
            self.res_epoch.resize(index.num_resources(), 0);
        }
    }
}

fn bump_epoch(cur: u32, epochs: &mut [u32]) -> u32 {
    if cur == u32::MAX {
        // Wraparound (once per 2^32 queries): hard-reset the tags.
        epochs.fill(0);
        1
    } else {
        cur + 1
    }
}

/// `a` ranks strictly worse than `b` under the shared ranking order
/// ([`crate::index::cmp_ranked`]: score descending, resource id
/// ascending).
#[inline]
fn worse(a: (f64, u32), b: (f64, u32)) -> bool {
    crate::index::cmp_ranked(a.0, a.1, b.0, b.1) == std::cmp::Ordering::Greater
}

impl QueryEngine {
    /// Wraps a built index.
    pub fn new(index: ConceptIndex) -> Self {
        QueryEngine { index }
    }

    /// The underlying concept index.
    pub fn index(&self) -> &ConceptIndex {
        &self.index
    }

    /// Creates a scratch session sized for this engine's index.
    pub fn session(&self) -> QuerySession {
        QuerySession::for_index(&self.index)
    }

    /// Convenience single query: allocates a fresh session. Prefer
    /// [`Self::search_tags_with`] on a reused session in serving loops.
    pub fn search_tags(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        let mut session = self.session();
        let mut out = Vec::new();
        self.search_tags_with(&mut session, concepts, tags, top_k, &mut out);
        out
    }

    /// Ranks resources for a tag query using the pruned top-k path,
    /// writing results (score descending, resource id ascending) into
    /// `out`. `top_k = 0` returns all matches. Steady-state calls on a
    /// warmed session and reused `out` buffer perform no heap allocation.
    pub fn search_tags_with(
        &self,
        session: &mut QuerySession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        out.clear();
        session.begin();
        session.ensure_capacity(&self.index);
        let Some(norm) = self.build_query(session, concepts, tags) else {
            return;
        };
        self.run_pruned(session, norm, top_k, out);
    }

    /// Ranks resources against raw `(concept, weight)` pairs. Non-negative
    /// weights use the pruned path; any negative weight — or a duplicated
    /// concept id, which the exact reference keeps as separate terms while
    /// the session scratch would merge — falls back to the exact reference
    /// path so results always match [`ConceptIndex::query_weighted_concepts`].
    pub fn search_weighted(
        &self,
        session: &mut QuerySession,
        terms: &[(u32, f64)],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        out.clear();
        if terms.iter().any(|&(_, w)| w < 0.0) {
            if let Some(q) = self.index.prepare_weighted(terms) {
                *out = self.index.rank_exact(&q, top_k)
            }
            return;
        }
        session.begin();
        session.ensure_capacity(&self.index);
        let mut duplicate = false;
        for &(l, w) in terms {
            if (l as usize) < self.index.num_concepts() && w != 0.0 {
                duplicate |= !accumulate_concept(session, l as usize, w);
            }
        }
        if duplicate {
            if let Some(q) = self.index.prepare_weighted(terms) {
                *out = self.index.rank_exact(&q, top_k)
            }
            return;
        }
        let Some(norm) = self.finalize_terms(session, |_, w| w) else {
            return;
        };
        self.run_pruned(session, norm, top_k, out);
    }

    /// The exact reference path behind the engine API: identical term
    /// preparation, exhaustive accumulation, full sort.
    pub fn search_tags_exact(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        match self.index.prepare_query(concepts, tags) {
            Some(q) => self.index.rank_exact(&q, top_k),
            None => Vec::new(),
        }
    }

    /// Answers a batch of queries, fanning contiguous chunks across the
    /// worker pool (same band-splitting idiom as the offline kernels).
    /// Each worker reuses one [`QuerySession`]; results come back in
    /// query order. With one thread (or one query) this degrades to a
    /// sequential loop with a single session.
    pub fn search_batch<Q>(
        &self,
        concepts: &dyn ConceptAssignment,
        queries: &[Q],
        top_k: usize,
    ) -> Vec<Vec<RankedResource>>
    where
        Q: AsRef<[TagId]> + Sync,
    {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        // Thread spawn + per-worker session setup costs a few tens of µs;
        // keep every worker busy with a meaningful chunk so small batches
        // don't lose to the sequential path.
        const MIN_QUERIES_PER_WORKER: usize = 32;
        let threads = parallel::num_threads()
            .min(n.div_ceil(MIN_QUERIES_PER_WORKER))
            .max(1);
        if threads == 1 {
            let mut session = self.session();
            return queries
                .iter()
                .map(|q| {
                    let mut out = Vec::new();
                    self.search_tags_with(&mut session, concepts, q.as_ref(), top_k, &mut out);
                    out
                })
                .collect();
        }
        let chunk = n.div_ceil(threads);
        let mut pieces: Vec<(usize, Vec<Vec<RankedResource>>)> = Vec::with_capacity(threads);
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (ci, qchunk) in queries.chunks(chunk).enumerate() {
                handles.push(scope.spawn(move |_| {
                    let mut session = self.session();
                    let answers: Vec<Vec<RankedResource>> = qchunk
                        .iter()
                        .map(|q| {
                            let mut out = Vec::new();
                            self.search_tags_with(
                                &mut session,
                                concepts,
                                q.as_ref(),
                                top_k,
                                &mut out,
                            );
                            out
                        })
                        .collect();
                    (ci, answers)
                }));
            }
            for h in handles {
                pieces.push(h.join().expect("search_batch worker panicked"));
            }
        })
        .expect("search_batch scope failed");
        pieces.sort_unstable_by_key(|&(ci, _)| ci);
        pieces.into_iter().flat_map(|(_, v)| v).collect()
    }

    // ---- internals -----------------------------------------------------

    /// Accumulates the tag query into concept scratch and finalizes the
    /// term list; returns the query norm (`None` → empty result).
    fn build_query(
        &self,
        session: &mut QuerySession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
    ) -> Option<f64> {
        let mut total = 0.0;
        for t in tags {
            if t.index() < concepts.num_tags() {
                let s = &mut *session;
                concepts.for_each_weight(t.index(), &mut |l, w| {
                    accumulate_concept(s, l, w);
                });
                total += 1.0;
            }
        }
        if total == 0.0 {
            return None;
        }
        // tf normalization + idf weighting, with the same float ops
        // (`c / total`, not `c * (1/total)`) as
        // `ConceptIndex::prepare_query`, so terms match it bit-for-bit.
        self.finalize_terms(session, |l, c| {
            if c > 0.0 {
                (c / total) * self.index.idf(l)
            } else {
                0.0
            }
        })
    }

    /// Shared tail of query preparation: converts the accumulated concept
    /// scratch into the ordered term list. `weight_of(concept, raw)` maps
    /// an accumulated raw weight to the final term weight (0 → dropped).
    /// Terms are emitted — and the norm summed — in ascending concept
    /// order, matching `ConceptIndex::prepare_weighted` bit-for-bit, then
    /// put in MaxScore order. Returns the query norm (`None` → empty).
    fn finalize_terms(
        &self,
        session: &mut QuerySession,
        weight_of: impl Fn(usize, f64) -> f64,
    ) -> Option<f64> {
        session.concept_touched.sort_unstable();
        for i in 0..session.concept_touched.len() {
            let l = session.concept_touched[i] as usize;
            let wq = weight_of(l, session.concept_weight[l]);
            if wq != 0.0 {
                session.terms.push((l as u32, wq));
            }
        }
        let norm: f64 = session
            .terms
            .iter()
            .map(|&(_, w)| w * w)
            .sum::<f64>()
            .sqrt();
        if norm == 0.0 {
            session.terms.clear();
            return None;
        }
        self.index.order_terms(&mut session.terms);
        Some(norm)
    }

    /// The pruned accumulation + bounded-heap selection. Terms must be in
    /// MaxScore order with non-negative weights; `session` must hold the
    /// current query's terms.
    fn run_pruned(
        &self,
        session: &mut QuerySession,
        norm: f64,
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        let m = session.terms.len();
        if m == 0 {
            return;
        }
        // Single-term queries: the impact-ordered list *is* the ranking
        // (postings sort ties by ascending resource id, matching the
        // result tie-break); emit the prefix directly. Equal impacts can
        // collapse to equal scores after multiplication, so extend the cut
        // across the boundary tie-group before re-sorting by final score.
        if m == 1 && top_k > 0 {
            let (l, wq) = session.terms[0];
            let list = self.index.postings(l as usize);
            let mut take = top_k.min(list.len());
            if take > 0 && take < list.len() {
                let boundary = wq * list[take - 1].1 / norm;
                while take < list.len() && wq * list[take].1 / norm == boundary {
                    take += 1;
                }
            }
            out.extend(list[..take].iter().map(|&(r, w)| RankedResource {
                resource: ResourceId::from_index(r as usize),
                score: wq * w / norm,
            }));
            sort_ranked(out);
            out.truncate(top_k);
            return;
        }

        // Suffix bounds: suffix[i] = Σ_{j ≥ i} wq_j · max_impact_j.
        session.suffix.clear();
        session.suffix.resize(m + 1, 0.0);
        for i in (0..m).rev() {
            let (l, wq) = session.terms[i];
            session.suffix[i] = session.suffix[i + 1] + wq * self.index.max_impact(l as usize);
        }

        let mut admitting = true;
        for i in 0..m {
            let (l, wq) = session.terms[i];
            let list = self.index.postings(l as usize);
            // Threshold = k-th largest partial score so far (a lower bound
            // on the final k-th score, since scores only grow).
            let threshold = if top_k > 0 {
                kth_partial(session, top_k)
            } else {
                None
            };
            if admitting {
                if let Some(th) = threshold {
                    if session.suffix[i] * PRUNE_SLACK < th {
                        admitting = false;
                    }
                }
            }
            if !admitting {
                update_only(session, list, wq);
                continue;
            }
            let rest = session.suffix[i + 1];
            let mut j = 0;
            while j < list.len() {
                let (r, w) = list[j];
                let r = r as usize;
                if session.res_epoch[r] == session.res_cur {
                    session.acc[r] += wq * w;
                } else {
                    if let Some(th) = threshold {
                        // Impacts only decrease down the list: once a new
                        // resource's best case can't reach the threshold,
                        // none below it can either.
                        if (wq * w + rest) * PRUNE_SLACK < th {
                            break;
                        }
                    }
                    session.res_epoch[r] = session.res_cur;
                    session.acc[r] = wq * w;
                    session.touched.push(r as u32);
                }
                j += 1;
            }
            if j < list.len() {
                update_only(session, &list[j..], wq);
            }
        }

        // Selection: bounded min-heap over final (divided) scores when k
        // is limiting, else collect-and-sort.
        let matched = session.touched.len();
        if top_k == 0 || matched <= top_k {
            out.extend(session.touched.iter().map(|&r| RankedResource {
                resource: ResourceId::from_index(r as usize),
                score: session.acc[r as usize] / norm,
            }));
            sort_ranked(out);
            return;
        }
        session.heap.clear();
        for idx in 0..matched {
            let r = session.touched[idx];
            let cand = (session.acc[r as usize] / norm, r);
            if session.heap.len() < top_k {
                heap_push(&mut session.heap, cand);
            } else if worse(session.heap[0], cand) {
                session.heap[0] = cand;
                heap_sift_down(&mut session.heap, 0);
            }
        }
        out.extend(session.heap.iter().map(|&(s, r)| RankedResource {
            resource: ResourceId::from_index(r as usize),
            score: s,
        }));
        sort_ranked(out);
    }
}

/// Adds `w` to concept `l`'s scratch weight; returns `false` when the
/// concept was already touched this query (i.e. this was a merge).
fn accumulate_concept(session: &mut QuerySession, l: usize, w: f64) -> bool {
    let fresh = session.concept_epoch[l] != session.concept_cur;
    if fresh {
        session.concept_epoch[l] = session.concept_cur;
        session.concept_weight[l] = 0.0;
        session.concept_touched.push(l as u32);
    }
    session.concept_weight[l] += w;
    fresh
}

/// Adds a term's contributions to already-touched resources only.
fn update_only(session: &mut QuerySession, list: &[(u32, f64)], wq: f64) {
    for &(r, w) in list {
        let r = r as usize;
        if session.res_epoch[r] == session.res_cur {
            session.acc[r] += wq * w;
        }
    }
}

/// K-th largest partial score among touched resources, or `None` while
/// fewer than `k` resources are touched.
fn kth_partial(session: &mut QuerySession, k: usize) -> Option<f64> {
    if session.touched.len() < k {
        return None;
    }
    session.select_scratch.clear();
    session
        .select_scratch
        .extend(session.touched.iter().map(|&r| session.acc[r as usize]));
    let idx = k - 1;
    session.select_scratch.select_nth_unstable_by(idx, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    Some(session.select_scratch[idx])
}

/// Final result order: the shared ranking comparator.
fn sort_ranked(out: &mut [RankedResource]) {
    out.sort_unstable_by(|a, b| {
        crate::index::cmp_ranked(
            a.score,
            a.resource.index() as u32,
            b.score,
            b.resource.index() as u32,
        )
    });
}

fn heap_push(heap: &mut Vec<(f64, u32)>, item: (f64, u32)) {
    heap.push(item);
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if worse(heap[i], heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn heap_sift_down(heap: &mut [(f64, u32)], mut i: usize) {
    let n = heap.len();
    loop {
        let l = 2 * i + 1;
        let r = l + 1;
        let mut worst = i;
        if l < n && worse(heap[l], heap[worst]) {
            worst = l;
        }
        if r < n && worse(heap[r], heap[worst]) {
            worst = r;
        }
        if worst == i {
            return;
        }
        heap.swap(i, worst);
        i = worst;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::ConceptModel;
    use cubelsi_folksonomy::FolksonomyBuilder;

    fn corpus() -> (cubelsi_folksonomy::Folksonomy, ConceptModel) {
        let mut b = FolksonomyBuilder::new();
        b.add("u1", "audio", "r1");
        b.add("u2", "audio", "r1");
        b.add("u3", "mp3", "r1");
        b.add("u1", "audio", "r2");
        b.add("u2", "laptop", "r2");
        b.add("u1", "laptop", "r3");
        b.add("u2", "wifi", "r3");
        b.add("u3", "laptop", "r3");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 0, 1, 1], 1.0);
        (f, concepts)
    }

    fn engine() -> (cubelsi_folksonomy::Folksonomy, ConceptModel, QueryEngine) {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let engine = QueryEngine::new(index);
        (f, concepts, engine)
    }

    #[test]
    fn pruned_matches_exact_on_toy_corpus() {
        let (f, concepts, engine) = engine();
        let tag_sets: Vec<Vec<TagId>> = vec![
            vec![f.tag_id("audio").unwrap()],
            vec![f.tag_id("laptop").unwrap()],
            vec![f.tag_id("audio").unwrap(), f.tag_id("laptop").unwrap()],
            vec![
                f.tag_id("audio").unwrap(),
                f.tag_id("wifi").unwrap(),
                f.tag_id("mp3").unwrap(),
            ],
        ];
        for tags in &tag_sets {
            for k in [0usize, 1, 2, 3, 10] {
                let exact = engine.search_tags_exact(&concepts, tags, k);
                let pruned = engine.search_tags(&concepts, tags, k);
                assert_eq!(pruned.len(), exact.len(), "k={k} tags={tags:?}");
                for (p, e) in pruned.iter().zip(exact.iter()) {
                    assert_eq!(p.resource, e.resource, "k={k} tags={tags:?}");
                    assert_eq!(p.score.to_bits(), e.score.to_bits(), "k={k}");
                }
            }
        }
    }

    #[test]
    fn session_reuse_is_consistent() {
        let (f, concepts, engine) = engine();
        let mut session = engine.session();
        let mut out = Vec::new();
        let audio = f.tag_id("audio").unwrap();
        let laptop = f.tag_id("laptop").unwrap();
        // Interleave different queries on one session; answers must be
        // independent of history.
        let fresh_audio = engine.search_tags(&concepts, &[audio], 2);
        let fresh_laptop = engine.search_tags(&concepts, &[laptop], 2);
        for _ in 0..5 {
            engine.search_tags_with(&mut session, &concepts, &[audio], 2, &mut out);
            assert_eq!(out, fresh_audio);
            engine.search_tags_with(&mut session, &concepts, &[laptop], 2, &mut out);
            assert_eq!(out, fresh_laptop);
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let (f, concepts, engine) = engine();
        let queries: Vec<Vec<TagId>> = vec![
            vec![f.tag_id("audio").unwrap()],
            vec![f.tag_id("laptop").unwrap()],
            vec![f.tag_id("mp3").unwrap(), f.tag_id("wifi").unwrap()],
            vec![],
            vec![f.tag_id("audio").unwrap(), f.tag_id("laptop").unwrap()],
        ];
        let batch = engine.search_batch(&concepts, &queries, 2);
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(batch.iter()) {
            let want = engine.search_tags(&concepts, q, 2);
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn weighted_negative_falls_back_to_exact() {
        let (_, _, engine) = engine();
        let mut session = engine.session();
        let mut out = Vec::new();
        engine.search_weighted(&mut session, &[(0, 0.7), (1, -0.2)], 0, &mut out);
        let exact = engine
            .index()
            .query_weighted_concepts(&[(0, 0.7), (1, -0.2)], 0);
        assert_eq!(out, exact);
    }

    #[test]
    fn weighted_duplicate_concepts_match_exact() {
        // The exact reference keeps duplicated concept ids as separate
        // terms; the engine must not silently merge them into a
        // different-normed query.
        let (_, _, engine) = engine();
        let mut session = engine.session();
        let mut out = Vec::new();
        let terms = [(0u32, 0.5), (1, 0.25), (0, 0.5)];
        engine.search_weighted(&mut session, &terms, 0, &mut out);
        let exact = engine
            .index()
            .query_weighted_concepts(&[(0, 0.5), (1, 0.25), (0, 0.5)], 0);
        assert_eq!(out.len(), exact.len());
        for (p, e) in out.iter().zip(exact.iter()) {
            assert_eq!(p.resource, e.resource);
            assert_eq!(p.score.to_bits(), e.score.to_bits());
        }
    }

    #[test]
    fn default_session_is_safe_and_correct() {
        // A Default-constructed session (or one sized for a smaller
        // engine) must grow on first use instead of panicking.
        let (f, concepts, engine) = engine();
        let mut session = QuerySession::default();
        let mut out = Vec::new();
        let audio = f.tag_id("audio").unwrap();
        engine.search_tags_with(&mut session, &concepts, &[audio], 2, &mut out);
        let fresh = engine.search_tags(&concepts, &[audio], 2);
        assert_eq!(out, fresh);
    }

    #[test]
    fn empty_and_unknown_queries_are_empty() {
        let (_, concepts, engine) = engine();
        let mut session = engine.session();
        let mut out = vec![RankedResource {
            resource: ResourceId::from_index(0),
            score: 1.0,
        }];
        engine.search_tags_with(&mut session, &concepts, &[], 5, &mut out);
        assert!(out.is_empty(), "out must be cleared for empty queries");
        engine.search_tags_with(
            &mut session,
            &concepts,
            &[TagId::from_index(99)],
            5,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn heap_order_is_total_and_matches_sort() {
        // Randomized heap-vs-sort cross-check with score ties.
        let scores = [0.5, 0.25, 0.5, 1.0, 0.125, 0.25, 0.75, 0.5];
        let mut heap: Vec<(f64, u32)> = Vec::new();
        let k = 4;
        for (r, &s) in scores.iter().enumerate() {
            let cand = (s, r as u32);
            if heap.len() < k {
                heap_push(&mut heap, cand);
            } else if worse(heap[0], cand) {
                heap[0] = cand;
                heap_sift_down(&mut heap, 0);
            }
        }
        let mut got: Vec<(f64, u32)> = heap.clone();
        got.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let mut all: Vec<(f64, u32)> = scores
            .iter()
            .enumerate()
            .map(|(r, &s)| (s, r as u32))
            .collect();
        all.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        assert_eq!(got, all[..k]);
    }
}
