//! The online top-k query engine: exact block-max / MaxScore pruning over
//! impact-ordered SoA postings, bounded-heap selection, and reusable
//! zero-allocation scratch.
//!
//! # Why this exists
//!
//! CubeLSI's online component (Table VI of the paper) is cosine matching
//! over the concept index. The textbook implementation — allocate a dense
//! `O(num_resources)` accumulator, score every matching resource, sort
//! them all, truncate to `k` — wastes most of its time when `k` is small,
//! which is the common serving case. This module replaces it with:
//!
//! * **Impact-ordered SoA postings** ([`ConceptIndex`] stores
//!   `w(l, r) / ‖r‖` in separate id/score arrays, sorted descending, with
//!   per-[`BLOCK_LEN`]-block and per-list maxima), enabling block-max
//!   early termination with minimal memory traffic;
//! * **Bounded-heap selection**: a `k`-element min-heap replaces the full
//!   sort, so selection is `O(matches · log k)` instead of
//!   `O(matches · log matches)`;
//! * **[`QuerySession`] scratch**: epoch-tagged dense accumulators and
//!   reusable buffers make steady-state queries allocation-free;
//! * **[`QueryEngine::search_batch`]**: fans a slice of queries across
//!   worker threads (one session per worker), for throughput workloads.
//!
//! # Pruning strategies
//!
//! Three exact strategies share the same query preparation and suffix
//! bounds, selected by [`PruningStrategy`]:
//!
//! * [`PruningStrategy::MaxScore`] — the PR-1 reference path, kept
//!   verbatim as the correctness and performance baseline: per-posting
//!   admission bound checks, break to update-only mode at the first
//!   posting whose bound cannot beat the threshold, resource-indexed
//!   accumulators, full-division selection.
//! * [`PruningStrategy::BlockMax`] (default) — the optimized exact path:
//!   * **block-granular bounds**: one admission check per
//!     [`BLOCK_LEN`]-posting block against the block's own maximum; a
//!     failing block ends admission for the whole remaining list (block
//!     maxima only decrease down an impact-ordered list), and passing
//!     blocks run tight loops with **no per-posting bound checks**;
//!   * **dense accumulators**: one `(epoch, slot)` word per resource
//!     maps into a compact per-query score array, so accumulation costs
//!     one random cache line per posting instead of two and every
//!     candidate-wide pass (k-th-partial selection, final top-k
//!     selection) is a dense scan;
//!   * **an admission heap**: the k largest admission contributions form
//!     a continuously-valid threshold that improves *mid-list* — the
//!     first processed term seeds it from its first k postings (its
//!     contributions only descend, so later offers are skipped), its
//!     remaining admissions are bulk copies with vectorized products,
//!     and at the second term the heap minimum *is* the exact k-th
//!     partial, replacing the O(touched) selection;
//!   * **candidate-side updates**: a term that can no longer admit
//!     anything updates the touched set through per-resource vector
//!     lookups instead of scanning its posting list when the touched set
//!     is far smaller (`w/‖r‖` recomputed from the stored vector is the
//!     bitwise-identical division the index build performed);
//!   * **division-filtered selection**: candidates are compared against
//!     a conservative undivided bound first, so only near-top-k
//!     candidates pay the `acc/norm` division.
//! * [`PruningStrategy::CompressedBlockMax`] — the block-max skeleton
//!   run over the compressed posting mirror
//!   ([`crate::index`]'s bit-packed frame-of-reference ids plus 8-bit
//!   block-quantized impact upper bounds, ~4 bytes per posting instead
//!   of 12): admitted blocks decode their ids into a per-session
//!   buffer, *fresh* candidates are additionally gated per posting by
//!   the quantized bound, and every accumulated contribution reads the
//!   exact f64 impact — "quantize to reject, rescore to accept". A
//!   skipped posting satisfies the same proof obligation as a skipped
//!   block (its dequantized bound dominates its impact), so results
//!   stay bit-identical.
//!
//! # Pruning invariants (why early termination is exact)
//!
//! All query term weights and posting impacts are **non-negative**, so a
//! resource's partial score only grows as terms are processed. The engine
//! processes terms in descending `weight × max_impact` order and maintains
//! `threshold` = the k-th largest *partial* score among touched resources
//! — a valid lower bound on the final k-th largest score. Prunes apply
//! only to resources that have not been touched yet:
//!
//! 1. **Term prune**: if the summed bound of all remaining terms is below
//!    `threshold`, no new resource can enter the top k; stop admitting new
//!    accumulators (existing ones still receive every update).
//! 2. **In-list prune**: within an impact-ordered list, once the admission
//!    bound (`wq·impact + rest_bound` per posting for MaxScore,
//!    `wq·block_max + rest_bound` per block for block-max) drops below
//!    `threshold`, no later posting can admit a new resource either
//!    (impacts and block maxima only decrease); the rest of the list is
//!    scanned in update-only mode, which touches only the 4-byte id array
//!    for misses.
//!
//! Bound comparisons require the candidate's upper bound to be *relatively*
//! below the threshold (`bound · (1 + 1e-9) < threshold`), which absorbs
//! floating-point rounding in the bound sums — ties at the boundary are
//! therefore never pruned, and a pruned resource is strictly below the
//! k-th result even after the final division by the query norm.
//!
//! The strategies admit slightly different candidate sets: inside a
//! block whose max passes the bound, block-max admits postings the
//! per-posting check would have rejected, while the compressed path's
//! quantized per-posting gate rejects some of them again. Either way a
//! skipped-or-spurious resource's upper bound is strictly below the
//! final k-th score (the bound that skipped it — block max or
//! dequantized impact — dominates its total), so it can never displace a
//! true top-k member in the final heap — and whenever a threshold exists,
//! at least `k` touched resources already exist, so spurious admissions
//! can only occur in the heap-selection regime, never in the
//! emit-everything regime. Because pruning never changes the order or the
//! set of additions applied to a resource that reaches the output, every
//! pruned path returns bit-identical scores — and an identical ranked
//! list, including tie-breaks — to [`ConceptIndex::rank_exact`]. The
//! four-way equivalence (exhaustive ≡ MaxScore ≡ block-max ≡ compressed)
//! is enforced by the `query_engine_equivalence` integration test over
//! randomized corpora.
//!
//! A query whose terms may carry negative **or non-finite** weights
//! (possible through the raw [`QueryEngine::search_weighted`] entry
//! point) falls back to the exact path, where no bound argument is
//! needed. NaN is the subtle case: it fails a `w < 0.0` test *and* passes
//! a `w != 0.0` test, so an explicit `is_finite` guard is required to
//! keep it out of the dense accumulators and the query norm — without it,
//! the pruned path would silently diverge from
//! [`ConceptIndex::query_weighted_concepts`].

use crate::exec;
use crate::index::{
    CompressedPostings, ConceptAssignment, ConceptIndex, PostingsRef, RankedResource, BLOCK_LEN,
};
use cubelsi_folksonomy::{ResourceId, TagId};
use cubelsi_linalg::parallel;

/// Relative slack applied to upper bounds before pruning: a candidate is
/// discarded only when `bound * PRUNE_SLACK < threshold`, so accumulated
/// float rounding (≈1e-16 per op) can never prune a true top-k member.
const PRUNE_SLACK: f64 = 1.0 + 1e-9;

/// Which exact pruning loop the engine runs. All strategies return
/// bit-identical results; the knob exists so the previous-generation
/// paths stay selectable as references for equivalence tests and
/// benchmarks, and so serving can trade the exact posting streams for
/// the compressed mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruningStrategy {
    /// Per-posting MaxScore admission checks (the PR-1 path).
    MaxScore,
    /// Per-block admission checks against block maxima, tight inner loop
    /// (the default).
    #[default]
    BlockMax,
    /// The block-max skeleton over the compressed posting mirror: ids
    /// decoded per block from the bit-packed stream, fresh candidates
    /// gated by 8-bit quantized impact upper bounds, and every accepted
    /// contribution read from the exact f64 impact array — "quantize to
    /// reject, rescore to accept", still bit-identical.
    CompressedBlockMax,
}

/// The online query engine over a built [`ConceptIndex`].
#[derive(Debug, Clone)]
pub struct QueryEngine {
    index: ConceptIndex,
    strategy: PruningStrategy,
}

/// Reusable per-thread scratch for query processing. Create one with
/// [`QueryEngine::session`] and reuse it across queries: after warm-up
/// (buffers grown to their steady sizes) a
/// [`QueryEngine::search_tags_with`] call performs **zero heap
/// allocations**.
#[derive(Debug, Default)]
pub struct QuerySession {
    // Concept-space scratch (query construction).
    concept_weight: Vec<f64>,
    concept_epoch: Vec<u32>,
    concept_touched: Vec<u32>,
    concept_cur: u32,
    // Resource-space scratch (accumulation). The MaxScore reference path
    // uses the two resource-indexed arrays (`acc` + `res_epoch`); the
    // block-max path instead keeps one combined `(epoch << 32) | slot`
    // word per resource and accumulates into `acc_dense[slot]`, where
    // `slot` is the admission index into `touched` — one random cache
    // line per posting instead of two, and every candidate-wide pass
    // (k-th partial selection, final selection) runs over the compact
    // dense array instead of gathering across the full resource space.
    acc: Vec<f64>,
    res_epoch: Vec<u32>,
    slot_map: Vec<u64>,
    acc_dense: Vec<f64>,
    touched: Vec<u32>,
    res_cur: u32,
    // Per-query term list, suffix bounds, selection scratch.
    terms: Vec<(u32, f64)>,
    suffix: Vec<f64>,
    select_scratch: Vec<f64>,
    heap: Vec<(f64, u32)>,
    // Block-max path: bounded min-heap of the top-k admission-time
    // contributions, maintained while scanning so the pruning threshold
    // improves *mid-list* instead of only between terms.
    cand_heap: Vec<f64>,
}

impl QuerySession {
    fn for_index(index: &ConceptIndex) -> Self {
        QuerySession {
            concept_weight: vec![0.0; index.num_concepts()],
            concept_epoch: vec![0; index.num_concepts()],
            acc: vec![0.0; index.num_resources()],
            res_epoch: vec![0; index.num_resources()],
            slot_map: vec![0; index.num_resources()],
            ..QuerySession::default()
        }
    }

    // xtask:no-alloc:begin — steady-state session reset: epoch bumps and
    // length-only clears on retained buffers; reuse must never grow them.
    /// Starts a new query: bumps the epochs so all scratch reads as
    /// untouched, without clearing the dense arrays.
    fn begin(&mut self) {
        self.concept_cur = bump_epoch(self.concept_cur, &mut self.concept_epoch);
        self.res_cur = if self.res_cur == u32::MAX {
            // Wraparound (once per 2^32 queries): hard-reset both the
            // epoch tags and the slot words (their high 32 bits carry the
            // same epoch counter).
            self.res_epoch.fill(0);
            self.slot_map.fill(0);
            1
        } else {
            self.res_cur + 1
        };
        self.concept_touched.clear();
        self.touched.clear();
        self.acc_dense.clear();
        self.terms.clear();
        self.heap.clear();
        self.cand_heap.clear();
    }
    // xtask:no-alloc:end

    /// Grows the dense scratch to the engine's dimensions if needed, so a
    /// `Default`-constructed session — or one created for a smaller
    /// engine — is safe to use (steady-state reuse on one engine never
    /// resizes). New slots carry epoch 0, which reads as untouched.
    fn ensure_capacity(&mut self, index: &ConceptIndex) {
        if self.concept_epoch.len() < index.num_concepts() {
            self.concept_weight.resize(index.num_concepts(), 0.0);
            self.concept_epoch.resize(index.num_concepts(), 0);
        }
        if self.res_epoch.len() < index.num_resources() {
            self.acc.resize(index.num_resources(), 0.0);
            self.res_epoch.resize(index.num_resources(), 0);
        }
        if self.slot_map.len() < index.num_resources() {
            self.slot_map.resize(index.num_resources(), 0);
        }
    }

    /// The combined slot word for an admission at the current epoch.
    #[inline]
    fn slot_word(&self, slot: usize) -> u64 {
        ((self.res_cur as u64) << 32) | slot as u64
    }

    /// Debug-build epoch-coherence checker for the scratch arrays,
    /// shared between the `debug_assert!` after every pruned run and the
    /// test suite. The epoch scheme lets [`Self::begin`] invalidate the
    /// dense per-concept and per-resource scratch in O(1); everything
    /// downstream assumes the tags, the touched lists, and the slot
    /// words agree. Checks, returning the first violation:
    ///
    /// * no epoch tag (concept, resource, or slot-word high bits) is
    ///   ever ahead of its counter;
    /// * `concept_touched` lists exactly the concepts whose tag equals
    ///   the current epoch, with no duplicates;
    /// * `acc_dense` is either empty (MaxScore path) or exactly
    ///   parallel to `touched` (block-max paths);
    /// * on the block-max paths, `slot_map[touched[s]]` is exactly
    ///   `(res_cur << 32) | s` and no *other* resource carries a
    ///   current-epoch slot word;
    /// * on the MaxScore path, `res_epoch[touched[s]]` is current and
    ///   no other resource's tag is.
    pub(crate) fn check_epochs(&self) -> Result<(), String> {
        if let Some(c) = self
            .concept_epoch
            .iter()
            .position(|&e| e > self.concept_cur)
        {
            return Err(format!("concept {c} epoch tag is ahead of the counter"));
        }
        let live = |epochs: &[u32], cur: u32| -> usize {
            if cur == 0 {
                0
            } else {
                epochs.iter().filter(|&&e| e == cur).count()
            }
        };
        for &c in &self.concept_touched {
            let c = c as usize;
            if self.concept_epoch.get(c) != Some(&self.concept_cur) {
                return Err(format!(
                    "touched concept {c} does not carry the current epoch"
                ));
            }
        }
        if live(&self.concept_epoch, self.concept_cur) != self.concept_touched.len() {
            return Err("concept_touched and current-epoch tags disagree".to_owned());
        }

        if let Some(r) = self.res_epoch.iter().position(|&e| e > self.res_cur) {
            return Err(format!("resource {r} epoch tag is ahead of the counter"));
        }
        if let Some(r) = self
            .slot_map
            .iter()
            .position(|&w| (w >> 32) as u32 > self.res_cur)
        {
            return Err(format!("resource {r} slot word is ahead of the counter"));
        }
        if !self.acc_dense.is_empty() {
            // Block-max paths: slot words index the dense accumulator.
            if self.acc_dense.len() != self.touched.len() {
                return Err("acc_dense and touched lengths diverge".to_owned());
            }
            for (slot, &r) in self.touched.iter().enumerate() {
                let want = ((self.res_cur as u64) << 32) | slot as u64;
                if self.slot_map.get(r as usize) != Some(&want) {
                    return Err(format!(
                        "touched resource {r} slot word does not point back at slot {slot}"
                    ));
                }
            }
            let current = if self.res_cur == 0 {
                0
            } else {
                let bits = (self.res_cur as u64) << 32;
                self.slot_map
                    .iter()
                    .filter(|&&w| w & 0xFFFF_FFFF_0000_0000 == bits)
                    .count()
            };
            if current != self.touched.len() {
                return Err(
                    "a resource outside touched carries a current-epoch slot word".to_owned(),
                );
            }
        } else {
            // MaxScore path (or an empty query): the per-resource epoch
            // tags are the admission record.
            for &r in &self.touched {
                if self.res_epoch.get(r as usize) != Some(&self.res_cur) {
                    return Err(format!(
                        "touched resource {r} does not carry the current epoch"
                    ));
                }
            }
            if live(&self.res_epoch, self.res_cur) != self.touched.len() {
                return Err("touched and current-epoch resource tags disagree".to_owned());
            }
        }
        Ok(())
    }

    /// The terms prepared by the last query on this session (in whatever
    /// order preparation left them). The sharded engine reads this after
    /// [`QueryEngine::collect_tag_terms`] to broadcast one prepared query
    /// to every shard.
    pub(crate) fn terms(&self) -> &[(u32, f64)] {
        &self.terms
    }
}

fn bump_epoch(cur: u32, epochs: &mut [u32]) -> u32 {
    if cur == u32::MAX {
        // Wraparound (once per 2^32 queries): hard-reset the tags.
        epochs.fill(0);
        1
    } else {
        cur + 1
    }
}

/// `a` ranks strictly worse than `b` under the shared ranking order
/// ([`crate::index::cmp_ranked`]: score descending, resource id
/// ascending).
#[inline]
fn worse(a: (f64, u32), b: (f64, u32)) -> bool {
    crate::index::cmp_ranked(a.0, a.1, b.0, b.1) == std::cmp::Ordering::Greater
}

impl QueryEngine {
    /// Wraps a built index with the default (block-max) pruning strategy.
    pub fn new(index: ConceptIndex) -> Self {
        QueryEngine {
            index,
            strategy: PruningStrategy::default(),
        }
    }

    /// Wraps a built index with an explicit pruning strategy.
    pub fn with_strategy(index: ConceptIndex, strategy: PruningStrategy) -> Self {
        QueryEngine { index, strategy }
    }

    /// The active pruning strategy.
    pub fn strategy(&self) -> PruningStrategy {
        self.strategy
    }

    /// Switches the pruning strategy. Results are bit-identical either
    /// way; this knob selects the reference path for tests and benches.
    pub fn set_strategy(&mut self, strategy: PruningStrategy) {
        self.strategy = strategy;
    }

    /// The underlying concept index.
    pub fn index(&self) -> &ConceptIndex {
        &self.index
    }

    /// Creates a scratch session sized for this engine's index.
    pub fn session(&self) -> QuerySession {
        QuerySession::for_index(&self.index)
    }

    /// Convenience single query: allocates a fresh session. Prefer
    /// [`Self::search_tags_with`] on a reused session in serving loops.
    pub fn search_tags(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        let mut session = self.session();
        let mut out = Vec::new();
        self.search_tags_with(&mut session, concepts, tags, top_k, &mut out);
        out
    }

    /// Ranks resources for a tag query using the pruned top-k path,
    /// writing results (score descending, resource id ascending) into
    /// `out`. `top_k = 0` returns all matches. Steady-state calls on a
    /// warmed session and reused `out` buffer perform no heap allocation.
    pub fn search_tags_with(
        &self,
        session: &mut QuerySession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        out.clear();
        let Some(norm) = self.collect_tag_terms(session, concepts, tags) else {
            return;
        };
        self.index.order_terms(&mut session.terms);
        self.run_pruned(session, norm, top_k, out);
        debug_assert_eq!(session.check_epochs(), Ok(()));
    }

    /// Prepares a tag query in `session` *without* applying a term order:
    /// after this call `session.terms` holds the `(concept, weight)`
    /// terms in ascending concept order and the returned value is the
    /// query norm (`None` → empty query). The sharded scatter-gather
    /// engine uses this to prepare a query exactly once and then replay
    /// the same terms — in one shared, globally-consistent MaxScore
    /// order — against every shard, which is what makes the merged
    /// ranking bit-identical to a single unsharded engine.
    pub(crate) fn collect_tag_terms(
        &self,
        session: &mut QuerySession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
    ) -> Option<f64> {
        session.begin();
        session.ensure_capacity(&self.index);
        self.build_query(session, concepts, tags)
    }

    /// Runs the pruned engine over externally prepared terms. `terms`
    /// must be non-negative and already in the processing order the
    /// caller wants (the pruning bounds are exact under *any* order;
    /// the order only determines the floating-point accumulation
    /// sequence, which is why the sharded engine pins one global order
    /// across shards).
    pub(crate) fn run_with_terms(
        &self,
        session: &mut QuerySession,
        terms: &[(u32, f64)],
        norm: f64,
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        out.clear();
        session.begin();
        session.ensure_capacity(&self.index);
        session.terms.extend_from_slice(terms);
        self.run_pruned(session, norm, top_k, out);
        debug_assert_eq!(session.check_epochs(), Ok(()));
    }

    /// Ranks resources against raw `(concept, weight)` pairs. Finite
    /// non-negative weights use the pruned path; any negative or
    /// non-finite weight — or a duplicated concept id, which the exact
    /// reference keeps as separate terms while the session scratch would
    /// merge — falls back to the exact reference path so results always
    /// match [`ConceptIndex::query_weighted_concepts`]. The non-finite
    /// guard matters: NaN fails `w < 0.0` and passes `w != 0.0`, so
    /// without it a hostile weight would poison the dense accumulators
    /// and the query norm and the pruned results would silently diverge
    /// from the exact reference.
    pub fn search_weighted(
        &self,
        session: &mut QuerySession,
        terms: &[(u32, f64)],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        out.clear();
        if terms.iter().any(|&(_, w)| w < 0.0 || !w.is_finite()) {
            if let Some(q) = self.index.prepare_weighted(terms) {
                *out = self.index.rank_exact(&q, top_k)
            }
            return;
        }
        session.begin();
        session.ensure_capacity(&self.index);
        let mut duplicate = false;
        for &(l, w) in terms {
            if (l as usize) < self.index.num_concepts() && w != 0.0 {
                duplicate |= !accumulate_concept(session, l as usize, w);
            }
        }
        if duplicate {
            if let Some(q) = self.index.prepare_weighted(terms) {
                *out = self.index.rank_exact(&q, top_k)
            }
            return;
        }
        let Some(norm) = self.finalize_terms(session, |_, w| w) else {
            return;
        };
        self.index.order_terms(&mut session.terms);
        self.run_pruned(session, norm, top_k, out);
        debug_assert_eq!(session.check_epochs(), Ok(()));
    }

    /// The exact reference path behind the engine API: identical term
    /// preparation, exhaustive accumulation, full sort.
    pub fn search_tags_exact(
        &self,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
        top_k: usize,
    ) -> Vec<RankedResource> {
        match self.index.prepare_query(concepts, tags) {
            Some(q) => self.index.rank_exact(&q, top_k),
            None => Vec::new(),
        }
    }

    /// Answers a batch of queries, oversplit into index ranges across
    /// the persistent worker pool ([`crate::exec`]). Each participant —
    /// pool workers plus the calling thread — reuses its pool-cached
    /// [`QuerySession`] and writes straight into each query's own result
    /// slot, so results come back in query order and are bit-identical
    /// at any pool size. With one thread (or a batch too small to
    /// amortize the handoff) this degrades to a sequential loop with a
    /// single session, spawning nothing.
    pub fn search_batch<Q>(
        &self,
        concepts: &dyn ConceptAssignment,
        queries: &[Q],
        top_k: usize,
    ) -> Vec<Vec<RankedResource>>
    where
        Q: AsRef<[TagId]> + Sync,
    {
        let n = queries.len();
        if n == 0 {
            return Vec::new();
        }
        // Pool handoff costs ~a microsecond per task (no thread spawn),
        // so a small chunk already amortizes it. Clamp to the batch
        // size: a batch smaller than the pool must never engage idle
        // workers (each would get an empty range).
        const MIN_QUERIES_PER_TASK: usize = 8;
        let width = parallel::num_threads()
            .min(n.div_ceil(MIN_QUERIES_PER_TASK))
            .min(n)
            .max(1);
        if width == 1 {
            exec::global().note_inline();
            let mut session = self.session();
            return queries
                .iter()
                .map(|q| {
                    let mut out = Vec::new();
                    self.search_tags_with(&mut session, concepts, q.as_ref(), top_k, &mut out);
                    out
                })
                .collect();
        }
        exec::global().note_fanout();
        let mut results: Vec<Vec<RankedResource>> = Vec::new();
        results.resize_with(n, Vec::new);
        // Oversplit relative to the width so work stealing can rebalance
        // straggler ranges.
        let task_size = n.div_ceil(width * 4).max(1);
        let tasks = n.div_ceil(task_size);
        let slots = exec::DisjointSlots::new(&mut results);
        exec::global().run_tasks(width, tasks, &|task, scratch| {
            let lo = task * task_size;
            let hi = (lo + task_size).min(n);
            for (offset, q) in queries[lo..hi].iter().enumerate() {
                // SAFETY: tasks cover disjoint index ranges of 0..n, so
                // each slot is claimed by exactly one task; `results` is
                // not touched until the executor joins the batch.
                let out = unsafe { slots.slot(lo + offset) };
                self.search_tags_with(&mut scratch.query, concepts, q.as_ref(), top_k, out);
            }
        });
        results
    }

    // ---- internals -----------------------------------------------------

    /// Accumulates the tag query into concept scratch and finalizes the
    /// term list; returns the query norm (`None` → empty result).
    fn build_query(
        &self,
        session: &mut QuerySession,
        concepts: &dyn ConceptAssignment,
        tags: &[TagId],
    ) -> Option<f64> {
        let mut total = 0.0;
        for t in tags {
            if t.index() < concepts.num_tags() {
                let s = &mut *session;
                concepts.for_each_weight(t.index(), &mut |l, w| {
                    accumulate_concept(s, l, w);
                });
                total += 1.0;
            }
        }
        if total == 0.0 {
            return None;
        }
        // tf normalization + idf weighting, with the same float ops
        // (`c / total`, not `c * (1/total)`) as
        // `ConceptIndex::prepare_query`, so terms match it bit-for-bit.
        self.finalize_terms(session, |l, c| {
            if c > 0.0 {
                (c / total) * self.index.idf(l)
            } else {
                0.0
            }
        })
    }

    /// Shared tail of query preparation: converts the accumulated concept
    /// scratch into the term list. `weight_of(concept, raw)` maps an
    /// accumulated raw weight to the final term weight (0 → dropped).
    /// Terms are emitted — and the norm summed — in ascending concept
    /// order, matching `ConceptIndex::prepare_weighted` bit-for-bit.
    /// Callers apply a MaxScore processing order afterwards (the local
    /// one via [`ConceptIndex::order_terms`], or a shared global one in
    /// the sharded engine). Returns the query norm (`None` → empty).
    fn finalize_terms(
        &self,
        session: &mut QuerySession,
        weight_of: impl Fn(usize, f64) -> f64,
    ) -> Option<f64> {
        session.concept_touched.sort_unstable();
        for i in 0..session.concept_touched.len() {
            let l = session.concept_touched[i] as usize;
            let wq = weight_of(l, session.concept_weight[l]);
            if wq != 0.0 {
                session.terms.push((l as u32, wq));
            }
        }
        let norm: f64 = session
            .terms
            .iter()
            .map(|&(_, w)| w * w)
            .sum::<f64>()
            .sqrt();
        if norm == 0.0 {
            session.terms.clear();
            return None;
        }
        Some(norm)
    }

    /// Pruned accumulation (per the active [`PruningStrategy`]) +
    /// bounded-heap selection. Terms must be in MaxScore order with
    /// non-negative weights; `session` must hold the current query's
    /// terms.
    fn run_pruned(
        &self,
        session: &mut QuerySession,
        norm: f64,
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        let m = session.terms.len();
        if m == 0 {
            return;
        }
        // Single-term queries: the impact-ordered list *is* the ranking
        // (postings sort ties by ascending resource id, matching the
        // result tie-break); emit the prefix directly. Equal impacts can
        // collapse to equal scores after multiplication, so extend the cut
        // across the boundary tie-group before re-sorting by final score.
        if m == 1 && top_k > 0 {
            let (l, wq) = session.terms[0];
            let list = self.index.postings(l as usize);
            let mut take = top_k.min(list.len());
            if take > 0 && take < list.len() {
                let boundary = wq * list.scores[take - 1] / norm;
                while take < list.len() && wq * list.scores[take] / norm == boundary {
                    take += 1;
                }
            }
            out.extend(
                list.ids[..take]
                    .iter()
                    .zip(&list.scores[..take])
                    .map(|(&r, &w)| RankedResource {
                        resource: ResourceId::from_index(r as usize),
                        score: wq * w / norm,
                    }),
            );
            sort_ranked(out);
            out.truncate(top_k);
            return;
        }

        // Suffix bounds: suffix[i] = Σ_{j ≥ i} wq_j · max_impact_j.
        session.suffix.clear();
        session.suffix.resize(m + 1, 0.0);
        for i in (0..m).rev() {
            let (l, wq) = session.terms[i];
            session.suffix[i] = session.suffix[i + 1] + wq * self.index.max_impact(l as usize);
        }

        match self.strategy {
            PruningStrategy::MaxScore => {
                self.accumulate_maxscore(session, top_k);
                select_emit_sparse(session, norm, top_k, out);
            }
            PruningStrategy::BlockMax => {
                self.accumulate_blockmax(session, top_k);
                select_emit_dense(session, norm, top_k, out);
            }
            PruningStrategy::CompressedBlockMax => {
                self.accumulate_compressed(session, top_k);
                select_emit_dense(session, norm, top_k, out);
            }
        }
    }

    /// The PR-1 reference accumulation loop: per-posting admission bound
    /// checks, break to update-only mode at the first failing posting.
    fn accumulate_maxscore(&self, session: &mut QuerySession, top_k: usize) {
        let m = session.terms.len();
        let mut admitting = true;
        for i in 0..m {
            let (l, wq) = session.terms[i];
            let list = self.index.postings(l as usize);
            // Threshold = k-th largest partial score so far (a lower bound
            // on the final k-th score, since scores only grow).
            let threshold = if top_k > 0 {
                kth_partial(session, top_k)
            } else {
                None
            };
            if admitting {
                if let Some(th) = threshold {
                    if session.suffix[i] * PRUNE_SLACK < th {
                        admitting = false;
                    }
                }
            }
            if !admitting {
                update_only(session, list.ids, list.scores, wq);
                continue;
            }
            let rest = session.suffix[i + 1];
            let mut j = 0;
            while j < list.len() {
                let r = list.ids[j] as usize;
                let w = list.scores[j];
                if session.res_epoch[r] == session.res_cur {
                    session.acc[r] += wq * w;
                } else {
                    if let Some(th) = threshold {
                        // Impacts only decrease down the list: once a new
                        // resource's best case can't reach the threshold,
                        // none below it can either.
                        if (wq * w + rest) * PRUNE_SLACK < th {
                            break;
                        }
                    }
                    session.res_epoch[r] = session.res_cur;
                    session.acc[r] = wq * w;
                    session.touched.push(r as u32);
                }
                j += 1;
            }
            if j < list.len() {
                update_only(session, &list.ids[j..], &list.scores[j..], wq);
            }
        }
    }

    /// The block-max accumulation loop (see the module docs for the full
    /// list of refinements over the MaxScore reference). The admitted
    /// candidate set is a superset of the MaxScore path's — block
    /// granularity admits postings a per-posting check would reject — but
    /// every spurious candidate is strictly below the final k-th score,
    /// so the emitted ranking is bit-identical. A bounded min-heap of the
    /// top-k admission contributions provides a threshold that is valid
    /// at any instant (k distinct resources each have a final score at or
    /// above the heap minimum) and improves *while* a list is scanned —
    /// in particular the first term establishes a threshold after its
    /// k-th posting instead of admitting its whole list, and once a block
    /// bound falls below the threshold the rest of the first term's list
    /// is skipped outright (no earlier term exists whose accumulators
    /// could need the tail).
    fn accumulate_blockmax(&self, session: &mut QuerySession, top_k: usize) {
        let m = session.terms.len();
        // The admission heap only pays off when k is small relative to
        // the corpus — when most matches end up in the top k anyway,
        // nothing can be pruned and its maintenance is pure overhead, so
        // it is disabled (a performance guard only; every threshold in
        // this loop is optional and the result is exact either way).
        let heap_k = if top_k > 0 && top_k * 4 <= self.index.num_resources() {
            top_k
        } else {
            0
        };
        let mut admitting = true;
        for i in 0..m {
            let (l, wq) = session.terms[i];
            let l = l as usize;
            let list = self.index.postings(l);
            let n = list.len();
            // Strongest threshold at term start: the k-th largest current
            // partial (includes growth from updates), as in MaxScore —
            // computed over the compact dense accumulator array. After
            // exactly one processed term the partials *are* the admission
            // values, so a full admission heap already holds the answer
            // and the O(touched) selection is skipped.
            let mut threshold = if top_k == 0 {
                None
            } else if i == 1 && session.cand_heap.len() == top_k {
                Some(session.cand_heap[0])
            } else {
                kth_partial_dense(session, top_k)
            };
            raise_to_heap_threshold(session, heap_k, &mut threshold);
            if admitting {
                if let Some(th) = threshold {
                    if session.suffix[i] * PRUNE_SLACK < th {
                        admitting = false;
                    }
                }
            }
            if !admitting {
                self.update_candidates_or_scan(session, l, wq, list, session.touched.len());
                continue;
            }
            let rest = session.suffix[i + 1];
            let start_len = session.touched.len();
            let blocks = self.index.block_maxima(l);

            // Conservative admission cut under the start-of-term
            // threshold: postings past `cut` can never admit (block
            // maxima and the bound only decrease down the list; the
            // improving threshold can only move the real cut earlier).
            let cut = match threshold {
                None => n,
                Some(th) => {
                    let mut c = 0usize;
                    for &bm in blocks {
                        if (wq * bm + rest) * PRUNE_SLACK < th {
                            break;
                        }
                        c = (c + BLOCK_LEN).min(n);
                    }
                    c
                }
            };

            if start_len * 8 + cut < n {
                // Candidate-side mode: the admitting prefix plus the
                // touched set is far smaller than the list. Settle every
                // previously-touched resource through its concept vector
                // (covers its posting wherever it sits in the list), then
                // scan only the prefix for *fresh* admissions — touched
                // resources are skipped there, and the dead tail is never
                // read at all.
                self.update_candidates(session, l, wq, start_len);
                let mut pos = 0usize;
                for &bm in &blocks[..cut.div_ceil(BLOCK_LEN)] {
                    raise_to_heap_threshold(session, heap_k, &mut threshold);
                    if let Some(th) = threshold {
                        if (wq * bm + rest) * PRUNE_SLACK < th {
                            break;
                        }
                    }
                    let block_end = (pos + BLOCK_LEN).min(cut);
                    admit_fresh(session, list, pos, block_end, wq, heap_k);
                    pos = block_end;
                }
            } else {
                // List-scan mode: admit + update in one pass over the
                // live region, with one bound check per block.
                let mut pos = 0usize;
                for &bm in blocks {
                    raise_to_heap_threshold(session, heap_k, &mut threshold);
                    if let Some(th) = threshold {
                        if (wq * bm + rest) * PRUNE_SLACK < th {
                            // No posting from here on can admit. Resources
                            // admitted earlier in *this* list cannot
                            // reappear in its tail, so with no earlier
                            // touched resources the tail is dead weight;
                            // otherwise it is update-only.
                            if pos == 0 {
                                self.update_candidates_or_scan(session, l, wq, list, start_len);
                            } else if start_len > 0 {
                                update_only_dense(
                                    session,
                                    &list.ids[pos..],
                                    &list.scores[pos..],
                                    wq,
                                );
                            }
                            pos = n;
                            break;
                        }
                    }
                    let block_end = (pos + BLOCK_LEN).min(n);
                    if start_len == 0 {
                        // First processed term: every posting is a fresh
                        // admission (a resource appears once per list), so
                        // the slot word is written without being read, and
                        // past the k-th posting the descending
                        // contributions can never displace the admission
                        // heap's minimum — no offers needed.
                        admit_block_first(session, list, pos, block_end, wq, heap_k);
                    } else {
                        admit_block(session, list, pos, block_end, wq, heap_k);
                    }
                    pos = block_end;
                }
                debug_assert!(pos == n);
            }
        }
    }

    /// Adds term `l`'s contribution to the first `count` touched
    /// resources by binary-searching each one's tf-idf vector (their
    /// accumulator slot is their admission index, so no slot lookup is
    /// needed). The recomputed `w / ‖r‖` is the same division (same
    /// operand bits) the index build performed, so the contribution is
    /// bit-identical to the stored posting impact.
    fn update_candidates(&self, session: &mut QuerySession, l: usize, wq: f64, count: usize) {
        let concept = l as u32;
        for idx in 0..count {
            let r = session.touched[idx] as usize;
            let rv = self.index.resource_vector(r);
            if let Ok(p) = rv.concepts.binary_search(&concept) {
                let impact = rv.weights[p] / self.index.resource_norm(r);
                session.acc_dense[idx] += wq * impact;
            }
        }
    }

    /// Applies one term's contributions to already-touched resources only
    /// (no admissions possible), choosing the cheaper side: scan the
    /// term's posting list, or — when the touched set is far smaller —
    /// candidate-side vector lookups. The factor 8 keeps the lookup path
    /// (a handful of binary-search probes plus a division per hit) to
    /// cases where it wins decisively over `len` id loads.
    fn update_candidates_or_scan(
        &self,
        session: &mut QuerySession,
        l: usize,
        wq: f64,
        list: PostingsRef<'_>,
        count: usize,
    ) {
        if count * 8 < list.len() {
            self.update_candidates(session, l, wq, count);
        } else {
            update_only_dense(session, list.ids, list.scores, wq);
        }
    }

    /// The compressed decode-and-admit loop: the block-max skeleton —
    /// same thresholds, same exact block-maxima cuts, same candidate-side
    /// escape — run over the compressed posting mirror instead of the
    /// exact id array. Per admitted block the bit-packed ids are decoded
    /// into the session's reusable buffer; *fresh* candidates are gated
    /// per posting by the quantized impact upper bound
    /// (`(wq · dequant + rest) · PRUNE_SLACK < threshold` → skip), and
    /// every contribution that is actually accumulated reads the exact
    /// f64 impact — "quantize to reject, rescore to accept".
    ///
    /// Why gating is exact: `dequant ≥ impact` (a build/load invariant),
    /// so a skipped posting satisfies the same proof obligation as a
    /// skipped block — the resource's best possible final score is
    /// strictly below the final k-th. It may be admitted by a *later*
    /// term with an incomplete (smaller) accumulator, exactly like a
    /// resource skipped by a block cut, and the same argument shows it
    /// can never displace a true top-k member: whenever a threshold
    /// exists at least k touched resources already exist, so spurious or
    /// missing admissions never reach the emit-everything regime, and in
    /// the heap regime every true top-k member keeps a complete
    /// accumulator (its bound can never lose to the threshold). The
    /// emitted ranking is therefore bit-identical to the uncompressed
    /// paths — enforced three-way by `query_engine_equivalence`.
    fn accumulate_compressed(&self, session: &mut QuerySession, top_k: usize) {
        let m = session.terms.len();
        let heap_k = if top_k > 0 && top_k * 4 <= self.index.num_resources() {
            top_k
        } else {
            0
        };
        let c = self.index.compressed();
        let mut admitting = true;
        for i in 0..m {
            let (l, wq) = session.terms[i];
            let l = l as usize;
            let list = self.index.postings(l);
            let n = list.len();
            let mut threshold = if top_k == 0 {
                None
            } else if i == 1 && session.cand_heap.len() == top_k {
                Some(session.cand_heap[0])
            } else {
                kth_partial_dense(session, top_k)
            };
            raise_to_heap_threshold(session, heap_k, &mut threshold);
            if admitting {
                if let Some(th) = threshold {
                    if session.suffix[i] * PRUNE_SLACK < th {
                        admitting = false;
                    }
                }
            }
            if !admitting {
                let count = session.touched.len();
                self.update_compressed_or_candidates(session, l, wq, count);
                continue;
            }
            let rest = session.suffix[i + 1];
            let start_len = session.touched.len();
            let blocks = self.index.block_maxima(l);
            let blk0 = self.index.first_block(l);
            let post0 = self.index.posting_start(l);

            // Conservative admission cut, identical to the block-max
            // path (the cut bound uses the exact block maxima, which
            // stay hot in both modes).
            let cut = match threshold {
                None => n,
                Some(th) => {
                    let mut c = 0usize;
                    for &bm in blocks {
                        if (wq * bm + rest) * PRUNE_SLACK < th {
                            break;
                        }
                        c = (c + BLOCK_LEN).min(n);
                    }
                    c
                }
            };

            if start_len * 8 + cut < n {
                // Candidate-side mode (same shape as block-max): settle
                // the touched set through resource vectors, then decode
                // only the admitting prefix for fresh candidates.
                self.update_candidates(session, l, wq, start_len);
                let mut pos = 0usize;
                for (bi, &bm) in blocks[..cut.div_ceil(BLOCK_LEN)].iter().enumerate() {
                    raise_to_heap_threshold(session, heap_k, &mut threshold);
                    if let Some(th) = threshold {
                        if (wq * bm + rest) * PRUNE_SLACK < th {
                            break;
                        }
                    }
                    let block_end = (pos + BLOCK_LEN).min(cut);
                    let blk = blk0 + bi;
                    // Bit-packing is sequential from the block start, so
                    // streaming the first `take` ids of a cut block works.
                    admit_fresh_compressed(
                        session,
                        c,
                        blk,
                        &list.scores[pos..block_end],
                        &c.quant[post0 + pos..post0 + block_end],
                        wq,
                        rest,
                        threshold,
                        heap_k,
                    );
                    pos = block_end;
                }
            } else {
                // List-scan mode: decode + admit + update in one pass.
                let mut pos = 0usize;
                for (bi, &bm) in blocks.iter().enumerate() {
                    raise_to_heap_threshold(session, heap_k, &mut threshold);
                    if let Some(th) = threshold {
                        if (wq * bm + rest) * PRUNE_SLACK < th {
                            if pos == 0 {
                                self.update_compressed_or_candidates(session, l, wq, start_len);
                            } else if start_len > 0 {
                                self.update_only_compressed(session, l, pos, wq);
                            }
                            pos = n;
                            break;
                        }
                    }
                    let block_end = (pos + BLOCK_LEN).min(n);
                    let blk = blk0 + bi;
                    let take = block_end - pos;
                    if start_len == 0 {
                        // The first term admits every posting, so the
                        // decoded ids ARE the touched tail — decode
                        // straight into it and skip the staging buffer.
                        let dst0 = session.touched.len();
                        session.touched.resize(dst0 + take, 0);
                        self.index
                            .decode_block_ids(blk, take, &mut session.touched[dst0..]);
                        admit_block_first_compressed(
                            session,
                            dst0,
                            &list.scores[pos..block_end],
                            wq,
                            heap_k,
                        );
                    } else {
                        admit_block_compressed(
                            session,
                            c,
                            blk,
                            &list.scores[pos..block_end],
                            &c.quant[post0 + pos..post0 + block_end],
                            wq,
                            rest,
                            threshold,
                            heap_k,
                        );
                    }
                    pos = block_end;
                }
                debug_assert!(pos == n);
            }
        }
    }

    /// Compressed analogue of [`Self::update_candidates_or_scan`]:
    /// candidate-side vector lookups when the touched set is far smaller
    /// than the list, else a decode-scan of the whole list in
    /// update-only mode.
    fn update_compressed_or_candidates(
        &self,
        session: &mut QuerySession,
        l: usize,
        wq: f64,
        count: usize,
    ) {
        if count * 8 < self.index.postings(l).len() {
            self.update_candidates(session, l, wq, count);
        } else {
            self.update_only_compressed(session, l, 0, wq);
        }
    }

    /// Compressed update-only tail: adds term `l`'s contributions to
    /// already-touched resources over postings `[from, len)` (with
    /// `from` on a block boundary), streaming decoded ids straight into
    /// the slot-map probe; only hits read the exact impact array.
    fn update_only_compressed(&self, session: &mut QuerySession, l: usize, from: usize, wq: f64) {
        let list = self.index.postings(l);
        let c = self.index.compressed();
        let n = list.len();
        let blk0 = self.index.first_block(l);
        let epoch_bits = (session.res_cur as u64) << 32;
        debug_assert!(from.is_multiple_of(BLOCK_LEN));
        let (slot_map, acc_dense) = (&session.slot_map, &mut session.acc_dense);
        let mut pos = from;
        while pos < n {
            let block_end = (pos + BLOCK_LEN).min(n);
            let scores = &list.scores[pos..block_end];
            c.for_each_block_id(blk0 + pos / BLOCK_LEN, block_end - pos, |j, r| {
                let word = slot_map[r as usize];
                if word & 0xFFFF_FFFF_0000_0000 == epoch_bits {
                    acc_dense[(word & 0xFFFF_FFFF) as usize] += wq * scores[j];
                }
            });
            pos = block_end;
        }
    }
}

/// Emits the MaxScore path's results from the resource-indexed
/// accumulators: bounded min-heap over final (divided) scores when k is
/// limiting, else collect-and-sort. The PR-1 loop, kept verbatim as the
/// reference.
fn select_emit_sparse(
    session: &mut QuerySession,
    norm: f64,
    top_k: usize,
    out: &mut Vec<RankedResource>,
) {
    let matched = session.touched.len();
    if top_k == 0 || matched <= top_k {
        out.extend(session.touched.iter().map(|&r| RankedResource {
            resource: ResourceId::from_index(r as usize),
            score: session.acc[r as usize] / norm,
        }));
        sort_ranked(out);
        return;
    }
    session.heap.clear();
    for idx in 0..matched {
        let r = session.touched[idx];
        let cand = (session.acc[r as usize] / norm, r);
        if session.heap.len() < top_k {
            heap_push(&mut session.heap, cand);
        } else if worse(session.heap[0], cand) {
            session.heap[0] = cand;
            heap_sift_down(&mut session.heap, 0);
        }
    }
    out.extend(session.heap.iter().map(|&(s, r)| RankedResource {
        resource: ResourceId::from_index(r as usize),
        score: s,
    }));
    sort_ranked(out);
}

/// Emits the block-max path's results from the dense accumulators. The
/// heap pre-filters in *undivided* space: a candidate is divided (and
/// exactly compared) only when its raw accumulator could possibly reach
/// the heap minimum. `reject_bound = heap_min · norm · (1 − 1e-9)` is
/// conservative: any candidate whose divided score ties or beats the
/// heap minimum satisfies `acc ≥ heap_min · norm` up to one rounding
/// ulp, so it always survives the filter; rejected candidates are
/// strictly below the minimum and the exact comparator would discard
/// them anyway. This removes the per-candidate division — a dominant
/// selection cost on large candidate sets — and scans only the compact
/// dense array.
fn select_emit_dense(
    session: &mut QuerySession,
    norm: f64,
    top_k: usize,
    out: &mut Vec<RankedResource>,
) {
    let matched = session.touched.len();
    if top_k == 0 || matched <= top_k {
        out.extend(
            session
                .touched
                .iter()
                .zip(&session.acc_dense)
                .map(|(&r, &a)| RankedResource {
                    resource: ResourceId::from_index(r as usize),
                    score: a / norm,
                }),
        );
        sort_ranked(out);
        return;
    }
    const REJECT_SLACK: f64 = 1.0 - 1e-9;
    let QuerySession {
        acc_dense,
        touched,
        heap,
        ..
    } = session;
    heap.clear();
    let mut reject_bound = f64::NEG_INFINITY;
    for (&acc, &r) in acc_dense.iter().zip(touched.iter()) {
        if heap.len() == top_k && acc < reject_bound {
            continue;
        }
        let cand = (acc / norm, r);
        if heap.len() < top_k {
            heap_push(heap, cand);
            if heap.len() == top_k {
                reject_bound = heap[0].0 * norm * REJECT_SLACK;
            }
        } else if worse(heap[0], cand) {
            heap[0] = cand;
            heap_sift_down(heap, 0);
            reject_bound = heap[0].0 * norm * REJECT_SLACK;
        }
    }
    out.extend(heap.iter().map(|&(s, r)| RankedResource {
        resource: ResourceId::from_index(r as usize),
        score: s,
    }));
    sort_ranked(out);
}

/// Raises `threshold` to the admission-heap bound when the heap holds a
/// full top-k complement: `k` distinct resources were admitted with
/// contributions at least `heap[0]`, and scores only grow, so the final
/// k-th largest score is at least `heap[0]`.
#[inline]
fn raise_to_heap_threshold(session: &QuerySession, top_k: usize, threshold: &mut Option<f64>) {
    if top_k > 0 && session.cand_heap.len() == top_k {
        let h = session.cand_heap[0];
        *threshold = Some(threshold.map_or(h, |t| t.max(h)));
    }
}

/// Adds `w` to concept `l`'s scratch weight; returns `false` when the
/// concept was already touched this query (i.e. this was a merge).
fn accumulate_concept(session: &mut QuerySession, l: usize, w: f64) -> bool {
    let fresh = session.concept_epoch[l] != session.concept_cur;
    if fresh {
        session.concept_epoch[l] = session.concept_cur;
        session.concept_weight[l] = 0.0;
        session.concept_touched.push(l as u32);
    }
    session.concept_weight[l] += w;
    fresh
}

/// Scans postings `[lo, hi)` of `list` with no admission bound checks:
/// update touched resources (through their slot word), admit the rest
/// (feeding each admission's contribution into the bounded threshold
/// heap when enabled). The tight inner loop of the block-max list-scan
/// mode — one random cache line (`slot_map[r]`) per posting; the
/// accumulator itself lives in the compact dense array.
#[inline]
fn admit_block(
    session: &mut QuerySession,
    list: PostingsRef<'_>,
    lo: usize,
    hi: usize,
    wq: f64,
    heap_k: usize,
) {
    let epoch_bits = (session.res_cur as u64) << 32;
    for (&r, &s) in list.ids[lo..hi].iter().zip(&list.scores[lo..hi]) {
        let r = r as usize;
        let contribution = wq * s;
        let word = session.slot_map[r];
        if word & 0xFFFF_FFFF_0000_0000 == epoch_bits {
            session.acc_dense[(word & 0xFFFF_FFFF) as usize] += contribution;
        } else {
            session.slot_map[r] = session.slot_word(session.touched.len());
            session.touched.push(r as u32);
            session.acc_dense.push(contribution);
            if heap_k > 0 {
                offer_admission(&mut session.cand_heap, heap_k, contribution);
            }
        }
    }
}

/// First-term admission of postings `[lo, hi)`: nothing is touched yet,
/// so every posting admits without reading its slot word, and because
/// contributions arrive in descending order the admission heap is
/// exactly the first `heap_k` of them — later postings are at most the
/// heap minimum and are not offered.
#[inline]
fn admit_block_first(
    session: &mut QuerySession,
    list: PostingsRef<'_>,
    lo: usize,
    hi: usize,
    wq: f64,
    heap_k: usize,
) {
    let mut j = lo;
    while j < hi && session.cand_heap.len() < heap_k {
        let contribution = wq * list.scores[j];
        session.slot_map[list.ids[j] as usize] = session.slot_word(session.touched.len());
        session.touched.push(list.ids[j]);
        session.acc_dense.push(contribution);
        offer_admission(&mut session.cand_heap, heap_k, contribution);
        j += 1;
    }
    // Bulk admission of the rest: id copy is a memcpy, the contribution
    // products vectorize, and only the slot writes need a scalar pass.
    let ids = &list.ids[j..hi];
    let scores = &list.scores[j..hi];
    let base = session.touched.len();
    session.touched.extend_from_slice(ids);
    session.acc_dense.extend(scores.iter().map(|&s| wq * s));
    let epoch_bits = (session.res_cur as u64) << 32;
    for (ofs, &r) in ids.iter().enumerate() {
        session.slot_map[r as usize] = epoch_bits | (base + ofs) as u64;
    }
}

/// Scans postings `[lo, hi)` admitting only resources not touched yet —
/// the candidate-side mode already settled every previously-touched
/// resource through its vector, so touched postings are skipped here.
#[inline]
fn admit_fresh(
    session: &mut QuerySession,
    list: PostingsRef<'_>,
    lo: usize,
    hi: usize,
    wq: f64,
    heap_k: usize,
) {
    let epoch_bits = (session.res_cur as u64) << 32;
    for (&r, &s) in list.ids[lo..hi].iter().zip(&list.scores[lo..hi]) {
        let r = r as usize;
        if session.slot_map[r] & 0xFFFF_FFFF_0000_0000 != epoch_bits {
            let contribution = wq * s;
            session.slot_map[r] = session.slot_word(session.touched.len());
            session.touched.push(r as u32);
            session.acc_dense.push(contribution);
            if heap_k > 0 {
                offer_admission(&mut session.cand_heap, heap_k, contribution);
            }
        }
    }
}

/// Compressed admit-or-update over one decoded block (the list-scan
/// inner loop): touched resources take the exact update unconditionally;
/// fresh resources are admitted only when their quantized upper bound
/// clears the threshold. The exact impact is read *after* the gate, so
/// rejected fresh postings never touch the 8-byte score array.
#[inline]
#[allow(clippy::too_many_arguments)]
fn admit_block_compressed(
    session: &mut QuerySession,
    c: &CompressedPostings,
    blk: usize,
    scores: &[f64],
    quant: &[u8],
    wq: f64,
    rest: f64,
    threshold: Option<f64>,
    heap_k: usize,
) {
    let epoch_bits = (session.res_cur as u64) << 32;
    let dq_scale = c.blk_scale[blk] as f64;
    let dq_offset = c.blk_offset[blk] as f64;
    c.for_each_block_id(blk, scores.len(), |j, r| {
        let r = r as usize;
        let word = session.slot_map[r];
        if word & 0xFFFF_FFFF_0000_0000 == epoch_bits {
            session.acc_dense[(word & 0xFFFF_FFFF) as usize] += wq * scores[j];
        } else {
            if let Some(th) = threshold {
                let bound = dq_offset + dq_scale * quant[j] as f64;
                if (wq * bound + rest) * PRUNE_SLACK < th {
                    return;
                }
            }
            let contribution = wq * scores[j];
            session.slot_map[r] = session.slot_word(session.touched.len());
            session.touched.push(r as u32);
            session.acc_dense.push(contribution);
            if heap_k > 0 {
                offer_admission(&mut session.cand_heap, heap_k, contribution);
            }
        }
    });
}

/// First-term admission of one block whose ids were already decoded into
/// `session.touched[dst0..]`, mirroring the exact path's
/// [`admit_block_first`] shape: nothing is touched yet, so every posting
/// admits without reading its slot word, and because contributions
/// arrive in descending impact order the admission heap is exactly the
/// first `heap_k` of them — later postings are never offered. The
/// quantized gate is deliberately *not* applied here: with every posting
/// fresh there is no cold score read to save (each admission reads its
/// exact impact anyway), and skipping the gate keeps the bulk admission
/// (in-place decode + vectorized products) that makes the first term
/// cheap; it also admits exactly the set the uncompressed path admits,
/// so the accumulator state stays identical.
#[inline]
fn admit_block_first_compressed(
    session: &mut QuerySession,
    dst0: usize,
    scores: &[f64],
    wq: f64,
    heap_k: usize,
) {
    debug_assert_eq!(dst0, session.acc_dense.len());
    let mut j = 0;
    while j < scores.len() && session.cand_heap.len() < heap_k {
        offer_admission(&mut session.cand_heap, heap_k, wq * scores[j]);
        j += 1;
    }
    session.acc_dense.extend(scores.iter().map(|&s| wq * s));
    let epoch_bits = (session.res_cur as u64) << 32;
    let (touched, slot_map) = (&session.touched, &mut session.slot_map);
    for (ofs, &r) in touched[dst0..].iter().enumerate() {
        slot_map[r as usize] = epoch_bits | (dst0 + ofs) as u64;
    }
}

/// Candidate-side fresh admission over one decoded block: touched
/// resources were already settled through their vectors, so they are
/// skipped; fresh ones pass the quantized gate before the exact read.
#[inline]
#[allow(clippy::too_many_arguments)]
fn admit_fresh_compressed(
    session: &mut QuerySession,
    c: &CompressedPostings,
    blk: usize,
    scores: &[f64],
    quant: &[u8],
    wq: f64,
    rest: f64,
    threshold: Option<f64>,
    heap_k: usize,
) {
    let epoch_bits = (session.res_cur as u64) << 32;
    let dq_scale = c.blk_scale[blk] as f64;
    let dq_offset = c.blk_offset[blk] as f64;
    c.for_each_block_id(blk, scores.len(), |j, r| {
        let r = r as usize;
        if session.slot_map[r] & 0xFFFF_FFFF_0000_0000 != epoch_bits {
            if let Some(th) = threshold {
                let bound = dq_offset + dq_scale * quant[j] as f64;
                if (wq * bound + rest) * PRUNE_SLACK < th {
                    return;
                }
            }
            let contribution = wq * scores[j];
            session.slot_map[r] = session.slot_word(session.touched.len());
            session.touched.push(r as u32);
            session.acc_dense.push(contribution);
            if heap_k > 0 {
                offer_admission(&mut session.cand_heap, heap_k, contribution);
            }
        }
    });
}

// xtask:no-alloc:begin — per-query inner-loop helpers: scratch buffers
// reach steady capacity after warmup; growth here would defeat session
// reuse. Escapes below are grow-only appends into retained buffers.
/// Adds a term's contributions to already-touched resources only (the
/// block-max tail scan): one random 8-byte read per posting, with hits
/// accumulating into the dense array.
fn update_only_dense(session: &mut QuerySession, ids: &[u32], scores: &[f64], wq: f64) {
    let epoch_bits = (session.res_cur as u64) << 32;
    for (&r, &s) in ids.iter().zip(scores) {
        let word = session.slot_map[r as usize];
        if word & 0xFFFF_FFFF_0000_0000 == epoch_bits {
            session.acc_dense[(word & 0xFFFF_FFFF) as usize] += wq * s;
        }
    }
}

/// K-th largest dense partial score, or `None` while fewer than `k`
/// resources are touched. Operates on the compact per-query accumulator
/// array (a bulk copy + select, no gathers).
fn kth_partial_dense(session: &mut QuerySession, k: usize) -> Option<f64> {
    if session.acc_dense.len() < k {
        return None;
    }
    session.select_scratch.clear();
    session.select_scratch.extend_from_slice(&session.acc_dense); // ALLOC-OK: grow-only reused scratch.
    let idx = k - 1;
    session.select_scratch.select_nth_unstable_by(idx, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    Some(session.select_scratch[idx])
}

/// Feeds one admission contribution into the bounded min-heap of the k
/// largest admission values (each entry corresponds to one distinct
/// resource, so a full heap certifies k resources at or above `heap[0]`).
/// Until the heap reaches `k` entries it is a plain buffer (nothing is
/// pruned against it before it is full anyway); one O(k) Floyd heapify
/// establishes the invariant at the moment it fills — pushing the first
/// term's *descending* contributions one-by-one would instead sift every
/// element all the way to the root.
#[inline]
fn offer_admission(heap: &mut Vec<f64>, k: usize, c: f64) {
    if heap.len() < k {
        heap.push(c); // ALLOC-OK: bounded at k entries; reused across queries.
        if heap.len() == k {
            heapify_min(heap);
        }
    } else if c > heap[0] {
        heap[0] = c;
        min_sift_down(heap, 0);
    }
}

/// Floyd's bottom-up heapify for the admission min-heap.
fn heapify_min(heap: &mut [f64]) {
    for i in (0..heap.len() / 2).rev() {
        min_sift_down(heap, i);
    }
}

fn min_sift_down(heap: &mut [f64], mut i: usize) {
    let n = heap.len();
    loop {
        let l = 2 * i + 1;
        let r = l + 1;
        let mut smallest = i;
        if l < n && heap[l] < heap[smallest] {
            smallest = l;
        }
        if r < n && heap[r] < heap[smallest] {
            smallest = r;
        }
        if smallest == i {
            break;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

/// Adds a term's contributions to already-touched resources only. Misses
/// read nothing but the 4-byte id array.
fn update_only(session: &mut QuerySession, ids: &[u32], scores: &[f64], wq: f64) {
    for (j, &r) in ids.iter().enumerate() {
        let r = r as usize;
        if session.res_epoch[r] == session.res_cur {
            session.acc[r] += wq * scores[j];
        }
    }
}

/// K-th largest partial score among touched resources, or `None` while
/// fewer than `k` resources are touched.
fn kth_partial(session: &mut QuerySession, k: usize) -> Option<f64> {
    if session.touched.len() < k {
        return None;
    }
    session.select_scratch.clear();
    session
        .select_scratch
        .extend(session.touched.iter().map(|&r| session.acc[r as usize])); // ALLOC-OK: grow-only reused scratch.
    let idx = k - 1;
    session.select_scratch.select_nth_unstable_by(idx, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    Some(session.select_scratch[idx])
}

/// Final result order: the shared ranking comparator.
fn sort_ranked(out: &mut [RankedResource]) {
    out.sort_unstable_by(|a, b| {
        crate::index::cmp_ranked(
            a.score,
            a.resource.index() as u32,
            b.score,
            b.resource.index() as u32,
        )
    });
}

fn heap_push(heap: &mut Vec<(f64, u32)>, item: (f64, u32)) {
    heap.push(item); // ALLOC-OK: bounded at k entries; reused across queries.
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if worse(heap[i], heap[parent]) {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn heap_sift_down(heap: &mut [(f64, u32)], mut i: usize) {
    let n = heap.len();
    loop {
        let l = 2 * i + 1;
        let r = l + 1;
        let mut worst = i;
        if l < n && worse(heap[l], heap[worst]) {
            worst = l;
        }
        if r < n && worse(heap[r], heap[worst]) {
            worst = r;
        }
        if worst == i {
            return;
        }
        heap.swap(i, worst);
        i = worst;
    }
}
// xtask:no-alloc:end

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::ConceptModel;
    use cubelsi_folksonomy::FolksonomyBuilder;

    fn corpus() -> (cubelsi_folksonomy::Folksonomy, ConceptModel) {
        let mut b = FolksonomyBuilder::new();
        b.add("u1", "audio", "r1");
        b.add("u2", "audio", "r1");
        b.add("u3", "mp3", "r1");
        b.add("u1", "audio", "r2");
        b.add("u2", "laptop", "r2");
        b.add("u1", "laptop", "r3");
        b.add("u2", "wifi", "r3");
        b.add("u3", "laptop", "r3");
        let f = b.build();
        let concepts = ConceptModel::from_assignments(vec![0, 0, 1, 1], 1.0);
        (f, concepts)
    }

    fn engine() -> (cubelsi_folksonomy::Folksonomy, ConceptModel, QueryEngine) {
        let (f, concepts) = corpus();
        let index = ConceptIndex::build(&f, &concepts);
        let engine = QueryEngine::new(index);
        (f, concepts, engine)
    }

    #[test]
    fn default_strategy_is_blockmax_and_switchable() {
        let (_, _, mut engine) = engine();
        assert_eq!(engine.strategy(), PruningStrategy::BlockMax);
        engine.set_strategy(PruningStrategy::MaxScore);
        assert_eq!(engine.strategy(), PruningStrategy::MaxScore);
        let e2 = QueryEngine::with_strategy(engine.index().clone(), PruningStrategy::MaxScore);
        assert_eq!(e2.strategy(), PruningStrategy::MaxScore);
    }

    #[test]
    fn pruned_matches_exact_on_toy_corpus() {
        let (f, concepts, mut engine) = engine();
        let tag_sets: Vec<Vec<TagId>> = vec![
            vec![f.tag_id("audio").unwrap()],
            vec![f.tag_id("laptop").unwrap()],
            vec![f.tag_id("audio").unwrap(), f.tag_id("laptop").unwrap()],
            vec![
                f.tag_id("audio").unwrap(),
                f.tag_id("wifi").unwrap(),
                f.tag_id("mp3").unwrap(),
            ],
        ];
        for strategy in [
            PruningStrategy::MaxScore,
            PruningStrategy::BlockMax,
            PruningStrategy::CompressedBlockMax,
        ] {
            engine.set_strategy(strategy);
            for tags in &tag_sets {
                for k in [0usize, 1, 2, 3, 10] {
                    let exact = engine.search_tags_exact(&concepts, tags, k);
                    let pruned = engine.search_tags(&concepts, tags, k);
                    assert_eq!(
                        pruned.len(),
                        exact.len(),
                        "{strategy:?} k={k} tags={tags:?}"
                    );
                    for (p, e) in pruned.iter().zip(exact.iter()) {
                        assert_eq!(p.resource, e.resource, "{strategy:?} k={k} tags={tags:?}");
                        assert_eq!(p.score.to_bits(), e.score.to_bits(), "{strategy:?} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn session_reuse_is_consistent() {
        let (f, concepts, engine) = engine();
        let mut session = engine.session();
        let mut out = Vec::new();
        let audio = f.tag_id("audio").unwrap();
        let laptop = f.tag_id("laptop").unwrap();
        // Interleave different queries on one session; answers must be
        // independent of history.
        let fresh_audio = engine.search_tags(&concepts, &[audio], 2);
        let fresh_laptop = engine.search_tags(&concepts, &[laptop], 2);
        for _ in 0..5 {
            engine.search_tags_with(&mut session, &concepts, &[audio], 2, &mut out);
            assert_eq!(out, fresh_audio);
            engine.search_tags_with(&mut session, &concepts, &[laptop], 2, &mut out);
            assert_eq!(out, fresh_laptop);
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let (f, concepts, engine) = engine();
        let queries: Vec<Vec<TagId>> = vec![
            vec![f.tag_id("audio").unwrap()],
            vec![f.tag_id("laptop").unwrap()],
            vec![f.tag_id("mp3").unwrap(), f.tag_id("wifi").unwrap()],
            vec![],
            vec![f.tag_id("audio").unwrap(), f.tag_id("laptop").unwrap()],
        ];
        let batch = engine.search_batch(&concepts, &queries, 2);
        assert_eq!(batch.len(), queries.len());
        for (q, got) in queries.iter().zip(batch.iter()) {
            let want = engine.search_tags(&concepts, q, 2);
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn weighted_negative_falls_back_to_exact() {
        let (_, _, engine) = engine();
        let mut session = engine.session();
        let mut out = Vec::new();
        engine.search_weighted(&mut session, &[(0, 0.7), (1, -0.2)], 0, &mut out);
        let exact = engine
            .index()
            .query_weighted_concepts(&[(0, 0.7), (1, -0.2)], 0);
        assert_eq!(out, exact);
    }

    #[test]
    fn weighted_duplicate_concepts_match_exact() {
        // The exact reference keeps duplicated concept ids as separate
        // terms; the engine must not silently merge them into a
        // different-normed query.
        let (_, _, engine) = engine();
        let mut session = engine.session();
        let mut out = Vec::new();
        let terms = [(0u32, 0.5), (1, 0.25), (0, 0.5)];
        engine.search_weighted(&mut session, &terms, 0, &mut out);
        let exact = engine
            .index()
            .query_weighted_concepts(&[(0, 0.5), (1, 0.25), (0, 0.5)], 0);
        assert_eq!(out.len(), exact.len());
        for (p, e) in out.iter().zip(exact.iter()) {
            assert_eq!(p.resource, e.resource);
            assert_eq!(p.score.to_bits(), e.score.to_bits());
        }
    }

    #[test]
    fn default_session_is_safe_and_correct() {
        // A Default-constructed session (or one sized for a smaller
        // engine) must grow on first use instead of panicking.
        let (f, concepts, engine) = engine();
        let mut session = QuerySession::default();
        let mut out = Vec::new();
        let audio = f.tag_id("audio").unwrap();
        engine.search_tags_with(&mut session, &concepts, &[audio], 2, &mut out);
        let fresh = engine.search_tags(&concepts, &[audio], 2);
        assert_eq!(out, fresh);
    }

    #[test]
    fn empty_and_unknown_queries_are_empty() {
        let (_, concepts, engine) = engine();
        let mut session = engine.session();
        let mut out = vec![RankedResource {
            resource: ResourceId::from_index(0),
            score: 1.0,
        }];
        engine.search_tags_with(&mut session, &concepts, &[], 5, &mut out);
        assert!(out.is_empty(), "out must be cleared for empty queries");
        engine.search_tags_with(
            &mut session,
            &concepts,
            &[TagId::from_index(99)],
            5,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn blockmax_handles_multi_block_lists() {
        // Lists far longer than BLOCK_LEN with heavy tie groups: the
        // block loop must cross block boundaries and agree with exact.
        let mut b = FolksonomyBuilder::new();
        for r in 0..400 {
            b.add("u1", "common", &format!("r{r}"));
            if r % 5 == 0 {
                b.add("u1", "rare", &format!("r{r}"));
            }
            if r % 2 == 0 {
                b.add("u2", "common", &format!("r{r}"));
            }
        }
        let f = b.build();
        let model = ConceptModel::from_assignments(vec![0, 1], 1.0);
        let mut engine = QueryEngine::new(ConceptIndex::build(&f, &model));
        let common = f.tag_id("common").unwrap();
        let rare = f.tag_id("rare").unwrap();
        for strategy in [
            PruningStrategy::MaxScore,
            PruningStrategy::BlockMax,
            PruningStrategy::CompressedBlockMax,
        ] {
            engine.set_strategy(strategy);
            for k in [1usize, 3, 10, 64, 65, 128, 0] {
                for tags in [vec![common, rare], vec![rare, common], vec![common]] {
                    let exact = engine.search_tags_exact(&model, &tags, k);
                    let pruned = engine.search_tags(&model, &tags, k);
                    assert_eq!(pruned.len(), exact.len(), "{strategy:?} k={k}");
                    for (p, e) in pruned.iter().zip(exact.iter()) {
                        assert_eq!(p.resource, e.resource, "{strategy:?} k={k}");
                        assert_eq!(p.score.to_bits(), e.score.to_bits(), "{strategy:?} k={k}");
                    }
                }
            }
        }
    }

    #[test]
    fn heap_order_is_total_and_matches_sort() {
        // Randomized heap-vs-sort cross-check with score ties.
        let scores = [0.5, 0.25, 0.5, 1.0, 0.125, 0.25, 0.75, 0.5];
        let mut heap: Vec<(f64, u32)> = Vec::new();
        let k = 4;
        for (r, &s) in scores.iter().enumerate() {
            let cand = (s, r as u32);
            if heap.len() < k {
                heap_push(&mut heap, cand);
            } else if worse(heap[0], cand) {
                heap[0] = cand;
                heap_sift_down(&mut heap, 0);
            }
        }
        let mut got: Vec<(f64, u32)> = heap.clone();
        got.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut all: Vec<(f64, u32)> = scores
            .iter()
            .enumerate()
            .map(|(r, &s)| (s, r as u32))
            .collect();
        all.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        assert_eq!(got, all[..k]);
    }

    #[test]
    fn epoch_checker_accepts_runs_and_flags_corruption() {
        let (f, concepts, mut engine) = engine();
        let mut session = engine.session();
        let mut out = Vec::new();
        let tags = [f.tag_id("audio").unwrap(), f.tag_id("laptop").unwrap()];
        for strategy in [
            PruningStrategy::MaxScore,
            PruningStrategy::BlockMax,
            PruningStrategy::CompressedBlockMax,
        ] {
            engine.set_strategy(strategy);
            engine.search_tags_with(&mut session, &concepts, &tags, 0, &mut out);
            assert_eq!(session.check_epochs(), Ok(()), "{strategy:?}");
        }

        // A touched resource whose slot word was lost (e.g. a stray
        // overwrite) must be flagged.
        engine.set_strategy(PruningStrategy::BlockMax);
        engine.search_tags_with(&mut session, &concepts, &tags, 0, &mut out);
        let saved = session.slot_map[session.touched[0] as usize];
        session.slot_map[session.touched[0] as usize] = 0;
        let err = session.check_epochs().unwrap_err();
        assert!(err.contains("does not point back"), "{err}");
        session.slot_map[session.touched[0] as usize] = saved;
        assert_eq!(session.check_epochs(), Ok(()));

        // A resource still carrying a current-epoch slot word after its
        // admission record vanished.
        let (r, a) = (
            session.touched.pop().unwrap(),
            session.acc_dense.pop().unwrap(),
        );
        let err = session.check_epochs().unwrap_err();
        assert!(err.contains("outside touched"), "{err}");
        session.touched.push(r);
        session.acc_dense.push(a);
        assert_eq!(session.check_epochs(), Ok(()));

        // An epoch tag from the future (counter rolled back / stale
        // session state) on each of the three tag arrays.
        let saved = session.concept_epoch[0];
        session.concept_epoch[0] = session.concept_cur + 1;
        assert!(session
            .check_epochs()
            .unwrap_err()
            .contains("ahead of the counter"));
        session.concept_epoch[0] = saved;
        let saved = session.res_epoch[0];
        session.res_epoch[0] = session.res_cur + 1;
        assert!(session
            .check_epochs()
            .unwrap_err()
            .contains("ahead of the counter"));
        session.res_epoch[0] = saved;

        // A touched concept whose tag was invalidated.
        session.concept_epoch[session.concept_touched[0] as usize] = 0;
        let err = session.check_epochs().unwrap_err();
        assert!(err.contains("does not carry the current epoch"), "{err}");
    }
}
