//! The end-to-end CubeLSI pipeline (Figure 1 of the paper).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use cubelsi_folksonomy::{Folksonomy, TagId};
use cubelsi_linalg::LinAlgError;
use cubelsi_tensor::{tucker_als, TuckerDecomposition};

use crate::concepts::ConceptModel;
use crate::config::CubeLsiConfig;
use crate::distance::{pairwise_distances_from_embedding, tag_embedding, TagDistances};
use crate::index::{ConceptIndex, RankedResource};
use crate::query::{PruningStrategy, QueryEngine, QuerySession};
use crate::tensor_build::build_tensor;

/// Wall-clock durations of the offline phases — the quantities behind
/// Table V and Figure 5 of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Building the sparse tensor from the folksonomy.
    pub tensor_build: Duration,
    /// Tucker decomposition (HOSVD + HOOI/ALS).
    pub tucker: Duration,
    /// Pairwise tag distances via the Theorem-1/2 shortcut.
    pub distances: Duration,
    /// Spectral clustering (concept distillation).
    pub clustering: Duration,
    /// Building the bag-of-concepts tf-idf index.
    pub indexing: Duration,
}

impl PhaseTimings {
    /// Total offline pre-processing time.
    pub fn total(&self) -> Duration {
        self.tensor_build + self.tucker + self.distances + self.clustering + self.indexing
    }
}

/// A built CubeLSI search engine.
///
/// Construction runs the entire offline component; [`CubeLsi::search`]
/// serves online queries by cosine matching in concept space.
#[derive(Debug, Clone)]
pub struct CubeLsi {
    decomposition: TuckerDecomposition,
    distances: TagDistances,
    concepts: ConceptModel,
    engine: QueryEngine,
    timings: PhaseTimings,
    tag_lookup: HashMap<String, TagId>,
    num_users: usize,
    num_resources: usize,
}

impl CubeLsi {
    /// Runs the offline component on a folksonomy.
    pub fn build(folksonomy: &Folksonomy, config: &CubeLsiConfig) -> Result<Self, LinAlgError> {
        let mut timings = PhaseTimings::default();

        let t0 = Instant::now();
        let tensor = build_tensor(folksonomy)?;
        timings.tensor_build = t0.elapsed();

        let t0 = Instant::now();
        let tucker_cfg = config.tucker_config(tensor.dims())?;
        let decomposition = tucker_als(&tensor, &tucker_cfg)?;
        timings.tucker = t0.elapsed();

        let t0 = Instant::now();
        let embedding = tag_embedding(&decomposition, config.sigma_source)?;
        let distances = pairwise_distances_from_embedding(&embedding);
        timings.distances = t0.elapsed();

        let t0 = Instant::now();
        let concepts = ConceptModel::distill(&distances, &config.spectral_config())?;
        timings.clustering = t0.elapsed();

        let t0 = Instant::now();
        let engine =
            QueryEngine::with_strategy(ConceptIndex::build(folksonomy, &concepts), config.pruning);
        timings.indexing = t0.elapsed();

        Ok(CubeLsi {
            decomposition,
            distances,
            concepts,
            engine,
            timings,
            tag_lookup: tag_lookup(folksonomy),
            num_users: folksonomy.num_users(),
            num_resources: folksonomy.num_resources(),
        })
    }

    /// Reassembles a built engine from restored components (the
    /// deserialization path of `crate::persist`). The tag-name lookup is
    /// rebuilt from the folksonomy's interner — the same source `build`
    /// uses — so name resolution matches the original engine exactly.
    pub(crate) fn from_restored(
        decomposition: TuckerDecomposition,
        distances: TagDistances,
        concepts: ConceptModel,
        index: ConceptIndex,
        timings: PhaseTimings,
        folksonomy: &Folksonomy,
    ) -> Self {
        CubeLsi {
            decomposition,
            distances,
            concepts,
            engine: QueryEngine::new(index),
            timings,
            tag_lookup: tag_lookup(folksonomy),
            num_users: folksonomy.num_users(),
            num_resources: folksonomy.num_resources(),
        }
    }

    /// Number of users in the corpus the engine was built from.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of resources in the corpus the engine was built from.
    pub fn num_resources(&self) -> usize {
        self.num_resources
    }

    /// Online query processing: tag names in, ranked resources out
    /// (Eq. 4). Unknown tag names are ignored; `top_k = 0` returns all
    /// matching resources. Served by the pruned top-k engine.
    pub fn search(&self, query_tags: &[&str], top_k: usize) -> Vec<RankedResource> {
        let ids: Vec<TagId> = query_tags
            .iter()
            .filter_map(|name| self.tag_lookup.get(*name).copied())
            .collect();
        self.search_ids(&ids, top_k)
    }

    /// Online query processing with pre-resolved tag ids (pruned engine,
    /// fresh scratch per call). Serving loops should hold a
    /// [`QuerySession`] from [`Self::session`] and call
    /// [`Self::search_ids_with`] to avoid per-query allocation.
    pub fn search_ids(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource> {
        self.engine.search_tags(&self.concepts, tags, top_k)
    }

    /// Allocation-free online query processing on a reused session.
    pub fn search_ids_with(
        &self,
        session: &mut QuerySession,
        tags: &[TagId],
        top_k: usize,
        out: &mut Vec<RankedResource>,
    ) {
        self.engine
            .search_tags_with(session, &self.concepts, tags, top_k, out);
    }

    /// Answers many queries at once, fanned across the worker pool.
    pub fn search_batch<Q: AsRef<[TagId]> + Sync>(
        &self,
        queries: &[Q],
        top_k: usize,
    ) -> Vec<Vec<RankedResource>> {
        self.engine.search_batch(&self.concepts, queries, top_k)
    }

    /// Creates a reusable query scratch session for this engine.
    pub fn session(&self) -> QuerySession {
        self.engine.session()
    }

    /// The online query engine.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// Consumes the pipeline, yielding its query engine without cloning
    /// the index arrays — the shard loader uses this so an owned-mode
    /// artifact load does not pay for a full index copy.
    pub fn into_engine(self) -> QueryEngine {
        self.engine
    }

    /// The engine's active pruning strategy.
    pub fn pruning_strategy(&self) -> PruningStrategy {
        self.engine.strategy()
    }

    /// Switches the online pruning strategy (results are bit-identical
    /// under every strategy; this selects the reference path for tests
    /// and benchmarks).
    pub fn set_pruning_strategy(&mut self, strategy: PruningStrategy) {
        self.engine.set_strategy(strategy);
    }

    /// The Tucker decomposition (for diagnostics and the memory tables).
    pub fn decomposition(&self) -> &TuckerDecomposition {
        &self.decomposition
    }

    /// Purified tag distance matrix.
    pub fn distances(&self) -> &TagDistances {
        &self.distances
    }

    /// Distilled concept model.
    pub fn concepts(&self) -> &ConceptModel {
        &self.concepts
    }

    /// The concept index (online structure).
    pub fn index(&self) -> &ConceptIndex {
        self.engine.index()
    }

    /// Offline phase timings.
    pub fn timings(&self) -> &PhaseTimings {
        &self.timings
    }

    /// Bytes required for the compressed decomposition (`S` + factor
    /// matrices) — the "CubeLSI memory" column of Table VII.
    pub fn compressed_bytes(&self) -> usize {
        self.decomposition.compressed_len() * std::mem::size_of::<f64>()
    }

    /// Bytes a dense `F̂` would need (`I₁·I₂·I₃` doubles) — the infeasible
    /// alternative of Table VII.
    pub fn dense_purified_bytes(&self) -> usize {
        self.num_users * self.distances.num_tags() * self.num_resources * std::mem::size_of::<f64>()
    }
}

/// The name → id map both constructors share. `build` and `from_restored`
/// must resolve query tags identically — the persisted-artifact
/// bit-identity guarantee depends on it — so the construction lives in
/// exactly one place.
fn tag_lookup(folksonomy: &Folksonomy) -> HashMap<String, TagId> {
    (0..folksonomy.num_tags())
        .map(|t| {
            let id = TagId::from_index(t);
            (folksonomy.tag_name(id).to_owned(), id)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SigmaSource;
    use cubelsi_datagen::{generate, GeneratorConfig};
    use cubelsi_folksonomy::store::figure2_example;

    fn small_dataset() -> cubelsi_datagen::GeneratedDataset {
        generate(&GeneratorConfig {
            users: 40,
            resources: 30,
            concepts: 5,
            assignments: 2_500,
            noise_rate: 0.03,
            seed: 21,
            ..Default::default()
        })
    }

    fn small_config() -> CubeLsiConfig {
        CubeLsiConfig {
            core_dims: Some((8, 8, 8)),
            num_concepts: Some(5),
            max_als_iters: 8,
            seed: 5,
            ..Default::default()
        }
    }

    #[test]
    fn builds_on_figure2_and_clusters_sensibly() {
        let f = figure2_example();
        let cfg = CubeLsiConfig {
            core_dims: Some((3, 3, 2)),
            num_concepts: Some(2),
            sigma: Some(1.0),
            max_als_iters: 30,
            als_fit_tol: 1e-10,
            ..Default::default()
        };
        let engine = CubeLsi::build(&f, &cfg).unwrap();
        // §V's outcome: folk+people together, laptop separate.
        let folk = f.tag_id("folk").unwrap().index();
        let people = f.tag_id("people").unwrap().index();
        let laptop = f.tag_id("laptop").unwrap().index();
        assert!(engine.concepts().same_concept(folk, people));
        assert!(!engine.concepts().same_concept(folk, laptop));
    }

    #[test]
    fn figure2_search_by_synonym() {
        let f = figure2_example();
        let cfg = CubeLsiConfig {
            core_dims: Some((3, 3, 2)),
            num_concepts: Some(2),
            sigma: Some(1.0),
            max_als_iters: 30,
            als_fit_tol: 1e-10,
            ..Default::default()
        };
        let engine = CubeLsi::build(&f, &cfg).unwrap();
        // Query "people": r1 is tagged people directly; r2 is tagged only
        // "folk" — but folk and people share a concept, so r2 must appear.
        let hits = engine.search(&["people"], 0);
        let names: Vec<&str> = hits.iter().map(|h| f.resource_name(h.resource)).collect();
        assert!(names.contains(&"r1"), "direct match missing: {names:?}");
        assert!(names.contains(&"r2"), "concept match missing: {names:?}");
        assert!(!names.contains(&"r3"), "laptop resource must not match");
    }

    #[test]
    fn search_unknown_tags_is_empty_not_error() {
        let f = figure2_example();
        let engine = CubeLsi::build(
            &f,
            &CubeLsiConfig {
                core_dims: Some((2, 2, 2)),
                num_concepts: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(engine.search(&["no-such-tag"], 10).is_empty());
        assert!(engine.search(&[], 10).is_empty());
    }

    #[test]
    fn generated_dataset_end_to_end() {
        let ds = small_dataset();
        let engine = CubeLsi::build(&ds.folksonomy, &small_config()).unwrap();
        assert_eq!(engine.concepts().num_concepts(), 5);
        assert!(engine.decomposition().fit > 0.0);
        // Query with a popular tag: results must be non-empty and sorted.
        let tag0 = TagId::from_index(0);
        let hits = engine.search_ids(&[tag0], 10);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn timings_are_recorded() {
        let ds = small_dataset();
        let engine = CubeLsi::build(&ds.folksonomy, &small_config()).unwrap();
        let t = engine.timings();
        assert!(t.tucker > Duration::ZERO);
        assert!(t.distances > Duration::ZERO);
        assert!(t.total() >= t.tucker);
    }

    #[test]
    fn memory_accounting_matches_table7_shape() {
        let ds = small_dataset();
        let engine = CubeLsi::build(&ds.folksonomy, &small_config()).unwrap();
        // Compressed representation must be far below dense F̂.
        assert!(engine.compressed_bytes() * 10 < engine.dense_purified_bytes());
    }

    #[test]
    fn sigma_sources_agree_on_search_results() {
        let ds = small_dataset();
        let mut cfg = small_config();
        cfg.sigma_source = SigmaSource::CoreGram;
        let a = CubeLsi::build(&ds.folksonomy, &cfg).unwrap();
        cfg.sigma_source = SigmaSource::Lambda2;
        let b = CubeLsi::build(&ds.folksonomy, &cfg).unwrap();
        let tag = TagId::from_index(1);
        let ha = a.search_ids(&[tag], 5);
        let hb = b.search_ids(&[tag], 5);
        // Theorem 2 ⇒ identical distances at convergence ⇒ identical
        // clusters and rankings (modulo k-means label permutation, which
        // does not affect the ranked resources).
        let ra: Vec<_> = ha.iter().map(|h| h.resource).collect();
        let rb: Vec<_> = hb.iter().map(|h| h.resource).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = small_dataset();
        let engine1 = CubeLsi::build(&ds.folksonomy, &small_config()).unwrap();
        let engine2 = CubeLsi::build(&ds.folksonomy, &small_config()).unwrap();
        let tag = TagId::from_index(2);
        let h1 = engine1.search_ids(&[tag], 10);
        let h2 = engine2.search_ids(&[tag], 10);
        assert_eq!(h1.len(), h2.len());
        for (a, b) in h1.iter().zip(h2.iter()) {
            assert_eq!(a.resource, b.resource);
            assert_eq!(a.score, b.score);
        }
    }
}
