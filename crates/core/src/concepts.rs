//! Concept distillation (§V): spectral clustering of tags on the purified
//! distance matrix. Each cluster of semantically related tags is a
//! *concept*; hard clustering assigns every tag to exactly one concept
//! (the paper notes soft clustering as future work).

use crate::distance::TagDistances;
use cubelsi_folksonomy::{Folksonomy, TagId};
use cubelsi_linalg::spectral::{spectral_clustering, SpectralConfig};
use cubelsi_linalg::LinAlgError;

/// The distilled concept space: a hard assignment of tags to concepts.
#[derive(Debug, Clone)]
pub struct ConceptModel {
    /// `tag index → concept index`.
    assignments: Vec<usize>,
    /// `concept index → member tag indexes` (sorted).
    clusters: Vec<Vec<usize>>,
    /// σ used by the affinity kernel.
    sigma: f64,
}

impl ConceptModel {
    /// Runs §V steps 1–4 on a purified distance matrix.
    pub fn distill(distances: &TagDistances, config: &SpectralConfig) -> Result<Self, LinAlgError> {
        let result = spectral_clustering(distances.matrix(), config)?;
        Ok(Self::from_assignments(result.assignments, result.sigma))
    }

    /// Builds a model from a precomputed hard assignment (used by the LSI
    /// baseline, which shares this clustering stage).
    pub fn from_assignments(assignments: Vec<usize>, sigma: f64) -> Self {
        let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
        Self::from_parts(assignments, k, sigma)
    }

    /// Builds a model from a hard assignment and an explicit concept count,
    /// preserving trailing empty clusters that `from_assignments` would
    /// infer away. This is the deserialization constructor: a persisted
    /// model must restore with the exact concept-space dimensionality it
    /// was saved with, or tf-idf vectors would change shape.
    ///
    /// # Panics
    /// Panics when an assignment is `>= num_concepts`; callers restoring
    /// untrusted data must validate first.
    pub fn from_parts(assignments: Vec<usize>, num_concepts: usize, sigma: f64) -> Self {
        let mut clusters = vec![Vec::new(); num_concepts];
        for (tag, &c) in assignments.iter().enumerate() {
            clusters[c].push(tag);
        }
        ConceptModel {
            assignments,
            clusters,
            sigma,
        }
    }

    /// The full `tag index → concept index` assignment (serialization
    /// accessor; [`Self::concept_of`] is the per-tag view).
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Number of concepts.
    pub fn num_concepts(&self) -> usize {
        self.clusters.len()
    }

    /// Number of tags covered.
    pub fn num_tags(&self) -> usize {
        self.assignments.len()
    }

    /// The concept of a tag.
    #[inline]
    pub fn concept_of(&self, tag: usize) -> usize {
        self.assignments[tag]
    }

    /// Member tags of a concept.
    pub fn tags_of(&self, concept: usize) -> &[usize] {
        &self.clusters[concept]
    }

    /// σ used for the affinity kernel (diagnostics).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// `true` when both tags map to the same concept — the semantic
    /// relatedness judgment of the Table I experiment.
    pub fn same_concept(&self, a: usize, b: usize) -> bool {
        self.assignments[a] == self.assignments[b]
    }

    /// Human-readable cluster summaries (the Table IV view).
    pub fn summaries(&self, folksonomy: &Folksonomy) -> Vec<TagClusterSummary> {
        self.clusters
            .iter()
            .enumerate()
            .map(|(concept, tags)| TagClusterSummary {
                concept,
                tags: tags
                    .iter()
                    .map(|&t| folksonomy.tag_name(TagId::from_index(t)).to_owned())
                    .collect(),
            })
            .collect()
    }
}

/// A named tag cluster, as printed in Table IV.
#[derive(Debug, Clone)]
pub struct TagClusterSummary {
    /// Concept index.
    pub concept: usize,
    /// Member tag names.
    pub tags: Vec<String>,
}

impl std::fmt::Display for TagClusterSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "concept {}: {}", self.concept, self.tags.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_linalg::spectral::KSelection;
    use cubelsi_linalg::Matrix;

    fn block_distances() -> TagDistances {
        // Tags {0,1,2} close together, {3,4} close together, far apart.
        let n = 5;
        let m = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else if (i < 3) == (j < 3) {
                0.2
            } else {
                4.0
            }
        });
        TagDistances::from_matrix(m).unwrap()
    }

    fn fixed_config(k: usize) -> SpectralConfig {
        SpectralConfig {
            sigma: Some(1.0),
            k: KSelection::Fixed(k),
            ..Default::default()
        }
    }

    #[test]
    fn distill_recovers_block_structure() {
        let model = ConceptModel::distill(&block_distances(), &fixed_config(2)).unwrap();
        assert_eq!(model.num_concepts(), 2);
        assert_eq!(model.num_tags(), 5);
        assert!(model.same_concept(0, 1));
        assert!(model.same_concept(0, 2));
        assert!(model.same_concept(3, 4));
        assert!(!model.same_concept(0, 3));
    }

    #[test]
    fn clusters_partition_tags() {
        let model = ConceptModel::distill(&block_distances(), &fixed_config(2)).unwrap();
        let mut seen = vec![false; model.num_tags()];
        for c in 0..model.num_concepts() {
            for &t in model.tags_of(c) {
                assert!(!seen[t], "tag {t} in two clusters");
                seen[t] = true;
                assert_eq!(model.concept_of(t), c);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn from_assignments_round_trip() {
        let model = ConceptModel::from_assignments(vec![1, 0, 1, 2], 0.7);
        assert_eq!(model.num_concepts(), 3);
        assert_eq!(model.tags_of(1), &[0, 2]);
        assert_eq!(model.concept_of(3), 2);
        assert_eq!(model.sigma(), 0.7);
    }

    #[test]
    fn summaries_use_tag_names() {
        let mut b = cubelsi_folksonomy::FolksonomyBuilder::new();
        b.add("u", "audio", "r1");
        b.add("u", "mp3", "r1");
        b.add("u", "laptop", "r2");
        let f = b.build();
        // Tag ids follow intern order: audio=0, mp3=1, laptop=2.
        let model = ConceptModel::from_assignments(vec![0, 0, 1], 1.0);
        let summaries = model.summaries(&f);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].tags, vec!["audio", "mp3"]);
        assert_eq!(summaries[1].tags, vec!["laptop"]);
        assert!(summaries[0].to_string().contains("audio, mp3"));
    }
}
