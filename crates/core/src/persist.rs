//! Persistent model artifacts: versioned binary save/load of a complete
//! built engine.
//!
//! CubeLSI's entire value proposition (Table V vs Table VI of the paper)
//! is that the offline component — tensor build → Tucker → Theorem-1/2
//! distances → spectral concepts → index — is expensive while online
//! serving is cheap. A production deployment therefore builds the model
//! *once*, persists it, and serves queries from the loaded artifact. This
//! module provides that artifact: a single self-contained binary file
//! holding the cleaned [`Folksonomy`] (interned name tables + assignment
//! set), the [`TuckerDecomposition`], the purified [`TagDistances`], the
//! distilled [`ConceptModel`], the block-structured SoA [`ConceptIndex`],
//! and the offline [`PhaseTimings`].
//!
//! # Format (`.cubelsi`)
//!
//! Everything is little-endian; no external serialization crates are used.
//!
//! ```text
//! header   8 B  magic             = "CUBELSI\0"
//!          4 B  format version    (u32, currently 3)
//!          4 B  section count     (u32)
//! table    per section, 24 B:
//!          4 B  section id        (u32, see SECTION_* constants)
//!          8 B  payload offset    (u64, absolute file offset)
//!          8 B  payload length    (u64, bytes)
//!          4 B  CRC-32 (IEEE)     of the payload bytes
//! payload  the section payloads, in table order, each starting at an
//!          8-byte-aligned file offset (zero padding in between; the
//!          recorded lengths exclude the padding)
//! ```
//!
//! Within the classic sections, integers are `u32`/`u64` LE, floats are
//! `f64` LE bit patterns (round-tripping exactly, NaN payloads included),
//! strings are `u32` byte length + UTF-8 bytes, and sequences are a `u64`
//! count followed by the elements.
//!
//! ## The SoA index section (format v2)
//!
//! Section [`SECTION_INDEX_SOA`] stores the [`ConceptIndex`] as the exact
//! flat arrays the query engine scans, so loading is array-granular (a
//! handful of bounded reads) instead of posting-granular:
//!
//! ```text
//! u64 × 6  num_resources, num_concepts, block_len (= 64),
//!          rv_nnz, n_postings, n_blocks
//! then, in order, each array at an 8-byte-aligned offset from the
//! payload start (u32 arrays are zero-padded up to the next boundary):
//!   idf             f64 × num_concepts
//!   resource_norms  f64 × num_resources
//!   rv_offsets      u64 × (num_resources + 1)
//!   rv_concepts     u32 × rv_nnz
//!   rv_weights      f64 × rv_nnz
//!   post_offsets    u64 × (num_concepts + 1)
//!   post_ids        u32 × n_postings
//!   post_scores     f64 × n_postings
//!   block_offsets   u64 × (num_concepts + 1)
//!   block_max       f64 × n_blocks
//!   max_impact      f64 × num_concepts
//! ```
//!
//! Because the section payload itself starts 8-aligned in the file, every
//! array is correctly aligned *in the file buffer*, which enables the
//! **zero-copy load path** ([`load_zero_copy`] /
//! [`load_from_path_zero_copy`]): the hot arrays are borrowed straight
//! out of a shared [`AlignedBytes`] buffer — no per-posting decoding,
//! allocation, or copying. The owned path ([`load_from_bytes`] /
//! [`load_from_path`], the portable default) bulk-copies the same
//! arrays. Both paths deliberately still run the full read-only semantic
//! validation (offset monotonicity, id ranges, impact order, block-max
//! consistency, posting ↔ vector cross-checks) before the index is
//! allowed to serve — a linear scan of the postings, accepted so that a
//! checksummed-but-hostile file can never misrank; what the zero-copy
//! path removes is the per-posting materialization, not that safety
//! pass.
//!
//! ## The compressed index section (format v3)
//!
//! [`save_to_vec_with`] with `compress = true` stamps format version 3
//! and appends [`SECTION_INDEX_COMPRESSED`]: the bit-packed /
//! 8-bit-quantized mirror of the posting arrays that the
//! `CompressedBlockMax` strategy streams (see `crate::index`). Layout:
//!
//! ```text
//! u64 × 4  n_blocks, n_postings, packed_len (incl. 8 guard bytes),
//!          block_len (= 64)
//! then, each array 8-aligned from the payload start:
//!   blk_pack_start  u64 × (n_blocks + 1)
//!   blk_base        u32 × n_blocks
//!   blk_scale       f32 × n_blocks
//!   blk_offset      f32 × n_blocks
//!   blk_bits        u8  × n_blocks
//!   quant           u8  × n_postings
//!   packed_ids      u8  × packed_len
//! ```
//!
//! The section is a *mirror*, not a replacement: the exact SoA section
//! is always present, and the loader proves the mirror honest against it
//! — decoded ids must equal `post_ids` bitwise and every dequantized
//! impact must upper-bound its exact impact — before the index may
//! serve. Without the section (or the flag) the writer emits bytes
//! identical to format v2, and loaders of either version rederive the
//! mirror from the exact arrays.
//!
//! Format-v1 files (per-posting pair encoding in section id 6) are still
//! readable; v1 artifacts load through the legacy decoder into the same
//! SoA in-memory layout.
//!
//! # Guarantees
//!
//! * **Bit-identical serving.** Every query-relevant structure (postings
//!   order, block maxima, norms, idf, concept assignment, tag-name
//!   lookup) is restored verbatim, so a loaded engine's
//!   [`CubeLsi::search_ids`] output — scores, order, and tie-breaks — is
//!   bit-for-bit identical to the engine that was saved, under both load
//!   modes. Enforced by the `persist_roundtrip` integration tests over
//!   randomized corpora.
//! * **No panics on bad input.** Corrupt, truncated, misaligned, or
//!   version-mismatched files return a typed [`PersistError`]; every
//!   length is bounds-checked before allocation and every id is validated
//!   before it can index anything.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use cubelsi_folksonomy::{Folksonomy, Interner, ResourceId, TagAssignment, TagId, UserId};
use cubelsi_linalg::Matrix;
use cubelsi_tensor::{DenseTensor3, TuckerDecomposition};

use crate::concepts::ConceptModel;
use crate::distance::TagDistances;
use crate::index::{CompressedPostings, ConceptIndex, BLOCK_LEN};
use crate::pipeline::{CubeLsi, PhaseTimings};
use crate::slab::{AlignedBytes, Pod, Slab};

/// File magic: identifies a CubeLSI artifact regardless of extension.
pub const MAGIC: [u8; 8] = *b"CUBELSI\0";

/// Current artifact format version. Bump on any layout change; readers
/// reject files from the future with [`PersistError::UnsupportedVersion`]
/// and keep reading all older versions.
pub const FORMAT_VERSION: u32 = 3;

/// Byte length of the fixed file header (magic + version + count).
pub const HEADER_LEN: usize = 16;

/// Byte length of one section-table entry.
pub const TABLE_ENTRY_LEN: usize = 24;

const SECTION_META: u32 = 1;
const SECTION_FOLKSONOMY: u32 = 2;
const SECTION_TUCKER: u32 = 3;
const SECTION_DISTANCES: u32 = 4;
const SECTION_CONCEPTS: u32 = 5;
/// Legacy (format v1) per-posting index section; still readable.
const SECTION_INDEX_V1: u32 = 6;
/// The SoA index section written by format v2.
pub const SECTION_INDEX_SOA: u32 = 7;
/// The compressed posting mirror written by format v3 when compression
/// is requested (optional; always accompanied by [`SECTION_INDEX_SOA`]).
pub const SECTION_INDEX_COMPRESSED: u32 = 8;

/// Number of `u64` fields in the SoA index section header.
const SOA_HEADER_FIELDS: usize = 6;

/// Number of `u64` fields in the compressed index section header.
const COMPRESSED_HEADER_FIELDS: usize = 4;

/// Errors raised while saving or loading an artifact. Loading never
/// panics: every failure mode of a hostile or damaged file maps to one of
/// these variants.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure (open, read, write).
    Io(std::io::Error),
    /// The file does not start with the CubeLSI magic bytes.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// The file ends before the advertised data (header, table, or a
    /// section payload extends past EOF).
    Truncated {
        /// What was being read when the file ran out.
        context: &'static str,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Section id whose payload is damaged.
        section: u32,
        /// CRC recorded in the section table.
        expected: u32,
        /// CRC computed over the payload actually present.
        got: u32,
    },
    /// A required section is absent from the section table.
    MissingSection(u32),
    /// A section that must start at an 8-byte-aligned file offset (the
    /// SoA index section, whose arrays are viewed in place by the
    /// zero-copy path) does not.
    MisalignedSection {
        /// Section id with the misaligned payload.
        section: u32,
        /// The offending file offset.
        offset: u64,
    },
    /// A section decoded to structurally invalid data (bad lengths,
    /// out-of-range ids, broken impact order, inconsistent block maxima,
    /// non-UTF-8 names, …).
    Malformed {
        /// Section id that failed to decode.
        section: u32,
        /// Human-readable description of the defect.
        detail: String,
    },
    /// A shard set is inconsistent: shards disagree on corpus, model, or
    /// dimensions, a resource is indexed by the wrong shard under the
    /// declared partition, or the shard count is out of range (see
    /// `crate::shard`).
    Shard {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadMagic => {
                write!(f, "not a CubeLSI artifact (bad magic bytes)")
            }
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is newer than the supported version {supported}"
            ),
            PersistError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            PersistError::ChecksumMismatch {
                section,
                expected,
                got,
            } => write!(
                f,
                "section {section} corrupt: CRC-32 {got:#010x} != recorded {expected:#010x}"
            ),
            PersistError::MissingSection(id) => {
                write!(f, "artifact is missing required section {id}")
            }
            PersistError::MisalignedSection { section, offset } => write!(
                f,
                "section {section} payload at offset {offset} is not 8-byte aligned"
            ),
            PersistError::Malformed { section, detail } => {
                write!(f, "section {section} malformed: {detail}")
            }
            PersistError::Shard { detail } => {
                write!(f, "shard set inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// A loaded artifact: the serving-ready engine plus the folksonomy it was
/// built over (needed online to resolve query tag names and to print
/// result resource names).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The restored engine; answers queries bit-identically to the one
    /// that was saved.
    pub model: CubeLsi,
    /// The cleaned corpus the model was built from (name tables +
    /// assignment set).
    pub folksonomy: Folksonomy,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, computed at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice — the per-section integrity check.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }
    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f64(x);
        }
    }
    fn put_matrix(&mut self, m: &Matrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &x in m.as_slice() {
            self.put_f64(x);
        }
    }
    /// Zero-pads to the next 8-byte boundary (SoA array alignment).
    fn pad_to_8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }
}

/// Lossless `u32` -> `usize` widening for untrusted id/count fields.
/// The hostile-input lint bans bare `as usize` casts in the parsing
/// regions below; this is the single audited widening point, sound on
/// every platform the crate supports.
const _: () = assert!(
    usize::BITS >= 32,
    "cubelsi requires at least a 32-bit usize"
);
#[inline]
pub(crate) fn widen(v: u32) -> usize {
    v as usize
}

/// Reads a little-endian `u32` at `at`, `None` when out of bounds.
#[inline]
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..)?
        .first_chunk::<4>()
        .map(|c| u32::from_le_bytes(*c))
}

/// Reads a little-endian `u64` at `at`, `None` when out of bounds.
#[inline]
fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes
        .get(at..)?
        .first_chunk::<8>()
        .map(|c| u64::from_le_bytes(*c))
}

// xtask:hostile-input:begin — every byte below comes from an untrusted
// artifact; typed errors only (no panics, no truncating casts, no raw
// indexing) until the matching end marker.

/// Bounds-checked reader over one section's payload. Every accessor
/// returns [`PersistError::Malformed`] instead of panicking when the
/// payload runs short, and collection reads verify that the advertised
/// element count fits in the remaining bytes *before* allocating, so a
/// corrupt length can neither panic nor trigger a pathological
/// allocation.
struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    section: u32,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8], section: u32) -> Self {
        Decoder {
            buf,
            pos: 0,
            section,
        }
    }

    fn err(&self, detail: impl Into<String>) -> PersistError {
        PersistError::Malformed {
            section: self.section,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let Some(out) = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end))
        else {
            return Err(self.err(format!(
                "payload exhausted at offset {} (need {n} more bytes of {})",
                self.pos,
                self.buf.len()
            )));
        };
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        match self.take(4)?.first_chunk::<4>() {
            Some(c) => Ok(u32::from_le_bytes(*c)),
            None => Err(self.err("short u32 read")),
        }
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        match self.take(8)?.first_chunk::<8>() {
            Some(c) => Ok(u64::from_le_bytes(*c)),
            None => Err(self.err("short u64 read")),
        }
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("value {v} exceeds usize")))
    }

    /// A length prefix for elements of `elem_size` bytes each, validated
    /// against the bytes actually remaining.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(elem_size).is_none_or(|need| need > remaining) {
            return Err(self.err(format!(
                "length {n} x {elem_size} B exceeds the {remaining} B remaining"
            )));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let n = widen(self.u32()?);
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("non-UTF-8 string"))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn pairs(&mut self) -> Result<Vec<(u32, f64)>, PersistError> {
        let n = self.len_prefix(12)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.u32()?;
            let w = self.f64()?;
            out.push((id, w));
        }
        Ok(out)
    }

    fn matrix(&mut self) -> Result<Matrix, PersistError> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| self.err("matrix dimensions overflow"))?;
        if n.checked_mul(8)
            .is_none_or(|need| need > self.buf.len() - self.pos)
        {
            return Err(self.err(format!("{rows}x{cols} matrix exceeds payload")));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        Matrix::from_vec(rows, cols, data).map_err(|e| self.err(e.to_string()))
    }

    fn finish(&self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return Err(self.err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// xtask:hostile-input:end — the save path below serializes trusted
// in-memory structures.

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

/// Serializes a built engine and its corpus to the `.cubelsi` byte
/// format, without the compressed posting section (format v2 output,
/// byte-identical to what previous releases wrote).
pub fn save_to_vec(model: &CubeLsi, folksonomy: &Folksonomy) -> Vec<u8> {
    save_to_vec_with(model, folksonomy, false)
}

/// Serializes a built engine, optionally appending the compressed
/// posting mirror ([`SECTION_INDEX_COMPRESSED`]). With `compress` the
/// file is stamped format version 3; without it the output stays
/// byte-identical to format v2, so artifacts written by the default path
/// remain readable by older deployments.
pub fn save_to_vec_with(model: &CubeLsi, folksonomy: &Folksonomy, compress: bool) -> Vec<u8> {
    let mut sections = vec![
        (SECTION_META, encode_meta(model, folksonomy)),
        (SECTION_FOLKSONOMY, encode_folksonomy(folksonomy)),
        (SECTION_TUCKER, encode_tucker(model.decomposition())),
        (SECTION_DISTANCES, encode_distances(model.distances())),
        (SECTION_CONCEPTS, encode_concepts(model.concepts())),
        (SECTION_INDEX_SOA, encode_index_soa(model.index())),
    ];
    let version = if compress {
        sections.push((
            SECTION_INDEX_COMPRESSED,
            encode_index_compressed(model.index()),
        ));
        FORMAT_VERSION
    } else {
        2
    };
    assemble_file(version, sections)
}

/// Lays out header + table + payloads, starting every payload at an
/// 8-byte-aligned file offset (zero padding in between). The alignment is
/// what lets the zero-copy loader view the SoA index arrays in place.
fn assemble_file(version: u32, sections: Vec<(u32, Vec<u8>)>) -> Vec<u8> {
    let table_len = sections.len() * TABLE_ENTRY_LEN;
    let payload_base = HEADER_LEN + table_len;
    // HEADER_LEN = 16 and TABLE_ENTRY_LEN = 24, so payload_base is always
    // a multiple of 8; padding each payload to a multiple of 8 keeps every
    // later payload aligned too.
    debug_assert_eq!(payload_base % 8, 0);
    let padded = |len: usize| len.div_ceil(8) * 8;
    let total: usize = payload_base + sections.iter().map(|(_, p)| padded(p.len())).sum::<usize>();

    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = payload_base as u64;
    for (id, payload) in &sections {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        offset += padded(payload.len()) as u64;
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
        out.resize(padded(out.len() - payload_base) + payload_base, 0);
    }
    out
}

/// Writes the artifact to an arbitrary sink.
pub fn save(
    writer: &mut impl Write,
    model: &CubeLsi,
    folksonomy: &Folksonomy,
) -> Result<(), PersistError> {
    writer.write_all(&save_to_vec(model, folksonomy))?;
    Ok(())
}

/// Writes the artifact to a file path, atomically: the bytes go to a
/// temporary sibling first and are renamed into place only after a
/// successful sync, so a crash mid-save can never destroy a previous
/// good artifact at the same path.
pub fn save_to_path(
    path: impl AsRef<Path>,
    model: &CubeLsi,
    folksonomy: &Folksonomy,
) -> Result<(), PersistError> {
    save_to_path_with(path, model, folksonomy, false)
}

/// [`save_to_path`] with the compression choice of [`save_to_vec_with`].
pub fn save_to_path_with(
    path: impl AsRef<Path>,
    model: &CubeLsi,
    folksonomy: &Folksonomy,
    compress: bool,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&save_to_vec_with(model, folksonomy, compress))?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

fn encode_meta(model: &CubeLsi, folksonomy: &Folksonomy) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_usize(folksonomy.num_users());
    e.put_usize(folksonomy.num_tags());
    e.put_usize(folksonomy.num_resources());
    e.put_usize(folksonomy.num_assignments());
    let t = model.timings();
    for d in [
        t.tensor_build,
        t.tucker,
        t.distances,
        t.clustering,
        t.indexing,
    ] {
        e.put_u64(d.as_nanos().min(u64::MAX as u128) as u64);
    }
    e.buf
}

fn encode_folksonomy(f: &Folksonomy) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_usize(f.num_users());
    for u in 0..f.num_users() {
        e.put_str(f.user_name(UserId::from_index(u)));
    }
    e.put_usize(f.num_tags());
    for t in 0..f.num_tags() {
        e.put_str(f.tag_name(TagId::from_index(t)));
    }
    e.put_usize(f.num_resources());
    for r in 0..f.num_resources() {
        e.put_str(f.resource_name(ResourceId::from_index(r)));
    }
    e.put_usize(f.num_assignments());
    for a in f.assignments() {
        e.put_u32(a.user.index() as u32);
        e.put_u32(a.tag.index() as u32);
        e.put_u32(a.resource.index() as u32);
    }
    e.buf
}

fn encode_tucker(d: &TuckerDecomposition) -> Vec<u8> {
    let mut e = Encoder::default();
    let (j1, j2, j3) = d.core.dims();
    e.put_usize(j1);
    e.put_usize(j2);
    e.put_usize(j3);
    for &x in d.core.as_slice() {
        e.put_f64(x);
    }
    for factor in &d.factors {
        e.put_matrix(factor);
    }
    e.put_f64_slice(&d.lambda2);
    e.put_f64(d.fit);
    e.put_usize(d.iterations);
    e.put_f64_slice(&d.fit_history);
    e.buf
}

fn encode_distances(d: &TagDistances) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_matrix(d.matrix());
    e.buf
}

fn encode_concepts(c: &ConceptModel) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_usize(c.num_concepts());
    e.put_f64(c.sigma());
    e.put_usize(c.num_tags());
    for &a in c.assignments() {
        e.put_u64(a as u64);
    }
    e.buf
}

/// Encodes the SoA index section: the 6-field header followed by the raw
/// arrays, each 8-aligned relative to the payload start (which the file
/// writer in turn places at an 8-aligned file offset).
fn encode_index_soa(ix: &ConceptIndex) -> Vec<u8> {
    let a = ix.as_arrays();
    let mut e = Encoder::default();
    e.put_usize(ix.num_resources());
    e.put_usize(ix.num_concepts());
    e.put_usize(BLOCK_LEN);
    e.put_usize(a.rv_concepts.len());
    e.put_usize(a.post_ids.len());
    e.put_usize(a.block_max.len());
    for xs in [
        a.idf,
        a.resource_norms,
        // rv_offsets interleaves below (u64), keep field order explicit.
    ] {
        for &x in xs {
            e.put_f64(x);
        }
    }
    for &x in a.rv_offsets {
        e.put_u64(x);
    }
    for &x in a.rv_concepts {
        e.put_u32(x);
    }
    e.pad_to_8();
    for &x in a.rv_weights {
        e.put_f64(x);
    }
    for &x in a.post_offsets {
        e.put_u64(x);
    }
    for &x in a.post_ids {
        e.put_u32(x);
    }
    e.pad_to_8();
    for &x in a.post_scores {
        e.put_f64(x);
    }
    for &x in a.block_offsets {
        e.put_u64(x);
    }
    for &x in a.block_max {
        e.put_f64(x);
    }
    for &x in a.max_impact {
        e.put_f64(x);
    }
    e.buf
}

/// Encodes the compressed posting mirror: the 4-field header followed by
/// the mirror's arrays, each 8-aligned relative to the payload start.
fn encode_index_compressed(ix: &ConceptIndex) -> Vec<u8> {
    let c = ix.compressed();
    let mut e = Encoder::default();
    e.put_usize(c.num_blocks());
    e.put_usize(c.quant.len());
    e.put_usize(c.packed_ids.len());
    e.put_usize(BLOCK_LEN);
    for &x in c.blk_pack_start.as_slice() {
        e.put_u64(x);
    }
    for &x in c.blk_base.as_slice() {
        e.put_u32(x);
    }
    e.pad_to_8();
    for &x in c.blk_scale.as_slice() {
        e.put_f32(x);
    }
    e.pad_to_8();
    for &x in c.blk_offset.as_slice() {
        e.put_f32(x);
    }
    e.pad_to_8();
    e.buf.extend_from_slice(&c.blk_bits);
    e.pad_to_8();
    e.buf.extend_from_slice(&c.quant);
    e.pad_to_8();
    e.buf.extend_from_slice(&c.packed_ids);
    e.pad_to_8();
    e.buf
}

/// Serialized byte size of the index section(s) an artifact would carry
/// for this index: the exact SoA section plus, with `compress`, the
/// compressed mirror. Exposed so the query bench can report artifact
/// footprint for synthetic indexes that have no full model around them.
pub fn index_artifact_bytes(ix: &ConceptIndex, compress: bool) -> usize {
    let mut n = encode_index_soa(ix).len();
    if compress {
        n += encode_index_compressed(ix).len();
    }
    n
}

// ---------------------------------------------------------------------------
// SoA index section layout
// ---------------------------------------------------------------------------

/// Byte offset + element count of one array inside the SoA payload.
#[derive(Debug, Clone, Copy)]
// xtask:hostile-input:begin — layout arithmetic and the load path run
// on untrusted header counts and raw artifact bytes.

struct ArraySpan {
    offset: usize,
    len: usize,
}

/// The computed layout of every array in the SoA index payload. A single
/// source of truth shared by the encoder (implicitly, via field order) and
/// both decoders; all arithmetic is checked so hostile header counts
/// cannot overflow.
struct SoaLayout {
    idf: ArraySpan,
    resource_norms: ArraySpan,
    rv_offsets: ArraySpan,
    rv_concepts: ArraySpan,
    rv_weights: ArraySpan,
    post_offsets: ArraySpan,
    post_ids: ArraySpan,
    post_scores: ArraySpan,
    block_offsets: ArraySpan,
    block_max: ArraySpan,
    max_impact: ArraySpan,
    /// Total payload length in bytes (including trailing padding of u32
    /// arrays, excluding nothing else).
    total_len: usize,
}

fn soa_layout(
    num_resources: usize,
    num_concepts: usize,
    rv_nnz: usize,
    n_postings: usize,
    n_blocks: usize,
) -> Option<SoaLayout> {
    let mut cursor = SOA_HEADER_FIELDS.checked_mul(8)?;
    let mut span = |elem_size: usize, len: usize, pad: bool| -> Option<ArraySpan> {
        let offset = cursor;
        let bytes = len.checked_mul(elem_size)?;
        cursor = cursor.checked_add(bytes)?;
        if pad {
            cursor = cursor.checked_add(7)? / 8 * 8;
        }
        Some(ArraySpan { offset, len })
    };
    let idf = span(8, num_concepts, false)?;
    let resource_norms = span(8, num_resources, false)?;
    let rv_offsets = span(8, num_resources.checked_add(1)?, false)?;
    let rv_concepts = span(4, rv_nnz, true)?;
    let rv_weights = span(8, rv_nnz, false)?;
    let post_offsets = span(8, num_concepts.checked_add(1)?, false)?;
    let post_ids = span(4, n_postings, true)?;
    let post_scores = span(8, n_postings, false)?;
    let block_offsets = span(8, num_concepts.checked_add(1)?, false)?;
    let block_max = span(8, n_blocks, false)?;
    let max_impact = span(8, num_concepts, false)?;
    Some(SoaLayout {
        idf,
        resource_norms,
        rv_offsets,
        rv_concepts,
        rv_weights,
        post_offsets,
        post_ids,
        post_scores,
        block_offsets,
        block_max,
        max_impact,
        total_len: cursor,
    })
}

/// The computed layout of every array in the compressed index payload;
/// same contract as [`SoaLayout`] (checked arithmetic, encoder field
/// order is the source of truth).
struct CompressedLayout {
    blk_pack_start: ArraySpan,
    blk_base: ArraySpan,
    blk_scale: ArraySpan,
    blk_offset: ArraySpan,
    blk_bits: ArraySpan,
    quant: ArraySpan,
    packed_ids: ArraySpan,
    total_len: usize,
}

fn compressed_layout(
    n_blocks: usize,
    n_postings: usize,
    packed_len: usize,
) -> Option<CompressedLayout> {
    let mut cursor = COMPRESSED_HEADER_FIELDS.checked_mul(8)?;
    let mut span = |elem_size: usize, len: usize| -> Option<ArraySpan> {
        let offset = cursor;
        let bytes = len.checked_mul(elem_size)?;
        cursor = cursor.checked_add(bytes)?;
        cursor = cursor.checked_add(7)? / 8 * 8;
        Some(ArraySpan { offset, len })
    };
    let blk_pack_start = span(8, n_blocks.checked_add(1)?)?;
    let blk_base = span(4, n_blocks)?;
    let blk_scale = span(4, n_blocks)?;
    let blk_offset = span(4, n_blocks)?;
    let blk_bits = span(1, n_blocks)?;
    let quant = span(1, n_postings)?;
    let packed_ids = span(1, packed_len)?;
    Some(CompressedLayout {
        blk_pack_start,
        blk_base,
        blk_scale,
        blk_offset,
        blk_bits,
        quant,
        packed_ids,
        total_len: cursor,
    })
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// Parses an artifact from bytes already in memory, copying every array
/// into owned buffers (the portable default).
pub fn load_from_bytes(bytes: &[u8]) -> Result<Artifact, PersistError> {
    load_impl(bytes, None)
}

/// Reads an artifact from an arbitrary source.
pub fn load(reader: &mut impl Read) -> Result<Artifact, PersistError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    load_from_bytes(&bytes)
}

/// Reads an artifact from a file path (owned buffers).
pub fn load_from_path(path: impl AsRef<Path>) -> Result<Artifact, PersistError> {
    let bytes = std::fs::read(path)?;
    load_from_bytes(&bytes)
}

/// Parses an artifact from a shared aligned buffer, borrowing the hot
/// index arrays (posting ids/scores, block maxima, offsets, norms, idf)
/// straight out of it — no per-posting deserialization. The buffer stays
/// alive for as long as any loaded structure does (each borrowed array
/// holds an `Arc` to it). Validation still runs in full; only the copy is
/// skipped.
pub fn load_zero_copy(buf: Arc<AlignedBytes>) -> Result<Artifact, PersistError> {
    // The byte slice borrows from `buf`, but nothing in the returned
    // artifact borrows from the slice itself — borrowed slabs carry their
    // own `Arc<AlignedBytes>` clones.
    let bytes: &[u8] = buf.as_slice();
    load_impl(bytes, Some(&buf))
}

/// Reads an artifact from a file path into an aligned buffer and serves
/// the index zero-copy out of it.
pub fn load_from_path_zero_copy(path: impl AsRef<Path>) -> Result<Artifact, PersistError> {
    let buf = Arc::new(AlignedBytes::read_file(path)?);
    load_zero_copy(buf)
}

fn load_impl(bytes: &[u8], owner: Option<&Arc<AlignedBytes>>) -> Result<Artifact, PersistError> {
    let sections = parse_sections(bytes)?;
    let find = |id: u32| -> Option<(usize, &[u8])> {
        sections
            .iter()
            .find(|&&(sid, _, _)| sid == id)
            .map(|&(_, off, p)| (off, p))
    };
    let payload = |id: u32| -> Result<&[u8], PersistError> {
        find(id)
            .map(|(_, p)| p)
            .ok_or(PersistError::MissingSection(id))
    };

    let meta = decode_meta(payload(SECTION_META)?)?;
    let folksonomy = decode_folksonomy(payload(SECTION_FOLKSONOMY)?, &meta)?;
    let decomposition = decode_tucker(payload(SECTION_TUCKER)?)?;
    let distances = decode_distances(payload(SECTION_DISTANCES)?, meta.num_tags)?;
    let concepts = decode_concepts(payload(SECTION_CONCEPTS)?, meta.num_tags)?;
    let index = if let Some((offset, p)) = find(SECTION_INDEX_SOA) {
        decode_index_soa(
            p,
            offset,
            owner,
            find(SECTION_INDEX_COMPRESSED),
            meta.num_resources,
            concepts.num_concepts(),
        )?
    } else if let Some((_, p)) = find(SECTION_INDEX_V1) {
        decode_index_v1(p, meta.num_resources, concepts.num_concepts())?
    } else {
        return Err(PersistError::MissingSection(SECTION_INDEX_SOA));
    };

    let model = CubeLsi::from_restored(
        decomposition,
        distances,
        concepts,
        index,
        meta.timings,
        &folksonomy,
    );
    Ok(Artifact { model, folksonomy })
}

/// One parsed section-table row: `(id, file offset, payload)` with a
/// verified CRC.
type SectionView<'a> = (u32, usize, &'a [u8]);

/// Validates the header + section table and returns the section views.
fn parse_sections(bytes: &[u8]) -> Result<Vec<SectionView<'_>>, PersistError> {
    if bytes.len() < HEADER_LEN {
        if bytes.len() >= MAGIC.len() && !bytes.starts_with(&MAGIC) {
            return Err(PersistError::BadMagic);
        }
        return Err(PersistError::Truncated { context: "header" });
    }
    if !bytes.starts_with(&MAGIC) {
        return Err(PersistError::BadMagic);
    }
    let header = |at: usize| le_u32(bytes, at).ok_or(PersistError::Truncated { context: "header" });
    let version = header(8)?;
    if version > FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = widen(header(12)?);
    let table_end = HEADER_LEN.saturating_add(count.saturating_mul(TABLE_ENTRY_LEN));
    if table_end > bytes.len() {
        return Err(PersistError::Truncated {
            context: "section table",
        });
    }
    let mut sections = Vec::with_capacity(count);
    let table_short = || PersistError::Truncated {
        context: "section table",
    };
    for i in 0..count {
        // `table_end <= bytes.len()` was verified above; the checked
        // reads below keep even a wrong bound panic-free.
        let entry = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let id = le_u32(bytes, entry).ok_or_else(table_short)?;
        let offset = le_u64(bytes, entry + 4).ok_or_else(table_short)?;
        let len = le_u64(bytes, entry + 12).ok_or_else(table_short)?;
        let expected_crc = le_u32(bytes, entry + 20).ok_or_else(table_short)?;
        let (offset, len) = match (usize::try_from(offset), usize::try_from(len)) {
            (Ok(o), Ok(l)) => (o, l),
            _ => {
                return Err(PersistError::Truncated {
                    context: "section payload",
                })
            }
        };
        let payload = offset
            .checked_add(len)
            .and_then(|end| bytes.get(offset..end))
            .ok_or(PersistError::Truncated {
                context: "section payload",
            })?;
        let got = crc32(payload);
        if got != expected_crc {
            return Err(PersistError::ChecksumMismatch {
                section: id,
                expected: expected_crc,
                got,
            });
        }
        sections.push((id, offset, payload));
    }
    Ok(sections)
}

struct Meta {
    num_users: usize,
    num_tags: usize,
    num_resources: usize,
    num_assignments: usize,
    timings: PhaseTimings,
}

fn decode_meta(payload: &[u8]) -> Result<Meta, PersistError> {
    let mut d = Decoder::new(payload, SECTION_META);
    let num_users = d.usize()?;
    let num_tags = d.usize()?;
    let num_resources = d.usize()?;
    let num_assignments = d.usize()?;
    let mut phases = [Duration::ZERO; 5];
    for slot in &mut phases {
        *slot = Duration::from_nanos(d.u64()?);
    }
    d.finish()?;
    let [tensor_build, tucker, distances, clustering, indexing] = phases;
    Ok(Meta {
        num_users,
        num_tags,
        num_resources,
        num_assignments,
        timings: PhaseTimings {
            tensor_build,
            tucker,
            distances,
            clustering,
            indexing,
        },
    })
}

fn decode_names(
    d: &mut Decoder<'_>,
    expected: usize,
    what: &str,
) -> Result<Interner, PersistError> {
    // A name is at least its 4-byte length prefix.
    let n = d.len_prefix(4)?;
    if n != expected {
        return Err(d.err(format!(
            "{what} count {n} disagrees with meta count {expected}"
        )));
    }
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(d.string()?);
    }
    let interner = Interner::from_names(&names);
    if interner.len() != names.len() {
        return Err(d.err(format!("duplicate {what} names")));
    }
    Ok(interner)
}

fn decode_folksonomy(payload: &[u8], meta: &Meta) -> Result<Folksonomy, PersistError> {
    let mut d = Decoder::new(payload, SECTION_FOLKSONOMY);
    let users = decode_names(&mut d, meta.num_users, "user")?;
    let tags = decode_names(&mut d, meta.num_tags, "tag")?;
    let resources = decode_names(&mut d, meta.num_resources, "resource")?;
    let n = d.len_prefix(12)?;
    if n != meta.num_assignments {
        return Err(d.err(format!(
            "assignment count {n} disagrees with meta count {}",
            meta.num_assignments
        )));
    }
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        let u = widen(d.u32()?);
        let t = widen(d.u32()?);
        let r = widen(d.u32()?);
        if u >= users.len() || t >= tags.len() || r >= resources.len() {
            return Err(d.err(format!("assignment ({u}, {t}, {r}) references unknown ids")));
        }
        assignments.push(TagAssignment {
            user: UserId::from_index(u),
            tag: TagId::from_index(t),
            resource: ResourceId::from_index(r),
        });
    }
    d.finish()?;
    Ok(Folksonomy::from_parts(users, tags, resources, assignments))
}

fn decode_tucker(payload: &[u8]) -> Result<TuckerDecomposition, PersistError> {
    let mut d = Decoder::new(payload, SECTION_TUCKER);
    let j1 = d.usize()?;
    let j2 = d.usize()?;
    let j3 = d.usize()?;
    let n = j1
        .checked_mul(j2)
        .and_then(|x| x.checked_mul(j3))
        .ok_or_else(|| d.err("core dimensions overflow"))?;
    if n.checked_mul(8).is_none_or(|need| need > payload.len()) {
        return Err(d.err(format!("{j1}x{j2}x{j3} core exceeds payload")));
    }
    let mut core_data = Vec::with_capacity(n);
    for _ in 0..n {
        core_data.push(d.f64()?);
    }
    let core = DenseTensor3::from_vec(j1, j2, j3, core_data).map_err(|e| d.err(e.to_string()))?;
    let factors: [Matrix; 3] = [d.matrix()?, d.matrix()?, d.matrix()?];
    for (mode, (factor, j)) in factors.iter().zip([j1, j2, j3]).enumerate() {
        if factor.cols() != j {
            return Err(d.err(format!(
                "factor {} has {} columns, core expects {j}",
                mode + 1,
                factor.cols()
            )));
        }
    }
    let lambda2 = d.f64_vec()?;
    if lambda2.len() != j2 {
        return Err(d.err(format!("lambda2 length {} != J2 = {j2}", lambda2.len())));
    }
    let fit = d.f64()?;
    let iterations = d.usize()?;
    let fit_history = d.f64_vec()?;
    d.finish()?;
    Ok(TuckerDecomposition {
        core,
        factors,
        lambda2,
        fit,
        iterations,
        fit_history,
    })
}

fn decode_distances(payload: &[u8], num_tags: usize) -> Result<TagDistances, PersistError> {
    let mut d = Decoder::new(payload, SECTION_DISTANCES);
    let m = d.matrix()?;
    d.finish()?;
    if m.rows() != num_tags {
        return Err(PersistError::Malformed {
            section: SECTION_DISTANCES,
            detail: format!(
                "{}x{} distance matrix for {num_tags} tags",
                m.rows(),
                m.cols()
            ),
        });
    }
    TagDistances::from_matrix(m).map_err(|e| PersistError::Malformed {
        section: SECTION_DISTANCES,
        detail: e.to_string(),
    })
}

fn decode_concepts(payload: &[u8], num_tags: usize) -> Result<ConceptModel, PersistError> {
    let mut d = Decoder::new(payload, SECTION_CONCEPTS);
    let num_concepts = d.usize()?;
    // Concepts partition the tag set, so a genuine artifact always has
    // num_concepts <= num_tags; without this bound a hostile file could
    // declare 2^50 concepts and force a pathological allocation in
    // `ConceptModel::from_parts` below.
    if num_concepts > num_tags {
        return Err(d.err(format!("{num_concepts} concepts for {num_tags} tags")));
    }
    let sigma = d.f64()?;
    let n = d.len_prefix(8)?;
    if n != num_tags {
        return Err(d.err(format!("{n} assignments for {num_tags} tags")));
    }
    let mut assignments = Vec::with_capacity(n);
    for tag in 0..n {
        let c = d.usize()?;
        if c >= num_concepts {
            return Err(d.err(format!(
                "tag {tag} assigned to concept {c} of {num_concepts}"
            )));
        }
        assignments.push(c);
    }
    d.finish()?;
    Ok(ConceptModel::from_parts(assignments, num_concepts, sigma))
}

/// Converts raw LE bytes into an owned `Vec<T>` (bulk array read for the
/// portable load path). `bytes.len()` must be `count * size_of::<T>()`.
fn bulk_owned<T: Pod + LeScalar>(bytes: &[u8]) -> Vec<T> {
    bytes
        .chunks_exact(std::mem::size_of::<T>())
        .map(T::from_le_chunk)
        .collect()
}

/// LE decoding for the SoA and compressed-mirror scalar shapes.
trait LeScalar: Sized {
    fn from_le_chunk(chunk: &[u8]) -> Self;
}
// `bulk_owned` feeds these via `chunks_exact(size_of::<T>())`, so every
// chunk is full; the `map_or` defaults keep the parsing layer panic-free
// without an unreachable unwrap.
impl LeScalar for u8 {
    fn from_le_chunk(c: &[u8]) -> Self {
        c.first().copied().unwrap_or(0)
    }
}
impl LeScalar for f32 {
    fn from_le_chunk(c: &[u8]) -> Self {
        c.first_chunk::<4>().map_or(0.0, |c| f32::from_le_bytes(*c))
    }
}
impl LeScalar for u32 {
    fn from_le_chunk(c: &[u8]) -> Self {
        c.first_chunk::<4>().map_or(0, |c| u32::from_le_bytes(*c))
    }
}
impl LeScalar for u64 {
    fn from_le_chunk(c: &[u8]) -> Self {
        c.first_chunk::<8>().map_or(0, |c| u64::from_le_bytes(*c))
    }
}
impl LeScalar for f64 {
    fn from_le_chunk(c: &[u8]) -> Self {
        c.first_chunk::<8>().map_or(0.0, |c| f64::from_le_bytes(*c))
    }
}

fn decode_index_soa(
    payload: &[u8],
    file_offset: usize,
    owner: Option<&Arc<AlignedBytes>>,
    compressed_section: Option<(usize, &[u8])>,
    num_resources: usize,
    num_concepts: usize,
) -> Result<ConceptIndex, PersistError> {
    let err = |detail: String| PersistError::Malformed {
        section: SECTION_INDEX_SOA,
        detail,
    };
    if !file_offset.is_multiple_of(8) {
        return Err(PersistError::MisalignedSection {
            section: SECTION_INDEX_SOA,
            offset: file_offset as u64,
        });
    }
    if payload.len() < SOA_HEADER_FIELDS * 8 {
        return Err(err(format!(
            "payload of {} bytes is smaller than the {}-byte header",
            payload.len(),
            SOA_HEADER_FIELDS * 8
        )));
    }
    let field = |i: usize| le_u64(payload, i * 8).ok_or_else(|| err("header truncated".to_owned()));
    let to_usize = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| err(format!("{what} = {v} exceeds usize")))
    };
    let stored_resources = to_usize(field(0)?, "num_resources")?;
    let stored_concepts = to_usize(field(1)?, "num_concepts")?;
    let block_len = field(2)?;
    let rv_nnz = to_usize(field(3)?, "rv_nnz")?;
    let n_postings = to_usize(field(4)?, "n_postings")?;
    let n_blocks = to_usize(field(5)?, "n_blocks")?;
    if stored_resources != num_resources || stored_concepts != num_concepts {
        return Err(err(format!(
            "index is {stored_resources}x{stored_concepts}, model is {num_resources}x{num_concepts}"
        )));
    }
    if block_len != BLOCK_LEN as u64 {
        return Err(err(format!(
            "block length {block_len} != supported {BLOCK_LEN}"
        )));
    }
    let layout = soa_layout(num_resources, num_concepts, rv_nnz, n_postings, n_blocks)
        .ok_or_else(|| err("array layout overflows".to_owned()))?;
    if layout.total_len != payload.len() {
        return Err(err(format!(
            "payload is {} bytes, layout requires {}",
            payload.len(),
            layout.total_len
        )));
    }

    fn slab<T: Pod + LeScalar>(
        payload: &[u8],
        file_offset: usize,
        owner: Option<&Arc<AlignedBytes>>,
        span: ArraySpan,
    ) -> Result<Slab<T>, PersistError> {
        // The layout's `total_len == payload.len()` equality was checked
        // above, but carve with checked arithmetic anyway.
        let bytes = span
            .len
            .checked_mul(std::mem::size_of::<T>())
            .and_then(|n| span.offset.checked_add(n))
            .and_then(|end| payload.get(span.offset..end))
            .ok_or(PersistError::Truncated {
                context: "index array",
            })?;
        match owner {
            None => Ok(Slab::Owned(bulk_owned(bytes))),
            Some(arc) => Slab::borrowed(arc.clone(), file_offset + span.offset, span.len).ok_or(
                PersistError::MisalignedSection {
                    section: SECTION_INDEX_SOA,
                    offset: (file_offset + span.offset) as u64,
                },
            ),
        }
    }

    let idf: Slab<f64> = slab(payload, file_offset, owner, layout.idf)?;
    let resource_norms: Slab<f64> = slab(payload, file_offset, owner, layout.resource_norms)?;
    let rv_offsets: Slab<u64> = slab(payload, file_offset, owner, layout.rv_offsets)?;
    let rv_concepts: Slab<u32> = slab(payload, file_offset, owner, layout.rv_concepts)?;
    let rv_weights: Slab<f64> = slab(payload, file_offset, owner, layout.rv_weights)?;
    let post_offsets: Slab<u64> = slab(payload, file_offset, owner, layout.post_offsets)?;
    let post_ids: Slab<u32> = slab(payload, file_offset, owner, layout.post_ids)?;
    let post_scores: Slab<f64> = slab(payload, file_offset, owner, layout.post_scores)?;
    let block_offsets: Slab<u64> = slab(payload, file_offset, owner, layout.block_offsets)?;
    let block_max: Slab<f64> = slab(payload, file_offset, owner, layout.block_max)?;
    let max_impact: Slab<f64> = slab(payload, file_offset, owner, layout.max_impact)?;

    validate_index_arrays(
        SECTION_INDEX_SOA,
        num_resources,
        num_concepts,
        rv_nnz,
        n_postings,
        n_blocks,
        &rv_offsets,
        &rv_concepts,
        &rv_weights,
        &resource_norms,
        &post_offsets,
        &post_ids,
        &post_scores,
        &block_offsets,
        &block_max,
        &max_impact,
    )?;

    // The compressed mirror, if present, is decoded only after the exact
    // arrays passed validation: its own validator proves it honest
    // *against* them (decoded ids bitwise-equal, dequantized impacts
    // upper-bounding), so a hostile mirror can never make the compressed
    // strategy disagree with the exact ones.
    let compressed = compressed_section
        .map(|(off, p)| {
            let c = decode_index_compressed(p, off, owner)?;
            validate_compressed_postings(
                &c,
                num_concepts,
                &post_offsets,
                &post_ids,
                &post_scores,
                n_blocks,
            )?;
            Ok::<_, PersistError>(c)
        })
        .transpose()?;

    Ok(ConceptIndex::from_soa_parts(
        num_resources,
        num_concepts,
        idf,
        resource_norms,
        rv_offsets,
        rv_concepts,
        rv_weights,
        post_offsets,
        post_ids,
        post_scores,
        block_offsets,
        block_max,
        max_impact,
        compressed,
    ))
}

/// Decodes the compressed posting mirror's header and arrays (owned or
/// borrowed from the file buffer). Structural honesty against the exact
/// posting arrays is checked separately by
/// [`validate_compressed_postings`].
fn decode_index_compressed(
    payload: &[u8],
    file_offset: usize,
    owner: Option<&Arc<AlignedBytes>>,
) -> Result<CompressedPostings, PersistError> {
    let err = |detail: String| PersistError::Malformed {
        section: SECTION_INDEX_COMPRESSED,
        detail,
    };
    if !file_offset.is_multiple_of(8) {
        return Err(PersistError::MisalignedSection {
            section: SECTION_INDEX_COMPRESSED,
            offset: file_offset as u64,
        });
    }
    if payload.len() < COMPRESSED_HEADER_FIELDS * 8 {
        return Err(err(format!(
            "payload of {} bytes is smaller than the {}-byte header",
            payload.len(),
            COMPRESSED_HEADER_FIELDS * 8
        )));
    }
    let field = |i: usize| le_u64(payload, i * 8).ok_or_else(|| err("header truncated".to_owned()));
    let to_usize = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| err(format!("{what} = {v} exceeds usize")))
    };
    let n_blocks = to_usize(field(0)?, "n_blocks")?;
    let n_postings = to_usize(field(1)?, "n_postings")?;
    let packed_len = to_usize(field(2)?, "packed_len")?;
    let block_len = field(3)?;
    if block_len != BLOCK_LEN as u64 {
        return Err(err(format!(
            "block length {block_len} != supported {BLOCK_LEN}"
        )));
    }
    if packed_len < 8 {
        return Err(err(format!(
            "packed id stream of {packed_len} bytes lacks the 8 guard bytes"
        )));
    }
    let layout = compressed_layout(n_blocks, n_postings, packed_len)
        .ok_or_else(|| err("array layout overflows".to_owned()))?;
    if layout.total_len != payload.len() {
        return Err(err(format!(
            "payload is {} bytes, layout requires {}",
            payload.len(),
            layout.total_len
        )));
    }

    fn slab<T: Pod + LeScalar>(
        payload: &[u8],
        file_offset: usize,
        owner: Option<&Arc<AlignedBytes>>,
        span: ArraySpan,
    ) -> Result<Slab<T>, PersistError> {
        // The layout's `total_len == payload.len()` equality was checked
        // above, but carve with checked arithmetic anyway.
        let bytes = span
            .len
            .checked_mul(std::mem::size_of::<T>())
            .and_then(|n| span.offset.checked_add(n))
            .and_then(|end| payload.get(span.offset..end))
            .ok_or(PersistError::Truncated {
                context: "index array",
            })?;
        match owner {
            None => Ok(Slab::Owned(bulk_owned(bytes))),
            Some(arc) => Slab::borrowed(arc.clone(), file_offset + span.offset, span.len).ok_or(
                PersistError::MisalignedSection {
                    section: SECTION_INDEX_COMPRESSED,
                    offset: (file_offset + span.offset) as u64,
                },
            ),
        }
    }

    Ok(CompressedPostings {
        blk_pack_start: slab(payload, file_offset, owner, layout.blk_pack_start)?,
        blk_base: slab(payload, file_offset, owner, layout.blk_base)?,
        blk_scale: slab(payload, file_offset, owner, layout.blk_scale)?,
        blk_offset: slab(payload, file_offset, owner, layout.blk_offset)?,
        blk_bits: slab(payload, file_offset, owner, layout.blk_bits)?,
        quant: slab(payload, file_offset, owner, layout.quant)?,
        packed_ids: slab(payload, file_offset, owner, layout.packed_ids)?,
    })
}

// xtask:hostile-input:end — the validators below run on typed arrays
// whose lengths the layout equations already pinned down; their
// in-bounds index arithmetic is proven by the exhaustive byte-flip
// sweep in tests/persist_roundtrip.rs rather than by the lexical lint.

/// Proves a restored compressed mirror honest against the (already
/// validated) exact posting arrays. Order matters: the packed-run chain
/// is verified first, so the id decode below can never index out of
/// bounds; then every decoded id must equal its exact counterpart
/// bitwise and every dequantized impact must upper-bound its exact
/// impact — exactly the two properties the `CompressedBlockMax`
/// strategy's bit-identity argument rests on. A mirror that fails any
/// check is rejected as [`PersistError::Malformed`]; it can never serve.
fn validate_compressed_postings(
    c: &CompressedPostings,
    num_concepts: usize,
    post_offsets: &[u64],
    post_ids: &[u32],
    post_scores: &[f64],
    n_blocks_expected: usize,
) -> Result<(), PersistError> {
    let err = |detail: String| PersistError::Malformed {
        section: SECTION_INDEX_COMPRESSED,
        detail,
    };
    if c.num_blocks() != n_blocks_expected {
        return Err(err(format!(
            "{} blocks, index has {n_blocks_expected}",
            c.num_blocks()
        )));
    }
    if c.quant.len() != post_ids.len() {
        return Err(err(format!(
            "{} quantized impacts for {} postings",
            c.quant.len(),
            post_ids.len()
        )));
    }
    let packed_used = c.packed_ids.len() - 8;
    if c.blk_pack_start[0] != 0 {
        return Err(err("packed runs must start at 0".to_owned()));
    }
    // Pass 1: the packed-run chain. Each block's run length must be
    // exactly ceil(len·bits / 8) bytes, which also forces monotonicity.
    let mut blk = 0usize;
    for l in 0..num_concepts {
        let lo = post_offsets[l] as usize;
        let hi = post_offsets[l + 1] as usize;
        let mut b = lo;
        while b < hi {
            let e = (b + BLOCK_LEN).min(hi);
            let bits = c.blk_bits[blk] as usize;
            if bits > 32 {
                return Err(err(format!("block {blk} packed at {bits} bits")));
            }
            let expect = ((e - b) * bits).div_ceil(8) as u64;
            if c.blk_pack_start[blk + 1] != c.blk_pack_start[blk] + expect {
                return Err(err(format!(
                    "block {blk} packed run is {} bytes, {bits}-bit packing of {} ids needs {expect}",
                    c.blk_pack_start[blk + 1].wrapping_sub(c.blk_pack_start[blk]),
                    e - b
                )));
            }
            blk += 1;
            b = e;
        }
    }
    if c.blk_pack_start[blk] != packed_used as u64 {
        return Err(err(format!(
            "packed runs end at {}, stream has {packed_used} used bytes",
            c.blk_pack_start[blk]
        )));
    }
    if c.packed_ids[packed_used..].iter().any(|&g| g != 0) {
        return Err(err("nonzero guard bytes".to_owned()));
    }
    // Pass 2: decoded ids must equal the exact ids bitwise, and every
    // dequantized impact must upper-bound its exact impact, evaluated in
    // f64 exactly as the query path evaluates it.
    let mut ids = [0u32; BLOCK_LEN];
    let mut blk = 0usize;
    for l in 0..num_concepts {
        let lo = post_offsets[l] as usize;
        let hi = post_offsets[l + 1] as usize;
        let mut b = lo;
        while b < hi {
            let e = (b + BLOCK_LEN).min(hi);
            c.decode_block_ids(blk, e - b, &mut ids);
            if ids[..e - b] != post_ids[b..e] {
                return Err(err(format!("block {blk} ids decode differently")));
            }
            let scale = c.blk_scale[blk];
            let offset = c.blk_offset[blk];
            if !scale.is_finite() || !offset.is_finite() || scale < 0.0 {
                return Err(err(format!(
                    "block {blk} quantization scale {scale} / offset {offset} out of range"
                )));
            }
            for (j, &exact) in post_scores.iter().enumerate().take(e).skip(b) {
                let bound = offset as f64 + scale as f64 * c.quant[j] as f64;
                if bound < exact {
                    return Err(err(format!(
                        "posting {j} dequantized bound {bound} below exact impact {exact}"
                    )));
                }
            }
            blk += 1;
            b = e;
        }
    }
    Ok(())
}

/// Structural validation of the index arrays: offset monotonicity, id
/// ranges, per-list impact order (the pruning loops' exactness relies on
/// it), block geometry, block-max / max-impact consistency with the score
/// arrays, and posting ↔ resource-vector cross-consistency (the block-max
/// engine's candidate-side updates recompute `w/‖r‖` from the vectors, so
/// the two representations must agree bit for bit). A CRC-valid but
/// semantically hostile file fails here and can therefore never misrank
/// silently.
#[allow(clippy::too_many_arguments)]
fn validate_index_arrays(
    section: u32,
    num_resources: usize,
    num_concepts: usize,
    rv_nnz: usize,
    n_postings: usize,
    n_blocks: usize,
    rv_offsets: &[u64],
    rv_concepts: &[u32],
    rv_weights: &[f64],
    resource_norms: &[f64],
    post_offsets: &[u64],
    post_ids: &[u32],
    post_scores: &[f64],
    block_offsets: &[u64],
    block_max: &[f64],
    max_impact: &[f64],
) -> Result<(), PersistError> {
    let err = |detail: String| PersistError::Malformed { section, detail };
    let check_offsets = |offsets: &[u64], total: usize, what: &str| -> Result<(), PersistError> {
        if offsets.first() != Some(&0) {
            return Err(err(format!("{what} offsets must start at 0")));
        }
        if offsets.last() != Some(&(total as u64)) {
            return Err(err(format!(
                "{what} offsets must end at {total}, found {:?}",
                offsets.last()
            )));
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return Err(err(format!(
                    "{what} offsets decrease ({} > {})",
                    w[0], w[1]
                )));
            }
        }
        Ok(())
    };
    check_offsets(rv_offsets, rv_nnz, "resource-vector")?;
    check_offsets(post_offsets, n_postings, "posting")?;
    check_offsets(block_offsets, n_blocks, "block")?;

    if let Some(&l) = rv_concepts.iter().find(|&&l| l as usize >= num_concepts) {
        return Err(err(format!(
            "resource vector references unknown concept {l} of {num_concepts}"
        )));
    }
    if let Some(&r) = post_ids.iter().find(|&&r| r as usize >= num_resources) {
        return Err(err(format!(
            "posting references unknown resource {r} of {num_resources}"
        )));
    }

    // Resource vectors must be strictly ascending in concept id: the
    // candidate-side update path binary-searches them.
    for r in 0..num_resources {
        let lo = rv_offsets[r] as usize;
        let hi = rv_offsets[r + 1] as usize;
        for j in lo + 1..hi {
            if rv_concepts[j - 1] >= rv_concepts[j] {
                return Err(err(format!(
                    "resource {r} vector concepts not strictly ascending"
                )));
            }
        }
    }
    // Every posting of a resource must correspond to one of its vector
    // entries with the bitwise-identical normalized impact; together with
    // the count equality below this makes postings ↔ vector entries a
    // bijection for resources with a positive norm, so candidate-side
    // updates and posting-list scans are interchangeable.
    let expected_postings: u64 = (0..num_resources)
        .filter(|&r| resource_norms[r] > 0.0)
        .map(|r| rv_offsets[r + 1] - rv_offsets[r])
        .sum();
    if expected_postings != n_postings as u64 {
        return Err(err(format!(
            "{n_postings} postings for {expected_postings} vector entries of positive-norm resources"
        )));
    }

    for l in 0..num_concepts {
        let lo = post_offsets[l] as usize;
        let hi = post_offsets[l + 1] as usize;
        let blo = block_offsets[l] as usize;
        let bhi = block_offsets[l + 1] as usize;
        if bhi - blo != (hi - lo).div_ceil(BLOCK_LEN) {
            return Err(err(format!(
                "concept {l} has {} postings but {} blocks",
                hi - lo,
                bhi - blo
            )));
        }
        // Impact order: score descending, ties by ascending resource id
        // (the shared ranking tie-break). NaN scores fail both branches.
        for j in lo + 1..hi {
            let ordered = post_scores[j - 1] > post_scores[j]
                || (post_scores[j - 1] == post_scores[j] && post_ids[j - 1] < post_ids[j]);
            if !ordered {
                return Err(err(format!(
                    "concept {l} postings out of impact order at position {}",
                    j - lo
                )));
            }
        }
        // Block maxima must equal the head impact of their block (lists
        // are descending), and the list max must equal the first impact.
        for (bi, b) in (blo..bhi).enumerate() {
            let head = post_scores[lo + bi * BLOCK_LEN];
            if block_max[b].to_bits() != head.to_bits() {
                return Err(err(format!(
                    "concept {l} block {bi} max {} disagrees with head impact {head}",
                    block_max[b]
                )));
            }
        }
        let expect_max = if hi > lo { post_scores[lo] } else { 0.0 };
        if max_impact[l].to_bits() != expect_max.to_bits() {
            return Err(err(format!(
                "concept {l} max impact {} disagrees with list head {expect_max}",
                max_impact[l]
            )));
        }
        // Posting ↔ vector cross-check (see above).
        for j in lo..hi {
            let r = post_ids[j] as usize;
            let rlo = rv_offsets[r] as usize;
            let rhi = rv_offsets[r + 1] as usize;
            let p = match rv_concepts[rlo..rhi].binary_search(&(l as u32)) {
                Ok(p) => p,
                Err(_) => {
                    return Err(err(format!(
                        "concept {l} posts resource {r} whose vector lacks the concept"
                    )))
                }
            };
            let norm = resource_norms[r];
            // `norm > 0.0` is false for NaN too; both must be rejected.
            if norm.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(err(format!(
                    "posted resource {r} has non-positive norm {norm}"
                )));
            }
            let recomputed = rv_weights[rlo + p] / norm;
            if recomputed.to_bits() != post_scores[j].to_bits() {
                return Err(err(format!(
                    "concept {l} posting for resource {r}: impact {} disagrees with \
                     vector-derived {recomputed}",
                    post_scores[j]
                )));
            }
        }
    }
    Ok(())
}

/// Legacy format-v1 index section: per-posting `(u32, f64)` pair lists.
/// Decoded into the same SoA in-memory layout (block maxima derived from
/// the sorted lists).
// xtask:hostile-input:begin — v1 artifact decoding, untrusted bytes.
fn decode_index_v1(
    payload: &[u8],
    num_resources: usize,
    num_concepts: usize,
) -> Result<ConceptIndex, PersistError> {
    let mut d = Decoder::new(payload, SECTION_INDEX_V1);
    let stored_resources = d.usize()?;
    let stored_concepts = d.usize()?;
    if stored_resources != num_resources || stored_concepts != num_concepts {
        return Err(d.err(format!(
            "index is {stored_resources}x{stored_concepts}, model is {num_resources}x{num_concepts}"
        )));
    }
    let n_idf = d.len_prefix(8)?;
    if n_idf != num_concepts {
        return Err(d.err(format!("{n_idf} idf entries for {num_concepts} concepts")));
    }
    let mut idf = Vec::with_capacity(n_idf);
    for _ in 0..n_idf {
        idf.push(d.f64()?);
    }
    let n_res = d.len_prefix(8)?;
    if n_res != num_resources {
        return Err(d.err(format!("{n_res} vectors for {num_resources} resources")));
    }
    let mut resource_vectors = Vec::with_capacity(n_res);
    let mut resource_norms = Vec::with_capacity(n_res);
    for r in 0..n_res {
        let vector = d.pairs()?;
        if let Some(&(l, _)) = vector.iter().find(|&&(l, _)| widen(l) >= num_concepts) {
            return Err(d.err(format!("resource {r} references unknown concept {l}")));
        }
        resource_vectors.push(vector);
        resource_norms.push(d.f64()?);
    }
    let n_post = d.len_prefix(8)?;
    if n_post != num_concepts {
        return Err(d.err(format!(
            "{n_post} posting lists for {num_concepts} concepts"
        )));
    }
    let mut postings = Vec::with_capacity(n_post);
    for l in 0..n_post {
        let list = d.pairs()?;
        if let Some(&(r, _)) = list.iter().find(|&&(r, _)| widen(r) >= num_resources) {
            return Err(d.err(format!("concept {l} posts unknown resource {r}")));
        }
        let stored_max = d.f64()?;
        let head = list.first().map_or(0.0, |&(_, w)| w);
        if stored_max.to_bits() != head.to_bits() {
            return Err(d.err(format!(
                "concept {l} stored max impact {stored_max} disagrees with list head {head}"
            )));
        }
        postings.push(list);
    }
    d.finish()?;
    let index = ConceptIndex::from_lists(
        num_resources,
        num_concepts,
        idf,
        resource_vectors,
        resource_norms,
        postings,
    );
    // A v1 file carries the same semantic obligations as a v2 file (the
    // engine it feeds is the same); run the full validation on the
    // assembled arrays. Block geometry is correct by construction here,
    // but impact order and posting ↔ vector consistency are not.
    let a = index.as_arrays();
    validate_index_arrays(
        SECTION_INDEX_V1,
        num_resources,
        num_concepts,
        a.rv_concepts.len(),
        a.post_ids.len(),
        a.block_max.len(),
        a.rv_offsets,
        a.rv_concepts,
        a.rv_weights,
        a.resource_norms,
        a.post_offsets,
        a.post_ids,
        a.post_scores,
        a.block_offsets,
        a.block_max,
        a.max_impact,
    )?;
    Ok(index)
}
// xtask:hostile-input:end — tests below build their own trusted bytes.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CubeLsiConfig;
    use cubelsi_folksonomy::store::figure2_example;

    fn built() -> (Folksonomy, CubeLsi) {
        let f = figure2_example();
        let cfg = CubeLsiConfig {
            core_dims: Some((3, 3, 2)),
            num_concepts: Some(2),
            sigma: Some(1.0),
            max_als_iters: 30,
            als_fit_tol: 1e-10,
            ..Default::default()
        };
        let model = CubeLsi::build(&f, &cfg).unwrap();
        (f, model)
    }

    /// Format-v1 encoder for the legacy index section (per-posting
    /// pairs), used to synthesize v1 artifacts for the back-compat test.
    fn encode_index_v1(ix: &ConceptIndex) -> Vec<u8> {
        let mut e = Encoder::default();
        e.put_usize(ix.num_resources());
        e.put_usize(ix.num_concepts());
        e.put_usize(ix.num_concepts());
        for l in 0..ix.num_concepts() {
            e.put_f64(ix.idf(l));
        }
        e.put_usize(ix.num_resources());
        for r in 0..ix.num_resources() {
            let v = ix.resource_vector(r);
            e.put_usize(v.len());
            for (l, w) in v.iter() {
                e.put_u32(l);
                e.put_f64(w);
            }
            e.put_f64(ix.resource_norm(r));
        }
        e.put_usize(ix.num_concepts());
        for l in 0..ix.num_concepts() {
            let p = ix.postings(l);
            e.put_usize(p.len());
            for (r, w) in p.iter() {
                e.put_u32(r);
                e.put_f64(w);
            }
            e.put_f64(ix.max_impact(l));
        }
        e.buf
    }

    fn save_to_vec_v1(model: &CubeLsi, folksonomy: &Folksonomy) -> Vec<u8> {
        assemble_file(
            1,
            vec![
                (SECTION_META, encode_meta(model, folksonomy)),
                (SECTION_FOLKSONOMY, encode_folksonomy(folksonomy)),
                (SECTION_TUCKER, encode_tucker(model.decomposition())),
                (SECTION_DISTANCES, encode_distances(model.distances())),
                (SECTION_CONCEPTS, encode_concepts(model.concepts())),
                (SECTION_INDEX_V1, encode_index_v1(model.index())),
            ],
        )
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (f, model) = built();
        let bytes = save_to_vec(&model, &f);
        let loaded = load_from_bytes(&bytes).unwrap();

        assert_eq!(loaded.folksonomy.stats(), f.stats());
        assert_eq!(
            loaded.model.concepts().assignments(),
            model.concepts().assignments()
        );
        assert_eq!(loaded.model.concepts().sigma(), model.concepts().sigma());
        assert_eq!(loaded.model.decomposition().fit, model.decomposition().fit);
        assert_eq!(
            loaded.model.decomposition().lambda2,
            model.decomposition().lambda2
        );
        assert!(loaded
            .model
            .distances()
            .matrix()
            .approx_eq(model.distances().matrix(), 0.0));
        assert_eq!(loaded.model.timings().total(), model.timings().total());
        assert_eq!(loaded.model.num_users(), model.num_users());
        assert_eq!(loaded.model.num_resources(), model.num_resources());
        assert!(!loaded.model.index().is_zero_copy());

        // Search results must be bit-identical, by name and by id.
        for name in ["folk", "people", "laptop"] {
            let a = model.search(&[name], 0);
            let b = loaded.model.search(&[name], 0);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.resource, y.resource);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn zero_copy_round_trip_matches_owned() {
        let (f, model) = built();
        let bytes = save_to_vec(&model, &f);
        let buf = Arc::new(AlignedBytes::from_bytes(&bytes));
        let zc = load_zero_copy(buf).unwrap();
        assert!(zc.model.index().is_zero_copy(), "hot arrays must borrow");
        let owned = load_from_bytes(&bytes).unwrap();
        for name in ["folk", "people", "laptop"] {
            let a = owned.model.search(&[name], 0);
            let b = zc.model.search(&[name], 0);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.resource, y.resource);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn compressed_artifacts_round_trip_and_stay_bit_identical() {
        let (f, model) = built();
        let plain = save_to_vec(&model, &f);
        let compressed = save_to_vec_with(&model, &f, true);
        // The default path stays format v2 byte-for-byte (older
        // deployments keep reading fresh uncompressed artifacts); only
        // the compressed path stamps v3.
        assert_eq!(u32::from_le_bytes(plain[8..12].try_into().unwrap()), 2);
        assert_eq!(plain, save_to_vec_with(&model, &f, false));
        assert_eq!(
            u32::from_le_bytes(compressed[8..12].try_into().unwrap()),
            FORMAT_VERSION
        );

        let baseline = load_from_bytes(&plain).unwrap();
        let owned = load_from_bytes(&compressed).unwrap();
        let zc = load_zero_copy(Arc::new(AlignedBytes::from_bytes(&compressed))).unwrap();
        assert!(zc.model.index().is_zero_copy());
        assert!(
            zc.model.index().compressed().packed_ids.is_borrowed(),
            "the compressed mirror must serve zero-copy too"
        );
        assert!(!owned.model.index().compressed().packed_ids.is_borrowed());
        // The restored mirror is the same mirror the uncompressed load
        // derives (compression is deterministic), so every strategy sees
        // identical bytes regardless of artifact flavor.
        assert_eq!(
            &*owned.model.index().compressed().quant,
            &*baseline.model.index().compressed().quant
        );
        assert_eq!(
            &*owned.model.index().compressed().packed_ids,
            &*baseline.model.index().compressed().packed_ids
        );
        for name in ["folk", "people", "laptop"] {
            let a = baseline.model.search(&[name], 0);
            for m in [&owned.model, &zc.model] {
                let b = m.search(&[name], 0);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.resource, y.resource);
                    assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
            }
        }
    }

    #[test]
    fn format_v1_artifacts_still_load() {
        let (f, model) = built();
        let v1 = save_to_vec_v1(&model, &f);
        assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
        let loaded = load_from_bytes(&v1).unwrap();
        for name in ["folk", "people", "laptop"] {
            let a = model.search(&[name], 0);
            let b = loaded.model.search(&[name], 0);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.resource, y.resource);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
        // A v1 artifact also loads zero-copy-requested (falling back to
        // owned arrays — there is nothing aligned to borrow).
        let buf = Arc::new(AlignedBytes::from_bytes(&v1));
        let zc = load_zero_copy(buf).unwrap();
        assert!(!zc.model.index().is_zero_copy());
    }

    /// The exhaustive hostile-byte sweep for the legacy decoder: a v1
    /// artifact (tiny figure-2 corpus) with one byte flipped at every
    /// offset must load to a typed error or to a bit-identical engine —
    /// never panic. Companion to the v2/v3 sweep in
    /// `tests/persist_roundtrip.rs`; this one lives here because only the
    /// test module can synthesize v1 bytes.
    #[test]
    fn exhaustive_single_byte_flips_never_panic_v1() {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let (f, model) = built();
        let v1 = save_to_vec_v1(&model, &f);
        let queries = ["folk", "people", "laptop"];
        let expect: Vec<_> = queries.iter().map(|q| model.search(&[*q], 0)).collect();
        for pos in 0..v1.len() {
            let mut bad = v1.clone();
            bad[pos] ^= 1u8 << (pos % 8);
            let outcome = catch_unwind(AssertUnwindSafe(|| load_from_bytes(&bad)))
                .unwrap_or_else(|_| panic!("v1 loader panicked at offset {pos}"));
            match outcome {
                Err(e) => assert!(!e.to_string().is_empty(), "offset {pos}: empty error"),
                Ok(loaded) => {
                    for (q, expect) in queries.iter().zip(&expect) {
                        let got = loaded.model.search(&[*q], 0);
                        assert_eq!(got.len(), expect.len(), "offset {pos}: count diverged");
                        for (g, e) in got.iter().zip(expect.iter()) {
                            assert_eq!(
                                (g.resource, g.score.to_bits()),
                                (e.resource, e.score.to_bits()),
                                "offset {pos}: ranking diverged"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sections_are_eight_byte_aligned() {
        let (f, model) = built();
        let bytes = save_to_vec(&model, &f);
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        for i in 0..count {
            let e = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let offset = u64::from_le_bytes(bytes[e + 4..e + 12].try_into().unwrap());
            assert_eq!(offset % 8, 0, "section {i} payload misaligned");
        }
    }

    #[test]
    fn save_load_via_path() {
        let (f, model) = built();
        let path = std::env::temp_dir().join(format!(
            "cubelsi-persist-unit-{}.cubelsi",
            std::process::id()
        ));
        save_to_path(&path, &model, &f).unwrap();
        let loaded = load_from_path(&path).unwrap();
        let zc = load_from_path_zero_copy(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.folksonomy.stats(), f.stats());
        assert_eq!(zc.folksonomy.stats(), f.stats());
        assert!(zc.model.index().is_zero_copy());
    }

    #[test]
    fn empty_file_is_truncated_not_panic() {
        assert!(matches!(
            load_from_bytes(&[]),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn missing_section_reported() {
        let (f, model) = built();
        let bytes = save_to_vec(&model, &f);
        // Rewrite the first table entry's id to an unknown value: META goes
        // missing while its payload stays CRC-valid.
        let mut bad = bytes.clone();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&0xFFu32.to_le_bytes());
        assert!(matches!(
            load_from_bytes(&bad),
            Err(PersistError::MissingSection(SECTION_META))
        ));
    }

    #[test]
    fn hostile_concept_count_is_rejected_before_allocation() {
        // A CRC-valid artifact declaring 2^50 concepts must fail with a
        // typed error, not abort in a pathological `vec![...; 2^50]`.
        let (f, model) = built();
        let mut bytes = save_to_vec(&model, &f);
        // Locate the CONCEPTS section via the table, patch its first
        // field (num_concepts) and re-record the payload CRC.
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let entry = (0..count)
            .map(|i| HEADER_LEN + i * TABLE_ENTRY_LEN)
            .find(|&e| u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == SECTION_CONCEPTS)
            .expect("concepts section present");
        let offset = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap()) as usize;
        bytes[offset..offset + 8].copy_from_slice(&(1u64 << 50).to_le_bytes());
        let crc = crc32(&bytes[offset..offset + len]);
        bytes[entry + 20..entry + 24].copy_from_slice(&crc.to_le_bytes());
        match load_from_bytes(&bytes) {
            Err(PersistError::Malformed { section, .. }) => {
                assert_eq!(section, SECTION_CONCEPTS);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn hostile_soa_counts_are_rejected_before_allocation() {
        // Patch the SoA header's n_postings to 2^50: layout total no
        // longer matches the payload length → typed error, no allocation.
        let (f, model) = built();
        let mut bytes = save_to_vec(&model, &f);
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let entry = (0..count)
            .map(|i| HEADER_LEN + i * TABLE_ENTRY_LEN)
            .find(|&e| u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == SECTION_INDEX_SOA)
            .expect("SoA index section present");
        let offset = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap()) as usize;
        bytes[offset + 32..offset + 40].copy_from_slice(&(1u64 << 50).to_le_bytes());
        let crc = crc32(&bytes[offset..offset + len]);
        bytes[entry + 20..entry + 24].copy_from_slice(&crc.to_le_bytes());
        match load_from_bytes(&bytes) {
            Err(PersistError::Malformed { section, .. }) => {
                assert_eq!(section, SECTION_INDEX_SOA);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = PersistError::ChecksumMismatch {
            section: 3,
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("section 3"));
        let e = PersistError::UnsupportedVersion {
            found: 9,
            supported: FORMAT_VERSION,
        };
        assert!(e.to_string().contains('9'));
        let e = PersistError::MisalignedSection {
            section: SECTION_INDEX_SOA,
            offset: 1234,
        };
        assert!(e.to_string().contains("1234"));
    }
}
