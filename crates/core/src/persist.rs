//! Persistent model artifacts: versioned binary save/load of a complete
//! built engine.
//!
//! CubeLSI's entire value proposition (Table V vs Table VI of the paper)
//! is that the offline component — tensor build → Tucker → Theorem-1/2
//! distances → spectral concepts → index — is expensive while online
//! serving is cheap. A production deployment therefore builds the model
//! *once*, persists it, and serves queries from the loaded artifact. This
//! module provides that artifact: a single self-contained binary file
//! holding the cleaned [`Folksonomy`] (interned name tables + assignment
//! set), the [`TuckerDecomposition`], the purified [`TagDistances`], the
//! distilled [`ConceptModel`], the impact-ordered [`ConceptIndex`] with
//! its MaxScore metadata, and the offline [`PhaseTimings`].
//!
//! # Format (`.cubelsi`)
//!
//! Everything is little-endian; no external serialization crates are used.
//!
//! ```text
//! header   8 B  magic             = "CUBELSI\0"
//!          4 B  format version    (u32, currently 1)
//!          4 B  section count     (u32)
//! table    per section, 24 B:
//!          4 B  section id        (u32, see SECTION_* constants)
//!          8 B  payload offset    (u64, absolute file offset)
//!          8 B  payload length    (u64, bytes)
//!          4 B  CRC-32 (IEEE)     of the payload bytes
//! payload  the section payloads, contiguous, in table order
//! ```
//!
//! Within a section, integers are `u32`/`u64` LE, floats are `f64` LE bit
//! patterns (round-tripping exactly, NaN payloads included), strings are
//! `u32` byte length + UTF-8 bytes, and sequences are a `u64` count
//! followed by the elements.
//!
//! # Guarantees
//!
//! * **Bit-identical serving.** Every query-relevant structure (postings
//!   order, norms, idf, concept assignment, tag-name lookup) is restored
//!   verbatim, so a loaded engine's [`CubeLsi::search_ids`] output —
//!   scores, order, and tie-breaks — is bit-for-bit identical to the
//!   engine that was saved. Enforced by the `persist_roundtrip`
//!   integration tests over randomized corpora.
//! * **No panics on bad input.** Corrupt, truncated, or
//!   version-mismatched files return a typed [`PersistError`]; every
//!   length is bounds-checked before allocation and every id is validated
//!   before it can index anything.

use std::io::{Read, Write};
use std::path::Path;
use std::time::Duration;

use cubelsi_folksonomy::{Folksonomy, Interner, ResourceId, TagAssignment, TagId, UserId};
use cubelsi_linalg::Matrix;
use cubelsi_tensor::{DenseTensor3, TuckerDecomposition};

use crate::concepts::ConceptModel;
use crate::distance::TagDistances;
use crate::index::ConceptIndex;
use crate::pipeline::{CubeLsi, PhaseTimings};

/// File magic: identifies a CubeLSI artifact regardless of extension.
pub const MAGIC: [u8; 8] = *b"CUBELSI\0";

/// Current artifact format version. Bump on any layout change; readers
/// reject files from the future with [`PersistError::UnsupportedVersion`].
pub const FORMAT_VERSION: u32 = 1;

const SECTION_META: u32 = 1;
const SECTION_FOLKSONOMY: u32 = 2;
const SECTION_TUCKER: u32 = 3;
const SECTION_DISTANCES: u32 = 4;
const SECTION_CONCEPTS: u32 = 5;
const SECTION_INDEX: u32 = 6;

const HEADER_LEN: usize = 16;
const TABLE_ENTRY_LEN: usize = 24;

/// Errors raised while saving or loading an artifact. Loading never
/// panics: every failure mode of a hostile or damaged file maps to one of
/// these variants.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure (open, read, write).
    Io(std::io::Error),
    /// The file does not start with the CubeLSI magic bytes.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Newest version this build can read.
        supported: u32,
    },
    /// The file ends before the advertised data (header, table, or a
    /// section payload extends past EOF).
    Truncated {
        /// What was being read when the file ran out.
        context: &'static str,
    },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch {
        /// Section id whose payload is damaged.
        section: u32,
        /// CRC recorded in the section table.
        expected: u32,
        /// CRC computed over the payload actually present.
        got: u32,
    },
    /// A required section is absent from the section table.
    MissingSection(u32),
    /// A section decoded to structurally invalid data (bad lengths,
    /// out-of-range ids, non-UTF-8 names, …).
    Malformed {
        /// Section id that failed to decode.
        section: u32,
        /// Human-readable description of the defect.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadMagic => {
                write!(f, "not a CubeLSI artifact (bad magic bytes)")
            }
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is newer than the supported version {supported}"
            ),
            PersistError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            PersistError::ChecksumMismatch {
                section,
                expected,
                got,
            } => write!(
                f,
                "section {section} corrupt: CRC-32 {got:#010x} != recorded {expected:#010x}"
            ),
            PersistError::MissingSection(id) => {
                write!(f, "artifact is missing required section {id}")
            }
            PersistError::Malformed { section, detail } => {
                write!(f, "section {section} malformed: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// A loaded artifact: the serving-ready engine plus the folksonomy it was
/// built over (needed online to resolve query tag names and to print
/// result resource names).
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The restored engine; answers queries bit-identically to the one
    /// that was saved.
    pub model: CubeLsi,
    /// The cleaned corpus the model was built from (name tables +
    /// assignment set).
    pub folksonomy: Folksonomy,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, computed at compile time.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of a byte slice — the per-section integrity check.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }
    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_usize(xs.len());
        for &x in xs {
            self.put_f64(x);
        }
    }
    /// Sparse `(u32 id, f64 weight)` pair list — the posting / tf-idf
    /// vector element type.
    fn put_pairs(&mut self, pairs: &[(u32, f64)]) {
        self.put_usize(pairs.len());
        for &(id, w) in pairs {
            self.put_u32(id);
            self.put_f64(w);
        }
    }
    fn put_matrix(&mut self, m: &Matrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &x in m.as_slice() {
            self.put_f64(x);
        }
    }
}

/// Bounds-checked reader over one section's payload. Every accessor
/// returns [`PersistError::Malformed`] instead of panicking when the
/// payload runs short, and collection reads verify that the advertised
/// element count fits in the remaining bytes *before* allocating, so a
/// corrupt length can neither panic nor trigger a pathological
/// allocation.
struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    section: u32,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8], section: u32) -> Self {
        Decoder {
            buf,
            pos: 0,
            section,
        }
    }

    fn err(&self, detail: impl Into<String>) -> PersistError {
        PersistError::Malformed {
            section: self.section,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(format!(
                "payload exhausted at offset {} (need {n} more bytes of {})",
                self.pos,
                self.buf.len()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, PersistError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("value {v} exceeds usize")))
    }

    /// A length prefix for elements of `elem_size` bytes each, validated
    /// against the bytes actually remaining.
    fn len_prefix(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.usize()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(elem_size).is_none_or(|need| need > remaining) {
            return Err(self.err(format!(
                "length {n} x {elem_size} B exceeds the {remaining} B remaining"
            )));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("non-UTF-8 string"))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.len_prefix(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn pairs(&mut self) -> Result<Vec<(u32, f64)>, PersistError> {
        let n = self.len_prefix(12)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.u32()?;
            let w = self.f64()?;
            out.push((id, w));
        }
        Ok(out)
    }

    fn matrix(&mut self) -> Result<Matrix, PersistError> {
        let rows = self.usize()?;
        let cols = self.usize()?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| self.err("matrix dimensions overflow"))?;
        if n.checked_mul(8)
            .is_none_or(|need| need > self.buf.len() - self.pos)
        {
            return Err(self.err(format!("{rows}x{cols} matrix exceeds payload")));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        Matrix::from_vec(rows, cols, data).map_err(|e| self.err(e.to_string()))
    }

    fn finish(&self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return Err(self.err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

/// Serializes a built engine and its corpus to the `.cubelsi` byte format.
pub fn save_to_vec(model: &CubeLsi, folksonomy: &Folksonomy) -> Vec<u8> {
    let sections: Vec<(u32, Vec<u8>)> = vec![
        (SECTION_META, encode_meta(model, folksonomy)),
        (SECTION_FOLKSONOMY, encode_folksonomy(folksonomy)),
        (SECTION_TUCKER, encode_tucker(model.decomposition())),
        (SECTION_DISTANCES, encode_distances(model.distances())),
        (SECTION_CONCEPTS, encode_concepts(model.concepts())),
        (SECTION_INDEX, encode_index(model.index())),
    ];

    let table_len = sections.len() * TABLE_ENTRY_LEN;
    let mut out = Vec::with_capacity(
        HEADER_LEN + table_len + sections.iter().map(|(_, p)| p.len()).sum::<usize>(),
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = (HEADER_LEN + table_len) as u64;
    for (id, payload) in &sections {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    for (_, payload) in &sections {
        out.extend_from_slice(payload);
    }
    out
}

/// Writes the artifact to an arbitrary sink.
pub fn save(
    writer: &mut impl Write,
    model: &CubeLsi,
    folksonomy: &Folksonomy,
) -> Result<(), PersistError> {
    writer.write_all(&save_to_vec(model, folksonomy))?;
    Ok(())
}

/// Writes the artifact to a file path, atomically: the bytes go to a
/// temporary sibling first and are renamed into place only after a
/// successful sync, so a crash mid-save can never destroy a previous
/// good artifact at the same path.
pub fn save_to_path(
    path: impl AsRef<Path>,
    model: &CubeLsi,
    folksonomy: &Folksonomy,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        save(&mut file, model, folksonomy)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

fn encode_meta(model: &CubeLsi, folksonomy: &Folksonomy) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_usize(folksonomy.num_users());
    e.put_usize(folksonomy.num_tags());
    e.put_usize(folksonomy.num_resources());
    e.put_usize(folksonomy.num_assignments());
    let t = model.timings();
    for d in [
        t.tensor_build,
        t.tucker,
        t.distances,
        t.clustering,
        t.indexing,
    ] {
        e.put_u64(d.as_nanos().min(u64::MAX as u128) as u64);
    }
    e.buf
}

fn encode_folksonomy(f: &Folksonomy) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_usize(f.num_users());
    for u in 0..f.num_users() {
        e.put_str(f.user_name(UserId::from_index(u)));
    }
    e.put_usize(f.num_tags());
    for t in 0..f.num_tags() {
        e.put_str(f.tag_name(TagId::from_index(t)));
    }
    e.put_usize(f.num_resources());
    for r in 0..f.num_resources() {
        e.put_str(f.resource_name(ResourceId::from_index(r)));
    }
    e.put_usize(f.num_assignments());
    for a in f.assignments() {
        e.put_u32(a.user.index() as u32);
        e.put_u32(a.tag.index() as u32);
        e.put_u32(a.resource.index() as u32);
    }
    e.buf
}

fn encode_tucker(d: &TuckerDecomposition) -> Vec<u8> {
    let mut e = Encoder::default();
    let (j1, j2, j3) = d.core.dims();
    e.put_usize(j1);
    e.put_usize(j2);
    e.put_usize(j3);
    for &x in d.core.as_slice() {
        e.put_f64(x);
    }
    for factor in &d.factors {
        e.put_matrix(factor);
    }
    e.put_f64_slice(&d.lambda2);
    e.put_f64(d.fit);
    e.put_usize(d.iterations);
    e.put_f64_slice(&d.fit_history);
    e.buf
}

fn encode_distances(d: &TagDistances) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_matrix(d.matrix());
    e.buf
}

fn encode_concepts(c: &ConceptModel) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_usize(c.num_concepts());
    e.put_f64(c.sigma());
    e.put_usize(c.num_tags());
    for &a in c.assignments() {
        e.put_u64(a as u64);
    }
    e.buf
}

fn encode_index(ix: &ConceptIndex) -> Vec<u8> {
    let mut e = Encoder::default();
    e.put_usize(ix.num_resources());
    e.put_usize(ix.num_concepts());
    e.put_usize(ix.num_concepts());
    for l in 0..ix.num_concepts() {
        e.put_f64(ix.idf(l));
    }
    e.put_usize(ix.num_resources());
    for r in 0..ix.num_resources() {
        e.put_pairs(ix.resource_vector(r));
        e.put_f64(ix.resource_norm(r));
    }
    e.put_usize(ix.num_concepts());
    for l in 0..ix.num_concepts() {
        e.put_pairs(ix.postings(l));
        e.put_f64(ix.max_impact(l));
    }
    e.buf
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// Parses an artifact from bytes already in memory.
pub fn load_from_bytes(bytes: &[u8]) -> Result<Artifact, PersistError> {
    let sections = parse_sections(bytes)?;
    let payload = |id: u32| -> Result<&[u8], PersistError> {
        sections
            .iter()
            .find(|&&(sid, _)| sid == id)
            .map(|&(_, p)| p)
            .ok_or(PersistError::MissingSection(id))
    };

    let meta = decode_meta(payload(SECTION_META)?)?;
    let folksonomy = decode_folksonomy(payload(SECTION_FOLKSONOMY)?, &meta)?;
    let decomposition = decode_tucker(payload(SECTION_TUCKER)?)?;
    let distances = decode_distances(payload(SECTION_DISTANCES)?, meta.num_tags)?;
    let concepts = decode_concepts(payload(SECTION_CONCEPTS)?, meta.num_tags)?;
    let index = decode_index(
        payload(SECTION_INDEX)?,
        meta.num_resources,
        concepts.num_concepts(),
    )?;

    let model = CubeLsi::from_restored(
        decomposition,
        distances,
        concepts,
        index,
        meta.timings,
        &folksonomy,
    );
    Ok(Artifact { model, folksonomy })
}

/// Reads an artifact from an arbitrary source.
pub fn load(reader: &mut impl Read) -> Result<Artifact, PersistError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    load_from_bytes(&bytes)
}

/// Reads an artifact from a file path.
pub fn load_from_path(path: impl AsRef<Path>) -> Result<Artifact, PersistError> {
    let bytes = std::fs::read(path)?;
    load_from_bytes(&bytes)
}

/// Validates the header + section table and returns `(id, payload)` views
/// with verified CRCs.
fn parse_sections(bytes: &[u8]) -> Result<Vec<(u32, &[u8])>, PersistError> {
    if bytes.len() < HEADER_LEN {
        if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
            return Err(PersistError::BadMagic);
        }
        return Err(PersistError::Truncated { context: "header" });
    }
    if bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version > FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table_end = HEADER_LEN.saturating_add(count.saturating_mul(TABLE_ENTRY_LEN));
    if table_end > bytes.len() {
        return Err(PersistError::Truncated {
            context: "section table",
        });
    }
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let entry =
            &bytes[HEADER_LEN + i * TABLE_ENTRY_LEN..HEADER_LEN + (i + 1) * TABLE_ENTRY_LEN];
        let id = u32::from_le_bytes(entry[0..4].try_into().unwrap());
        let offset = u64::from_le_bytes(entry[4..12].try_into().unwrap());
        let len = u64::from_le_bytes(entry[12..20].try_into().unwrap());
        let expected_crc = u32::from_le_bytes(entry[20..24].try_into().unwrap());
        let (offset, len) = match (usize::try_from(offset), usize::try_from(len)) {
            (Ok(o), Ok(l)) => (o, l),
            _ => {
                return Err(PersistError::Truncated {
                    context: "section payload",
                })
            }
        };
        let end = offset.saturating_add(len);
        if end > bytes.len() {
            return Err(PersistError::Truncated {
                context: "section payload",
            });
        }
        let payload = &bytes[offset..end];
        let got = crc32(payload);
        if got != expected_crc {
            return Err(PersistError::ChecksumMismatch {
                section: id,
                expected: expected_crc,
                got,
            });
        }
        sections.push((id, payload));
    }
    Ok(sections)
}

struct Meta {
    num_users: usize,
    num_tags: usize,
    num_resources: usize,
    num_assignments: usize,
    timings: PhaseTimings,
}

fn decode_meta(payload: &[u8]) -> Result<Meta, PersistError> {
    let mut d = Decoder::new(payload, SECTION_META);
    let num_users = d.usize()?;
    let num_tags = d.usize()?;
    let num_resources = d.usize()?;
    let num_assignments = d.usize()?;
    let mut phases = [Duration::ZERO; 5];
    for slot in &mut phases {
        *slot = Duration::from_nanos(d.u64()?);
    }
    d.finish()?;
    Ok(Meta {
        num_users,
        num_tags,
        num_resources,
        num_assignments,
        timings: PhaseTimings {
            tensor_build: phases[0],
            tucker: phases[1],
            distances: phases[2],
            clustering: phases[3],
            indexing: phases[4],
        },
    })
}

fn decode_names(
    d: &mut Decoder<'_>,
    expected: usize,
    what: &str,
) -> Result<Interner, PersistError> {
    // A name is at least its 4-byte length prefix.
    let n = d.len_prefix(4)?;
    if n != expected {
        return Err(d.err(format!(
            "{what} count {n} disagrees with meta count {expected}"
        )));
    }
    let mut names = Vec::with_capacity(n);
    for _ in 0..n {
        names.push(d.string()?);
    }
    let interner = Interner::from_names(&names);
    if interner.len() != names.len() {
        return Err(d.err(format!("duplicate {what} names")));
    }
    Ok(interner)
}

fn decode_folksonomy(payload: &[u8], meta: &Meta) -> Result<Folksonomy, PersistError> {
    let mut d = Decoder::new(payload, SECTION_FOLKSONOMY);
    let users = decode_names(&mut d, meta.num_users, "user")?;
    let tags = decode_names(&mut d, meta.num_tags, "tag")?;
    let resources = decode_names(&mut d, meta.num_resources, "resource")?;
    let n = d.len_prefix(12)?;
    if n != meta.num_assignments {
        return Err(d.err(format!(
            "assignment count {n} disagrees with meta count {}",
            meta.num_assignments
        )));
    }
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        let u = d.u32()? as usize;
        let t = d.u32()? as usize;
        let r = d.u32()? as usize;
        if u >= users.len() || t >= tags.len() || r >= resources.len() {
            return Err(d.err(format!("assignment ({u}, {t}, {r}) references unknown ids")));
        }
        assignments.push(TagAssignment {
            user: UserId::from_index(u),
            tag: TagId::from_index(t),
            resource: ResourceId::from_index(r),
        });
    }
    d.finish()?;
    Ok(Folksonomy::from_parts(users, tags, resources, assignments))
}

fn decode_tucker(payload: &[u8]) -> Result<TuckerDecomposition, PersistError> {
    let mut d = Decoder::new(payload, SECTION_TUCKER);
    let j1 = d.usize()?;
    let j2 = d.usize()?;
    let j3 = d.usize()?;
    let n = j1
        .checked_mul(j2)
        .and_then(|x| x.checked_mul(j3))
        .ok_or_else(|| d.err("core dimensions overflow"))?;
    if n.checked_mul(8).is_none_or(|need| need > payload.len()) {
        return Err(d.err(format!("{j1}x{j2}x{j3} core exceeds payload")));
    }
    let mut core_data = Vec::with_capacity(n);
    for _ in 0..n {
        core_data.push(d.f64()?);
    }
    let core = DenseTensor3::from_vec(j1, j2, j3, core_data).map_err(|e| d.err(e.to_string()))?;
    let mut factors = Vec::with_capacity(3);
    for _ in 0..3 {
        factors.push(d.matrix()?);
    }
    let factors: [Matrix; 3] = factors.try_into().expect("exactly three factors read");
    for (mode, (factor, j)) in factors.iter().zip([j1, j2, j3]).enumerate() {
        if factor.cols() != j {
            return Err(d.err(format!(
                "factor {} has {} columns, core expects {j}",
                mode + 1,
                factor.cols()
            )));
        }
    }
    let lambda2 = d.f64_vec()?;
    if lambda2.len() != j2 {
        return Err(d.err(format!("lambda2 length {} != J2 = {j2}", lambda2.len())));
    }
    let fit = d.f64()?;
    let iterations = d.usize()?;
    let fit_history = d.f64_vec()?;
    d.finish()?;
    Ok(TuckerDecomposition {
        core,
        factors,
        lambda2,
        fit,
        iterations,
        fit_history,
    })
}

fn decode_distances(payload: &[u8], num_tags: usize) -> Result<TagDistances, PersistError> {
    let mut d = Decoder::new(payload, SECTION_DISTANCES);
    let m = d.matrix()?;
    d.finish()?;
    if m.rows() != num_tags {
        return Err(PersistError::Malformed {
            section: SECTION_DISTANCES,
            detail: format!(
                "{}x{} distance matrix for {num_tags} tags",
                m.rows(),
                m.cols()
            ),
        });
    }
    TagDistances::from_matrix(m).map_err(|e| PersistError::Malformed {
        section: SECTION_DISTANCES,
        detail: e.to_string(),
    })
}

fn decode_concepts(payload: &[u8], num_tags: usize) -> Result<ConceptModel, PersistError> {
    let mut d = Decoder::new(payload, SECTION_CONCEPTS);
    let num_concepts = d.usize()?;
    // Concepts partition the tag set, so a genuine artifact always has
    // num_concepts <= num_tags; without this bound a hostile file could
    // declare 2^50 concepts and force a pathological allocation in
    // `ConceptModel::from_parts` below.
    if num_concepts > num_tags {
        return Err(d.err(format!("{num_concepts} concepts for {num_tags} tags")));
    }
    let sigma = d.f64()?;
    let n = d.len_prefix(8)?;
    if n != num_tags {
        return Err(d.err(format!("{n} assignments for {num_tags} tags")));
    }
    let mut assignments = Vec::with_capacity(n);
    for tag in 0..n {
        let c = d.usize()?;
        if c >= num_concepts {
            return Err(d.err(format!(
                "tag {tag} assigned to concept {c} of {num_concepts}"
            )));
        }
        assignments.push(c);
    }
    d.finish()?;
    Ok(ConceptModel::from_parts(assignments, num_concepts, sigma))
}

fn decode_index(
    payload: &[u8],
    num_resources: usize,
    num_concepts: usize,
) -> Result<ConceptIndex, PersistError> {
    let mut d = Decoder::new(payload, SECTION_INDEX);
    let stored_resources = d.usize()?;
    let stored_concepts = d.usize()?;
    if stored_resources != num_resources || stored_concepts != num_concepts {
        return Err(d.err(format!(
            "index is {stored_resources}x{stored_concepts}, model is {num_resources}x{num_concepts}"
        )));
    }
    let n_idf = d.len_prefix(8)?;
    if n_idf != num_concepts {
        return Err(d.err(format!("{n_idf} idf entries for {num_concepts} concepts")));
    }
    let mut idf = Vec::with_capacity(n_idf);
    for _ in 0..n_idf {
        idf.push(d.f64()?);
    }
    let n_res = d.len_prefix(8)?;
    if n_res != num_resources {
        return Err(d.err(format!("{n_res} vectors for {num_resources} resources")));
    }
    let mut resource_vectors = Vec::with_capacity(n_res);
    let mut resource_norms = Vec::with_capacity(n_res);
    for r in 0..n_res {
        let vector = d.pairs()?;
        if let Some(&(l, _)) = vector.iter().find(|&&(l, _)| l as usize >= num_concepts) {
            return Err(d.err(format!("resource {r} references unknown concept {l}")));
        }
        resource_vectors.push(vector);
        resource_norms.push(d.f64()?);
    }
    let n_post = d.len_prefix(8)?;
    if n_post != num_concepts {
        return Err(d.err(format!(
            "{n_post} posting lists for {num_concepts} concepts"
        )));
    }
    let mut postings = Vec::with_capacity(n_post);
    let mut max_impact = Vec::with_capacity(n_post);
    for l in 0..n_post {
        let list = d.pairs()?;
        if let Some(&(r, _)) = list.iter().find(|&&(r, _)| r as usize >= num_resources) {
            return Err(d.err(format!("concept {l} posts unknown resource {r}")));
        }
        postings.push(list);
        max_impact.push(d.f64()?);
    }
    d.finish()?;
    Ok(ConceptIndex::from_raw_parts(
        num_resources,
        num_concepts,
        idf,
        resource_vectors,
        resource_norms,
        postings,
        max_impact,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CubeLsiConfig;
    use cubelsi_folksonomy::store::figure2_example;

    fn built() -> (Folksonomy, CubeLsi) {
        let f = figure2_example();
        let cfg = CubeLsiConfig {
            core_dims: Some((3, 3, 2)),
            num_concepts: Some(2),
            sigma: Some(1.0),
            max_als_iters: 30,
            als_fit_tol: 1e-10,
            ..Default::default()
        };
        let model = CubeLsi::build(&f, &cfg).unwrap();
        (f, model)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (f, model) = built();
        let bytes = save_to_vec(&model, &f);
        let loaded = load_from_bytes(&bytes).unwrap();

        assert_eq!(loaded.folksonomy.stats(), f.stats());
        assert_eq!(
            loaded.model.concepts().assignments(),
            model.concepts().assignments()
        );
        assert_eq!(loaded.model.concepts().sigma(), model.concepts().sigma());
        assert_eq!(loaded.model.decomposition().fit, model.decomposition().fit);
        assert_eq!(
            loaded.model.decomposition().lambda2,
            model.decomposition().lambda2
        );
        assert!(loaded
            .model
            .distances()
            .matrix()
            .approx_eq(model.distances().matrix(), 0.0));
        assert_eq!(loaded.model.timings().total(), model.timings().total());
        assert_eq!(loaded.model.num_users(), model.num_users());
        assert_eq!(loaded.model.num_resources(), model.num_resources());

        // Search results must be bit-identical, by name and by id.
        for name in ["folk", "people", "laptop"] {
            let a = model.search(&[name], 0);
            let b = loaded.model.search(&[name], 0);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.resource, y.resource);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn save_load_via_path() {
        let (f, model) = built();
        let path = std::env::temp_dir().join(format!(
            "cubelsi-persist-unit-{}.cubelsi",
            std::process::id()
        ));
        save_to_path(&path, &model, &f).unwrap();
        let loaded = load_from_path(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.folksonomy.stats(), f.stats());
    }

    #[test]
    fn empty_file_is_truncated_not_panic() {
        assert!(matches!(
            load_from_bytes(&[]),
            Err(PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn missing_section_reported() {
        let (f, model) = built();
        let bytes = save_to_vec(&model, &f);
        // Rewrite the first table entry's id to an unknown value: META goes
        // missing while its payload stays CRC-valid.
        let mut bad = bytes.clone();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&0xFFu32.to_le_bytes());
        assert!(matches!(
            load_from_bytes(&bad),
            Err(PersistError::MissingSection(SECTION_META))
        ));
    }

    #[test]
    fn hostile_concept_count_is_rejected_before_allocation() {
        // A CRC-valid artifact declaring 2^50 concepts must fail with a
        // typed error, not abort in a pathological `vec![...; 2^50]`.
        let (f, model) = built();
        let mut bytes = save_to_vec(&model, &f);
        // Locate the CONCEPTS section via the table, patch its first
        // field (num_concepts) and re-record the payload CRC.
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let entry = (0..count)
            .map(|i| HEADER_LEN + i * TABLE_ENTRY_LEN)
            .find(|&e| u32::from_le_bytes(bytes[e..e + 4].try_into().unwrap()) == SECTION_CONCEPTS)
            .expect("concepts section present");
        let offset = u64::from_le_bytes(bytes[entry + 4..entry + 12].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[entry + 12..entry + 20].try_into().unwrap()) as usize;
        bytes[offset..offset + 8].copy_from_slice(&(1u64 << 50).to_le_bytes());
        let crc = crc32(&bytes[offset..offset + len]);
        bytes[entry + 20..entry + 24].copy_from_slice(&crc.to_le_bytes());
        match load_from_bytes(&bytes) {
            Err(PersistError::Malformed { section, .. }) => {
                assert_eq!(section, SECTION_CONCEPTS);
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_descriptive() {
        let e = PersistError::ChecksumMismatch {
            section: 3,
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("section 3"));
        let e = PersistError::UnsupportedVersion {
            found: 9,
            supported: FORMAT_VERSION,
        };
        assert!(e.to_string().contains('9'));
    }
}
