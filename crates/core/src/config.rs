//! Configuration of the CubeLSI pipeline.

use crate::query::PruningStrategy;
use cubelsi_linalg::kmeans::{KMeansAlgorithm, KMeansConfig};
use cubelsi_linalg::spectral::{KSelection, SpectralConfig, SpectralSolver};
use cubelsi_linalg::subspace::SubspaceOptions;
use cubelsi_linalg::LinAlgError;
use cubelsi_tensor::TuckerConfig;

/// Which matrix is used as `Σ` in the Theorem-1 distance formula
/// `D̂ᵢⱼ = √((Y⁽²⁾ᵢ − Y⁽²⁾ⱼ) Σ (Y⁽²⁾ᵢ − Y⁽²⁾ⱼ)ᵀ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SigmaSource {
    /// `Σ = S₍₂₎S₍₂₎ᵀ` from the core tensor — exact for any factor set
    /// (Theorem 1's construction).
    CoreGram,
    /// `Σ = ((Λ₂)₁:J₂,₁:J₂)²` from the ALS by-product — Theorem 2's
    /// shortcut; exact at an ALS fixed point, cheaper (diagonal).
    Lambda2,
}

/// Tunable parameters of [`crate::CubeLsi`].
#[derive(Debug, Clone)]
pub struct CubeLsiConfig {
    /// Reduction ratios `(c₁, c₂, c₃)` determining the core dimensions
    /// `Jₙ = Iₙ/cₙ` (§IV-C; the paper's experiments use 50).
    pub reduction_ratios: (f64, f64, f64),
    /// Overrides the ratio-derived core dimensions when set.
    pub core_dims: Option<(usize, usize, usize)>,
    /// Maximum HOOI/ALS iterations.
    pub max_als_iters: usize,
    /// ALS fit tolerance.
    pub als_fit_tol: f64,
    /// Σ source for the distance shortcut.
    pub sigma_source: SigmaSource,
    /// Number of concepts. `None` → 95 %-variance rule of §V step 3.
    pub num_concepts: Option<usize>,
    /// Upper bound on concepts when using the variance rule.
    pub max_concepts: usize,
    /// Gaussian affinity bandwidth σ (§V step 1). `None` → median heuristic.
    pub sigma: Option<f64>,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Run k-means as textbook naive Lloyd's instead of the bounds-pruned
    /// variant. Both are bit-identical; the naive path is the reference for
    /// equivalence tests and the slow side of the build-phase bench.
    pub naive_kmeans: bool,
    /// Apply the HOSVD Gram operators as two materialized sparse products
    /// instead of the fused single-pass kernel. Bit-identical reference
    /// path, same purpose as `naive_kmeans`.
    pub materialized_gram: bool,
    /// Drive concept distillation with the legacy exhaustive eigensolver
    /// (Rayleigh–Ritz every iteration, full-block convergence) instead of
    /// the adaptive periodic-projection solver.
    pub exhaustive_spectral: bool,
    /// Pruning strategy of the online query engine built by
    /// [`crate::CubeLsi::build`]. Both strategies are exact and
    /// bit-identical; `MaxScore` is the previous-generation reference
    /// path, `BlockMax` (default) the block-skipping fast path.
    pub pruning: PruningStrategy,
}

impl Default for CubeLsiConfig {
    fn default() -> Self {
        CubeLsiConfig {
            reduction_ratios: (50.0, 50.0, 50.0),
            core_dims: None,
            max_als_iters: 10,
            als_fit_tol: 1e-4,
            sigma_source: SigmaSource::Lambda2,
            num_concepts: None,
            max_concepts: 64,
            sigma: None,
            seed: 0xc0be_15e1,
            naive_kmeans: false,
            materialized_gram: false,
            exhaustive_spectral: false,
            pruning: PruningStrategy::default(),
        }
    }
}

impl CubeLsiConfig {
    /// Switches every offline kernel to its reference (pre-overhaul)
    /// implementation: naive Lloyd's, materialized Gram products, and the
    /// exhaustive spectral eigensolver — and the online engine to the
    /// MaxScore reference pruning loop. This is the slow side of the
    /// `build_phases` bench and the baseline of the equivalence tests.
    pub fn with_reference_kernels(mut self) -> Self {
        self.naive_kmeans = true;
        self.materialized_gram = true;
        self.exhaustive_spectral = true;
        self.pruning = PruningStrategy::MaxScore;
        self
    }

    /// Resolves the Tucker configuration for a tensor of the given dims.
    pub fn tucker_config(&self, dims: (usize, usize, usize)) -> Result<TuckerConfig, LinAlgError> {
        let mut cfg = match self.core_dims {
            Some(core) => TuckerConfig {
                core_dims: core,
                ..Default::default()
            },
            None => {
                let (c1, c2, c3) = self.reduction_ratios;
                TuckerConfig::from_reduction_ratios(dims, c1, c2, c3)?
            }
        };
        cfg.max_iters = self.max_als_iters;
        cfg.fit_tol = self.als_fit_tol;
        cfg.subspace = SubspaceOptions {
            seed: self.seed ^ 0x717c_4e12,
            ..Default::default()
        };
        cfg.fused_gram = !self.materialized_gram;
        Ok(cfg)
    }

    /// Resolves the spectral-clustering configuration.
    pub fn spectral_config(&self) -> SpectralConfig {
        SpectralConfig {
            sigma: self.sigma,
            k: match self.num_concepts {
                Some(k) => KSelection::Fixed(k),
                None => KSelection::VarianceCovered {
                    fraction: 0.95,
                    max_k: self.max_concepts,
                },
            },
            kmeans: KMeansConfig {
                seed: self.seed ^ 0x6b6d,
                algorithm: if self.naive_kmeans {
                    KMeansAlgorithm::NaiveLloyd
                } else {
                    KMeansAlgorithm::BoundsPruned
                },
                ..Default::default()
            },
            subspace: SubspaceOptions {
                seed: self.seed ^ 0x5bc7,
                ..Default::default()
            },
            solver: if self.exhaustive_spectral {
                SpectralSolver::Exhaustive
            } else {
                SpectralSolver::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tucker_config_from_ratios() {
        let cfg = CubeLsiConfig::default();
        let t = cfg.tucker_config((3897, 3326, 2849)).unwrap();
        assert_eq!(t.core_dims, (78, 67, 57));
        assert_eq!(t.max_iters, cfg.max_als_iters);
    }

    #[test]
    fn explicit_core_dims_win() {
        let cfg = CubeLsiConfig {
            core_dims: Some((4, 5, 6)),
            ..Default::default()
        };
        let t = cfg.tucker_config((100, 100, 100)).unwrap();
        assert_eq!(t.core_dims, (4, 5, 6));
    }

    #[test]
    fn invalid_ratios_error() {
        let cfg = CubeLsiConfig {
            reduction_ratios: (0.1, 50.0, 50.0),
            ..Default::default()
        };
        assert!(cfg.tucker_config((10, 10, 10)).is_err());
    }

    #[test]
    fn spectral_config_resolution() {
        let auto = CubeLsiConfig::default().spectral_config();
        assert!(matches!(auto.k, KSelection::VarianceCovered { .. }));
        let fixed = CubeLsiConfig {
            num_concepts: Some(7),
            ..Default::default()
        }
        .spectral_config();
        assert!(matches!(fixed.k, KSelection::Fixed(7)));
    }
}
