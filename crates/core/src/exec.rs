//! Persistent query executor: a long-lived worker pool with cached
//! per-worker query sessions.
//!
//! Every concurrent serving path before this module paid per-call setup:
//! a fresh `thread::scope`, fresh thread stacks, and a fresh
//! [`QuerySession`] per worker per call — tens of microseconds of
//! overhead against queries that finish in single-digit microseconds on
//! small corpora. This module replaces that with the standard pool
//! topology:
//!
//! * one process-wide [`Executor`] (lazily created, never torn down)
//!   owning **parked** std threads that live for the process;
//! * a shared [`Injector`] FIFO plus one work-stealing deque per worker
//!   (`crossbeam::deque`): submitted batches land in the injector,
//!   workers drain it in bounded batches into their local LIFO deque,
//!   and idle workers (or the submitting caller) steal from stragglers;
//! * a [`WorkerScratch`] — a cached [`QuerySession`] + `ShardedSession`
//!   — owned by each worker thread and by each calling thread
//!   (thread-local), so steady-state pooled queries **spawn zero
//!   threads and allocate nothing**: session scratch is epoch-tagged
//!   and grow-only, which also means a cached session survives a hot
//!   reload — the next query lazily re-validates it against whatever
//!   generation's index it meets ([`QuerySession::ensure_capacity`]),
//!   mirroring `ShardedEngine`'s drain semantics;
//! * counters (queued, stolen, executed, inline/fanout dispatch
//!   decisions) surfaced through [`stats`] for the `serve` STATS
//!   command and the bench report's `inline_dispatch_ratio`.
//!
//! # Batch protocol
//!
//! [`Executor::run_tasks`] submits `tasks` closures indexed `0..tasks`
//! and **blocks until all of them finished** (join-before-return, even
//! on panic — a drop guard waits out the batch before unwinding
//! continues, so borrowed data can never be observed after free). The
//! submitting caller does not idle: it executes tasks itself alongside
//! the pool, using its own thread-local scratch. Task closures run
//! under `catch_unwind`; a panicking task marks the batch and the panic
//! resurfaces on the caller once the batch has drained.
//!
//! Tasks carry a pointer to the stack-allocated batch control block
//! with its lifetime erased (deques are `'static`-typed); soundness is
//! exactly the join-before-return guarantee above, see the ledgered
//! SAFETY arguments inline.
//!
//! Results are written through [`DisjointSlots`], a bounds-checked
//! disjoint-write view: each task writes only its own output slot, so
//! no ordering pass is needed and output arrives allocation-free in
//! query order.
//!
//! Dispatch policy lives at the call sites (`query.rs` / `shard.rs`):
//! cheap work runs inline on the caller (recorded via
//! [`Executor::note_inline`]); the pool is engaged only when the work
//! amortizes the handoff. A task that itself calls `run_tasks` (nested
//! fan-out) degrades to inline execution on the worker — the pool never
//! blocks one of its own threads on a sub-batch.
//!
//! # Deadlines
//!
//! Serving paths can bound a query's latency budget with
//! [`scoped_deadline`]: the deadline is carried in a thread-local for
//! the scope of the closure, captured by `run_tasks` at submission,
//! and re-established on whichever participant (pool worker or
//! stealing caller) executes each task — so [`current_deadline`] /
//! [`deadline_exceeded`] answer correctly from inside task bodies and
//! nested dispatches. Dispatch is deadline-aware: a batch submitted
//! *after* its deadline already passed still produces its results
//! (callers may discard them), but runs sequentially on the caller —
//! waking the pool for work whose budget is already spent would only
//! steal threads from queries that can still make theirs. Such
//! degradations are counted in [`ExecutorStats::late_dispatch`].

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

use crate::query::QuerySession;
use crate::shard::ShardedSession;

/// Hard ceiling on pool threads, far above any sane `--threads`
/// setting; a hostile `CUBELSI_THREADS` cannot fork-bomb the process.
const MAX_POOL_WORKERS: usize = 256;

/// Cached scratch owned by one executor participant (a pool worker or a
/// calling thread): one session per serving path, grown on first use
/// and reused for the life of the thread.
#[derive(Debug, Default)]
pub(crate) struct WorkerScratch {
    /// Single-engine session (batch queries, per-shard scatter tasks).
    pub(crate) query: QuerySession,
    /// Scatter-gather session (sharded batch tasks).
    pub(crate) sharded: ShardedSession,
}

/// The closure shape a batch runs: `(task_index, participant_scratch)`.
type TaskFn<'a> = &'a (dyn Fn(usize, &mut WorkerScratch) + Sync);

/// Stack-allocated control block of one in-flight batch: the task
/// closure plus the completion latch the submitting caller waits on.
struct BatchCtl<'a> {
    run: TaskFn<'a>,
    /// The submitting scope's latency deadline, re-established on every
    /// participant that executes one of this batch's tasks.
    deadline: Option<Instant>,
    /// Tasks not yet finished; the finisher that brings this to zero
    /// flips `done` under its mutex and wakes the waiting caller.
    pending: AtomicUsize,
    /// Set when any task panicked; the caller re-raises after the join.
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
}

/// One unit of pool work: which batch, which task index. The control
/// pointer's lifetime is erased so tasks can sit in `'static`-typed
/// deques; validity is the batch protocol's join-before-return
/// guarantee (see the module docs).
#[derive(Clone, Copy)]
struct Task {
    ctl: *const BatchCtl<'static>,
    index: usize,
}

// SAFETY: a Task is an index plus a pointer to a BatchCtl that the
// submitting `run_tasks` frame keeps alive (it joins the batch before
// returning, even on unwind), and BatchCtl's interior — atomics,
// Mutex/Condvar, and a `dyn Fn + Sync` closure reference — is safe to
// reach from any thread. Moving the pointer across threads is therefore
// sound; the only deref is audited in `execute`.
unsafe impl Send for Task {}

/// A bounds-checked disjoint-write view over a result slice: tasks
/// write concurrently, each only to the slot indices it owns, so the
/// caller gets results in order with no post-hoc sorting pass.
pub(crate) struct DisjointSlots<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: DisjointSlots is a borrowed view over `&'a mut [T]`; sending
// it to another thread moves only the raw pointer + length, and T: Send
// means the pointees may be written from that thread.
unsafe impl<T: Send> Send for DisjointSlots<'_, T> {}
// SAFETY: sharing the view is what enables concurrent slot writes; the
// per-index exclusivity contract of `slot` (each index claimed by
// exactly one task) is what prevents aliased &mut — the view itself
// hands out nothing without that contract being invoked.
unsafe impl<T: Send> Sync for DisjointSlots<'_, T> {}

/// A point-in-time snapshot of the executor counters (see [`stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Worker threads currently alive in the pool (grow-only).
    pub pool_size: usize,
    /// Tasks ever submitted to the pool (fan-out path only).
    pub queued: u64,
    /// Tasks executed by any participant (workers + calling threads).
    pub executed: u64,
    /// Tasks taken from another worker's deque rather than the
    /// injector or the thief's own deque.
    pub stolen: u64,
    /// Dispatch decisions that stayed on the caller thread.
    pub inline: u64,
    /// Dispatch decisions that engaged the pool.
    pub fanout: u64,
    /// Batches whose [`scoped_deadline`] had already passed at
    /// submission and therefore ran sequentially on the caller instead
    /// of engaging the pool.
    pub late_dispatch: u64,
}

/// Park-state shared between submitters and workers: a classic
/// eventcount. Workers snapshot `wake_epoch` before searching for work
/// and only park while it is unchanged; submitters bump it (under the
/// lock) after pushing, so a push can never slip between a worker's
/// failed search and its park.
struct ParkState {
    wake_epoch: u64,
    /// Set only by `Executor::drop` (test instances); the global
    /// executor lives for the process.
    stopping: bool,
}

struct Inner {
    injector: Injector<Task>,
    /// Steal handles of every spawned worker, in slot order. Also the
    /// spawn lock: workers are only added while this is held.
    stealers: Mutex<Vec<Stealer<Task>>>,
    park: Mutex<ParkState>,
    work_cv: Condvar,
    /// Published worker count (mirrors `stealers.len()`).
    spawned: AtomicUsize,
    queued: AtomicU64,
    executed: AtomicU64,
    stolen: AtomicU64,
    inline: AtomicU64,
    fanout: AtomicU64,
    late_dispatch: AtomicU64,
}

/// The worker pool. One process-wide instance lives behind
/// [`global`]; tests construct private instances.
pub(crate) struct Executor {
    inner: Arc<Inner>,
}

thread_local! {
    /// True on pool worker threads: a nested `run_tasks` from inside a
    /// task must run inline instead of blocking a pool thread on the
    /// pool.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
    /// The calling thread's cached scratch, used when executing tasks
    /// inline and when participating in a submitted batch.
    static CALLER_SCRATCH: RefCell<WorkerScratch> = RefCell::new(WorkerScratch::default());
    /// The latency deadline governing work dispatched from this thread
    /// (set by [`scoped_deadline`], re-established per task on
    /// executing participants).
    static TASK_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Restores the previous thread-local deadline on drop, so scopes nest
/// correctly even across unwinds.
struct DeadlineGuard {
    prev: Option<Instant>,
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        TASK_DEADLINE.with(|c| c.set(self.prev));
    }
}

/// Installs `deadline` as the current thread's deadline for the guard's
/// lifetime. `tighten_only` is the scope rule (an inner scope can only
/// shorten the budget, and `None` inherits the outer deadline); tasks
/// executing on behalf of another thread's batch instead take that
/// batch's deadline verbatim (`tighten_only = false`) — the governing
/// budget is the submitter's, not the executing participant's.
fn install_deadline(deadline: Option<Instant>, tighten_only: bool) -> DeadlineGuard {
    let prev = TASK_DEADLINE.with(Cell::get);
    let effective = if tighten_only {
        match (deadline, prev) {
            (Some(inner), Some(outer)) => Some(inner.min(outer)),
            (inner, outer) => inner.or(outer),
        }
    } else {
        deadline
    };
    TASK_DEADLINE.with(|c| c.set(effective));
    DeadlineGuard { prev }
}

/// Runs `f` with `deadline` as the current thread's dispatch deadline,
/// restoring the previous deadline afterwards. The deadline propagates
/// into every `run_tasks` fan-out performed inside `f` (pool workers
/// included); nested scopes keep the sooner of the two deadlines, and
/// `None` simply inherits the enclosing scope's deadline.
pub fn scoped_deadline<R>(deadline: Option<Instant>, f: impl FnOnce() -> R) -> R {
    let _guard = install_deadline(deadline, true);
    f()
}

/// The deadline governing the current scope (a [`scoped_deadline`]
/// closure, or a task executed on behalf of one), if any.
pub fn current_deadline() -> Option<Instant> {
    TASK_DEADLINE.with(Cell::get)
}

/// True when the current scope's deadline has already passed — a
/// cooperative cancellation check long-running task bodies can poll.
pub fn deadline_exceeded() -> bool {
    current_deadline().is_some_and(|d| Instant::now() >= d)
}

static GLOBAL: OnceLock<Executor> = OnceLock::new();

/// The process-wide executor (created on first use, never torn down).
pub(crate) fn global() -> &'static Executor {
    GLOBAL.get_or_init(Executor::new)
}

/// Counter snapshot of the process-wide executor. All zeros until the
/// first pooled call creates it.
pub fn stats() -> ExecutorStats {
    GLOBAL
        .get()
        .map_or_else(ExecutorStats::default, Executor::snapshot)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Worker panics are contained by catch_unwind before any of these
    // locks unwind; state behind them is valid regardless.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs every task inline on the current thread with its cached
/// scratch (fresh scratch in the re-entrant corner case where the
/// thread-local is already borrowed by an outer batch).
fn run_inline(tasks: usize, run: TaskFn<'_>) {
    CALLER_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            for index in 0..tasks {
                run(index, &mut scratch);
            }
        }
        Err(_) => {
            let mut scratch = WorkerScratch::default();
            for index in 0..tasks {
                run(index, &mut scratch);
            }
        }
    });
}

// xtask:no-alloc:begin — steady-state task execution and stealing:
// the pooled hot path performs no allocation (the dynamic sampling in
// tests/query_zero_alloc.rs becomes a static fence here).

/// Executes one task, always decrementing the batch latch — a panic in
/// the closure is caught, recorded on the batch, and re-raised by the
/// submitting caller after the join.
fn execute(inner: &Inner, task: Task, scratch: &mut WorkerScratch) {
    // SAFETY: the submitting `run_tasks` frame keeps the BatchCtl alive
    // until `pending` reaches zero (its WaitGuard joins the batch before
    // the frame can return, even on unwind), and this task has not yet
    // decremented `pending`, so the pointee is live for the whole scope
    // of this reference.
    let ctl = unsafe { &*task.ctl };
    // The batch runs under its *submitter's* deadline — replace (not
    // tighten) whatever deadline the executing thread happens to carry,
    // since a stealing participant may belong to an unrelated scope.
    let _deadline = install_deadline(ctl.deadline, false);
    if panic::catch_unwind(AssertUnwindSafe(|| (ctl.run)(task.index, scratch))).is_err() {
        // ORDER: flag only; the `done` mutex handoff below publishes it
        // to the joining caller before the Relaxed read in `run_tasks`.
        ctl.panicked.store(true, Ordering::Relaxed);
    }
    inner.executed.fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
                                                    // ORDER: AcqRel — the final decrement observes every earlier
                                                    // finisher's writes (release sequence on `pending`), and the caller
                                                    // observes the final finisher through the `done` mutex — so after
                                                    // the join the caller sees every task's result writes.
    if ctl.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = lock(&ctl.done);
        *done = true;
        ctl.done_cv.notify_all();
    }
}

/// A worker's search order: own deque (LIFO), then a bounded batch off
/// the injector, then a steal from a sibling.
fn find_task(inner: &Inner, local: &Worker<Task>, slot: usize) -> Option<Task> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    if let Steal::Success(task) = inner.injector.steal_batch_and_pop(local) {
        return Some(task);
    }
    let stealers = lock(&inner.stealers);
    for (i, stealer) in stealers.iter().enumerate() {
        if i == slot {
            continue;
        }
        if let Steal::Success(task) = stealer.steal() {
            inner.stolen.fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
            return Some(task);
        }
    }
    None
}

/// The submitting caller's search order while participating in its own
/// batch: the injector, then worker deques (it owns no deque).
fn grab_external(inner: &Inner) -> Option<Task> {
    if let Steal::Success(task) = inner.injector.steal() {
        return Some(task);
    }
    let stealers = lock(&inner.stealers);
    for stealer in stealers.iter() {
        if let Steal::Success(task) = stealer.steal() {
            inner.stolen.fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
            return Some(task);
        }
    }
    None
}

// xtask:no-alloc:end

fn worker_loop(inner: Arc<Inner>, local: Worker<Task>, slot: usize) {
    IS_POOL_WORKER.with(|flag| flag.set(true));
    let mut scratch = WorkerScratch::default();
    loop {
        // Eventcount: snapshot the epoch *before* searching, so a push
        // during the search forces a re-check instead of a lost wakeup.
        let seen_epoch = {
            let park = lock(&inner.park);
            if park.stopping {
                return;
            }
            park.wake_epoch
        };
        let mut found = false;
        while let Some(task) = find_task(&inner, &local, slot) {
            found = true;
            execute(&inner, task, &mut scratch);
        }
        if !found {
            let mut park = lock(&inner.park);
            while park.wake_epoch == seen_epoch && !park.stopping {
                // `Condvar::wait` atomically releases `park` while
                // parked; holding it here is the eventcount protocol,
                // not a stall.
                park = inner
                    .work_cv
                    .wait(park) // HOLDS-LOCK: condvar wait releases the guard.
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if park.stopping {
                return;
            }
        }
    }
}

/// Join-before-return: dropped on every exit path of `run_tasks`
/// (including unwinds), it blocks until the batch latch closes — after
/// which no task can hold a pointer into the frame being torn down.
struct WaitGuard<'a, 'b> {
    ctl: &'a BatchCtl<'b>,
}

impl Drop for WaitGuard<'_, '_> {
    fn drop(&mut self) {
        let mut done = lock(&self.ctl.done);
        while !*done {
            // The join protocol requires holding `done` until the
            // latch flip is observed.
            done = self
                .ctl
                .done_cv
                .wait(done) // HOLDS-LOCK: condvar wait releases the guard.
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Executor {
    pub(crate) fn new() -> Executor {
        Executor {
            inner: Arc::new(Inner {
                injector: Injector::new(),
                stealers: Mutex::new(Vec::new()),
                park: Mutex::new(ParkState {
                    wake_epoch: 0,
                    stopping: false,
                }),
                work_cv: Condvar::new(),
                spawned: AtomicUsize::new(0),
                queued: AtomicU64::new(0),
                executed: AtomicU64::new(0),
                stolen: AtomicU64::new(0),
                inline: AtomicU64::new(0),
                fanout: AtomicU64::new(0),
                late_dispatch: AtomicU64::new(0),
            }),
        }
    }

    /// Records a dispatch decision that stayed on the caller thread.
    pub(crate) fn note_inline(&self) {
        self.inner.inline.fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
    }

    /// Records a dispatch decision that engaged the pool.
    pub(crate) fn note_fanout(&self) {
        self.inner.fanout.fetch_add(1, Ordering::Relaxed); // ORDER: stats counter; Relaxed default.
    }

    pub(crate) fn snapshot(&self) -> ExecutorStats {
        ExecutorStats {
            // ORDER: Acquire pairs with the Release store in
            // `ensure_workers` — a snapshot never reports a pool size
            // ahead of the workers actually being registered.
            pool_size: self.inner.spawned.load(Ordering::Acquire),
            queued: self.inner.queued.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            executed: self.inner.executed.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            stolen: self.inner.stolen.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            inline: self.inner.inline.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            fanout: self.inner.fanout.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
            late_dispatch: self.inner.late_dispatch.load(Ordering::Relaxed), // ORDER: stats counter; Relaxed default.
        }
    }

    /// Runs `run(0..tasks)` to completion with up to `width`
    /// participants (the caller plus `width - 1` pool workers) and
    /// blocks until every task finished. Degenerate shapes — one task,
    /// width ≤ 1, or a call from inside a pool task — run inline on the
    /// current thread. Steady-state fan-out performs no allocation.
    pub(crate) fn run_tasks(&self, width: usize, tasks: usize, run: TaskFn<'_>) {
        if tasks == 0 {
            return;
        }
        if width <= 1 || tasks == 1 || IS_POOL_WORKER.with(Cell::get) {
            run_inline(tasks, run);
            return;
        }
        // Deadline-aware dispatch: a batch whose budget already expired
        // still produces its results (callers need them for the
        // degraded reply), but sequentially on the caller — no point
        // waking workers for an answer that will be discarded.
        let deadline = current_deadline();
        if deadline.is_some_and(|d| Instant::now() >= d) {
            // ORDER: stats counter; Relaxed default.
            self.inner.late_dispatch.fetch_add(1, Ordering::Relaxed);
            run_inline(tasks, run);
            return;
        }
        self.ensure_workers(width.min(tasks).saturating_sub(1));
        let ctl = BatchCtl {
            run,
            deadline,
            pending: AtomicUsize::new(tasks),
            panicked: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        };
        // Lifetime erasure: the deques are 'static-typed, but `ctl`
        // lives on this stack frame. The WaitGuard below re-establishes
        // the lifetime discipline dynamically — this frame cannot be
        // left until `pending` hits zero, so every Task pointer dies
        // before its pointee. (A plain pointer cast: the erased type is
        // layout-identical, only the lifetime parameter changes.)
        let ctl_ptr = (&ctl as *const BatchCtl<'_>).cast::<BatchCtl<'static>>();
        let guard = WaitGuard { ctl: &ctl };
        for index in 0..tasks {
            self.inner.injector.push(Task {
                ctl: ctl_ptr,
                index,
            });
        }
        // ORDER: stats counter; Relaxed default.
        self.inner.queued.fetch_add(tasks as u64, Ordering::Relaxed);
        self.wake_workers();
        // Participate instead of idling (skipped only in the re-entrant
        // corner where an outer batch already borrowed this thread's
        // scratch — then the pool alone drains the batch).
        CALLER_SCRATCH.with(|cell| {
            if let Ok(mut scratch) = cell.try_borrow_mut() {
                // ORDER: Acquire pairs with the AcqRel decrements in
                // `execute` — observing 0 implies every finisher's
                // writes are visible to this participant.
                while ctl.pending.load(Ordering::Acquire) > 0 {
                    match grab_external(&self.inner) {
                        Some(task) => execute(&self.inner, task, &mut scratch),
                        None => break,
                    }
                }
            }
        });
        drop(guard);
        // ORDER: the WaitGuard's `done`-mutex join above already
        // ordered every finisher before this read; Relaxed suffices.
        if ctl.panicked.load(Ordering::Relaxed) {
            panic!("executor batch task panicked");
        }
    }

    /// Grows the pool to at least `target` workers (capped, grow-only;
    /// threads are never torn down while the executor lives).
    fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_POOL_WORKERS);
        // ORDER: Acquire pairs with the Release store below — a caller
        // that observes a satisfied count also observes the stealers
        // those workers registered.
        if self.inner.spawned.load(Ordering::Acquire) >= target {
            return;
        }
        let mut stealers = lock(&self.inner.stealers);
        while stealers.len() < target {
            let local = Worker::new_lifo();
            stealers.push(local.stealer());
            let slot = stealers.len() - 1;
            let inner = Arc::clone(&self.inner);
            std::thread::Builder::new()
                .name(format!("cubelsi-exec-{slot}"))
                .spawn(move || worker_loop(inner, local, slot))
                .expect("spawn executor worker");
        }
        // ORDER: Release publishes the grown pool to the Acquire loads
        // above and in `snapshot`.
        self.inner.spawned.store(stealers.len(), Ordering::Release);
    }

    fn wake_workers(&self) {
        let mut park = lock(&self.inner.park);
        park.wake_epoch = park.wake_epoch.wrapping_add(1);
        self.inner.work_cv.notify_all();
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        // Only test instances drop; their parked workers exit instead
        // of leaking a parked thread per constructed pool.
        let mut park = lock(&self.inner.park);
        park.stopping = true;
        self.inner.work_cv.notify_all();
    }
}

impl<'a, T> DisjointSlots<'a, T> {
    pub(crate) fn new(slots: &'a mut [T]) -> Self {
        DisjointSlots {
            ptr: slots.as_mut_ptr(),
            len: slots.len(),
            _marker: PhantomData,
        }
    }

    /// The exclusive reference to slot `index` (bounds-checked).
    ///
    /// # Safety
    ///
    /// Over the view's lifetime every index must be claimed by at most
    /// one task, and the borrowing caller must not touch the underlying
    /// slice while tasks hold slots — both are what make the returned
    /// `&mut` unaliased.
    #[allow(clippy::mut_from_ref)] // disjoint-write view: &mut per index is the point
    pub(crate) unsafe fn slot(&self, index: usize) -> &mut T {
        assert!(index < self.len, "slot {index} out of {}", self.len);
        // SAFETY: in-bounds by the assert above (ptr/len came from a
        // live &mut slice); unaliased by the method's one-task-per-index
        // contract.
        unsafe { &mut *self.ptr.add(index) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fill_batch(exec: &Executor, width: usize, tasks: usize) -> Vec<u64> {
        let mut out = vec![0u64; tasks];
        let slots = DisjointSlots::new(&mut out);
        exec.run_tasks(width, tasks, &|i, _scratch| {
            // SAFETY: one task per index; each slot claimed exactly once.
            let slot = unsafe { slots.slot(i) };
            *slot = (i as u64) * 3 + 1;
        });
        out
    }

    #[test]
    fn pool_runs_every_task_and_reuses_threads() {
        let exec = Executor::new();
        for _round in 0..5 {
            let out = fill_batch(&exec, 4, 97);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, (i as u64) * 3 + 1);
            }
        }
        let stats = exec.snapshot();
        assert_eq!(stats.executed, 5 * 97);
        assert_eq!(stats.queued, 5 * 97);
        assert!(
            stats.pool_size <= 3,
            "width 4 must spawn at most 3 workers, got {}",
            stats.pool_size
        );
        assert!(stats.pool_size >= 1);
    }

    #[test]
    fn width_is_clamped_to_task_count() {
        // Regression: a batch smaller than the pool width must engage at
        // most tasks - 1 workers (the caller is the remaining one).
        let exec = Executor::new();
        let out = fill_batch(&exec, 8, 3);
        assert_eq!(out, vec![1, 4, 7]);
        assert!(
            exec.snapshot().pool_size <= 2,
            "3 tasks at width 8 spawned {} workers",
            exec.snapshot().pool_size
        );
    }

    #[test]
    fn degenerate_shapes_run_inline_without_workers() {
        let exec = Executor::new();
        assert_eq!(fill_batch(&exec, 1, 16), {
            let mut v = vec![0u64; 16];
            for (i, s) in v.iter_mut().enumerate() {
                *s = (i as u64) * 3 + 1;
            }
            v
        });
        assert_eq!(fill_batch(&exec, 8, 1), vec![1]);
        let stats = exec.snapshot();
        assert_eq!(stats.pool_size, 0, "inline shapes must not spawn");
        assert_eq!(stats.queued, 0);
    }

    #[test]
    fn nested_run_tasks_degrades_to_inline() {
        let exec = Executor::new();
        let total = AtomicU64::new(0);
        exec.run_tasks(4, 8, &|_, _scratch| {
            // Nested fan-out from a task body: must complete inline (on
            // a worker) or via the pool (on the caller), never deadlock.
            exec.run_tasks(4, 4, &|j, _s| {
                total.fetch_add(j as u64 + 1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * (1 + 2 + 3 + 4));
    }

    #[test]
    fn panicking_task_joins_then_propagates() {
        let exec = Executor::new();
        let ran = AtomicU64::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.run_tasks(4, 32, &|i, _scratch| {
                if i == 7 {
                    panic!("task 7 boom");
                }
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(caught.is_err(), "batch panic must propagate to the caller");
        assert_eq!(
            ran.load(Ordering::Relaxed),
            31,
            "all non-panicking tasks must still run (join-before-return)"
        );
        // The pool survives a panicked batch.
        let out = fill_batch(&exec, 4, 16);
        assert_eq!(out[15], 46);
    }

    #[test]
    fn counters_track_dispatch_decisions() {
        let exec = Executor::new();
        exec.note_inline();
        exec.note_inline();
        exec.note_fanout();
        let stats = exec.snapshot();
        assert_eq!((stats.inline, stats.fanout), (2, 1));
    }

    #[test]
    fn deadline_propagates_into_pool_tasks() {
        let exec = Executor::new();
        let far = Instant::now() + Duration::from_secs(3600);
        let seen = AtomicU64::new(0);
        let missing = AtomicU64::new(0);
        scoped_deadline(Some(far), || {
            assert_eq!(current_deadline(), Some(far));
            assert!(!deadline_exceeded());
            exec.run_tasks(4, 32, &|_, _scratch| {
                // Whether this task ran on a pool worker or on the
                // participating caller, it must observe the submitting
                // scope's deadline.
                match current_deadline() {
                    Some(d) if d == far => seen.fetch_add(1, Ordering::Relaxed),
                    _ => missing.fetch_add(1, Ordering::Relaxed),
                };
            });
        });
        assert_eq!(seen.load(Ordering::Relaxed), 32);
        assert_eq!(missing.load(Ordering::Relaxed), 0);
        assert_eq!(
            current_deadline(),
            None,
            "leaving the scope must restore the previous (absent) deadline"
        );
    }

    #[test]
    fn expired_deadline_runs_batch_inline() {
        let exec = Executor::new();
        // An Instant captured before the comparison: `>=` makes "now"
        // itself already expired, without Instant arithmetic that could
        // underflow near the clock epoch.
        let past = Instant::now();
        let out = scoped_deadline(Some(past), || fill_batch(&exec, 4, 16));
        let expect: Vec<u64> = (0..16).map(|i| i * 3 + 1).collect();
        assert_eq!(out, expect, "late batches still produce full results");
        let stats = exec.snapshot();
        assert_eq!(stats.pool_size, 0, "expired dispatch must not spawn");
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.late_dispatch, 1);
    }

    #[test]
    fn nested_scopes_keep_sooner_deadline() {
        let soon = Instant::now() + Duration::from_secs(60);
        let later = Instant::now() + Duration::from_secs(3600);
        scoped_deadline(Some(soon), || {
            scoped_deadline(Some(later), || {
                assert_eq!(
                    current_deadline(),
                    Some(soon),
                    "an inner scope can only tighten the budget"
                );
            });
            scoped_deadline(None, || {
                assert_eq!(
                    current_deadline(),
                    Some(soon),
                    "None inherits the enclosing deadline"
                );
            });
            assert_eq!(current_deadline(), Some(soon));
        });
        assert_eq!(current_deadline(), None);
    }
}
