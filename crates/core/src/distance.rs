//! Purified pairwise tag distances (§IV-D of the paper).
//!
//! The naive definition (Eq. 17) measures `D̂ᵢⱼ = ‖F̂₍:,ᵢ,:₎ − F̂₍:,ⱼ,:₎‖_F`
//! on the dense purified tensor `F̂` — prohibitively expensive (the paper's
//! Last.fm slice pair already needs 11.1M operations). Theorem 1 reduces it
//! to `D̂ᵢⱼ = √((Y⁽²⁾ᵢ − Y⁽²⁾ⱼ) Σ (Y⁽²⁾ᵢ − Y⁽²⁾ⱼ)ᵀ)` with
//! `Σ = S₍₂₎S₍₂₎ᵀ`, and Theorem 2 further collapses `Σ` to the diagonal
//! `Λ₂²` at the ALS fixed point.
//!
//! This module adds one more (mathematically equivalent) step the paper
//! leaves implicit: factor the PSD matrix `Σ = C Cᵀ` once, embed tags as
//! rows of `Z = Y⁽²⁾ C`, and every `D̂ᵢⱼ` becomes a plain Euclidean distance
//! in `J₂` dimensions — `O(J₂)` per pair after an `O(J₂³)` factorization,
//! versus the `O(J₂²)` per pair of evaluating Eq. 21 literally. Both paths
//! are provided and cross-checked; the brute-force Eq. 17 reference exists
//! for test-scale validation.

use crate::config::SigmaSource;
use cubelsi_linalg::parallel;
use cubelsi_linalg::{jacobi_eigen, LinAlgError, Matrix};
use cubelsi_tensor::TuckerDecomposition;

/// A symmetric matrix of pairwise tag distances with zero diagonal.
#[derive(Debug, Clone)]
pub struct TagDistances {
    matrix: Matrix,
}

impl TagDistances {
    /// Wraps a precomputed symmetric distance matrix.
    pub fn from_matrix(matrix: Matrix) -> Result<Self, LinAlgError> {
        if matrix.rows() != matrix.cols() {
            return Err(LinAlgError::InvalidArgument(
                "distance matrix must be square".into(),
            ));
        }
        Ok(TagDistances { matrix })
    }

    /// Number of tags.
    pub fn num_tags(&self) -> usize {
        self.matrix.rows()
    }

    /// Distance between tags `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.matrix[(i, j)]
    }

    /// The full matrix (input to spectral clustering).
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// The most similar other tag to `i` — the `t_sim` of the paper's
    /// Table III evaluation — with its distance. `None` for a 1-tag corpus.
    pub fn nearest(&self, i: usize) -> Option<(usize, f64)> {
        let n = self.num_tags();
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if j == i {
                continue;
            }
            let d = self.get(i, j);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((j, d));
            }
        }
        best
    }

    /// Median of the off-diagonal distances (used to classify pairs as
    /// related/unrelated in the Table I experiment). Uses quickselect
    /// (`select_nth_unstable_by`) instead of a full sort: `O(n²)` expected
    /// instead of `O(n² log n)`.
    pub fn median_offdiag(&self) -> f64 {
        let n = self.num_tags();
        let mut vals = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                vals.push(self.get(i, j));
            }
        }
        if vals.is_empty() {
            return 0.0;
        }
        let mid = vals.len() / 2;
        let (_, median, _) = vals.select_nth_unstable_by(mid, |a, b| {
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        });
        *median
    }
}

/// Embeds tags as rows of `Z = Y⁽²⁾ C` where `Σ = C Cᵀ`, so that
/// `D̂ᵢⱼ = ‖Zᵢ − Zⱼ‖₂`.
///
/// * [`SigmaSource::Lambda2`] — `C = diag(Λ₂)`: `Z` is `Y⁽²⁾` with columns
///   scaled by the mode-2 singular values (Theorem 2).
/// * [`SigmaSource::CoreGram`] — `Σ = S₍₂₎S₍₂₎ᵀ` is eigen-factored
///   (`J₂ × J₂`, small) into `C = V·√Λ` (Theorem 1).
pub fn tag_embedding(
    decomp: &TuckerDecomposition,
    source: SigmaSource,
) -> Result<Matrix, LinAlgError> {
    let y2 = &decomp.factors[1];
    match source {
        SigmaSource::Lambda2 => {
            let mut z = y2.clone();
            for i in 0..z.rows() {
                let row = z.row_mut(i);
                for (x, &l) in row.iter_mut().zip(decomp.lambda2.iter()) {
                    *x *= l;
                }
            }
            Ok(z)
        }
        SigmaSource::CoreGram => {
            let sigma = decomp.sigma_from_core()?;
            let eig = jacobi_eigen(&sigma, 1e-12)?;
            // C = V √Λ (clamping tiny negative round-off eigenvalues).
            let mut c = eig.vectors.clone();
            for j in 0..c.cols() {
                let s = eig.values[j].max(0.0).sqrt();
                for i in 0..c.rows() {
                    c[(i, j)] *= s;
                }
            }
            y2.matmul(&c)
        }
    }
}

/// All-pairs Euclidean distances between the rows of `z`, parallelized over
/// row bands. This is the production distance path of CubeLSI.
///
/// Each thread owns a contiguous band of output rows and computes those
/// rows *completely* (both triangles) in a single parallel pass — there is
/// no serial mirroring step afterwards. Symmetric entries are computed
/// twice, but the duplicated flops parallelize perfectly, whereas the old
/// upper-triangle-then-serial-mirror scheme left an `O(n²)` strided,
/// single-threaded copy on the critical path. With a single worker thread
/// the duplicated flops would be a pure loss, so that case computes the
/// upper triangle once and mirrors it.
pub fn pairwise_distances_from_embedding(z: &Matrix) -> TagDistances {
    let n = z.rows();
    let nthreads = parallel::num_threads().clamp(1, n.max(1));
    let mut matrix = Matrix::zeros(n, n);
    if nthreads <= 1 {
        for i in 0..n {
            let zi = z.row(i);
            for j in (i + 1)..n {
                let d = row_distance(zi, z.row(j));
                matrix[(i, j)] = d;
                matrix[(j, i)] = d;
            }
        }
        return TagDistances { matrix };
    }
    {
        let cols = n;
        let data = matrix.as_mut_slice();
        let bands: Vec<(usize, &mut [f64])> = {
            let rows_per = n.div_ceil(nthreads.max(1)).max(1);
            let mut bands = Vec::new();
            let mut rest = data;
            let mut start = 0usize;
            while !rest.is_empty() {
                let take = (rows_per * cols).min(rest.len());
                let (band, tail) = rest.split_at_mut(take);
                bands.push((start, band));
                start += take / cols;
                rest = tail;
            }
            bands
        };
        crossbeam::thread::scope(|scope| {
            for (start_row, band) in bands {
                scope.spawn(move |_| {
                    let rows = band.len() / cols;
                    for bi in 0..rows {
                        let i = start_row + bi;
                        let zi = z.row(i);
                        let out = &mut band[bi * cols..(bi + 1) * cols];
                        for (j, slot) in out.iter_mut().enumerate() {
                            if j == i {
                                continue;
                            }
                            *slot = row_distance(zi, z.row(j));
                        }
                    }
                });
            }
        })
        .expect("distance worker panicked");
    }
    TagDistances { matrix }
}

/// Euclidean distance between two embedding rows — the shared inner
/// kernel of both the serial and the banded-parallel all-pairs paths
/// (symmetry of the output relies on both using this exact accumulation).
#[inline]
fn row_distance(zi: &[f64], zj: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (a, b) in zi.iter().zip(zj.iter()) {
        let d = a - b;
        acc += d * d;
    }
    acc.sqrt()
}

/// Literal evaluation of the Theorem-1 / Algorithm-1 formula (Eq. 20/21)
/// for one pair: `√(X Σ Xᵀ)` with `X = Y⁽²⁾ᵢ − Y⁽²⁾ⱼ`.
///
/// Used in tests to pin the optimized embedding path to the paper's
/// formula; `O(J₂²)` per call.
pub fn distance_pair_literal(
    decomp: &TuckerDecomposition,
    sigma: &Matrix,
    i: usize,
    j: usize,
) -> f64 {
    let y2 = &decomp.factors[1];
    let x: Vec<f64> = y2
        .row(i)
        .iter()
        .zip(y2.row(j).iter())
        .map(|(a, b)| a - b)
        .collect();
    let sx = sigma.matvec(&x).expect("sigma dims match J2");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(sx.iter()) {
        acc += a * b;
    }
    acc.max(0.0).sqrt()
}

/// Brute-force Eq. 17: materializes `F̂` and measures Frobenius distances
/// between mode-2 slices. **Test-scale only** — this is the computation the
/// paper's theorems exist to avoid.
pub fn brute_force_distances(decomp: &TuckerDecomposition) -> Result<TagDistances, LinAlgError> {
    let fhat = decomp.reconstruct()?;
    let (_, t, _) = fhat.dims();
    let slices: Vec<Matrix> = (0..t).map(|j| fhat.slice_mode2(j)).collect();
    let mut matrix = Matrix::zeros(t, t);
    for i in 0..t {
        for j in (i + 1)..t {
            let d = slices[i].sub(&slices[j])?.frobenius_norm();
            matrix[(i, j)] = d;
            matrix[(j, i)] = d;
        }
    }
    Ok(TagDistances { matrix })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_linalg::subspace::SubspaceOptions;
    use cubelsi_tensor::{tucker_als, SparseTensor3, TuckerConfig};

    fn figure2_decomposition(core: (usize, usize, usize)) -> TuckerDecomposition {
        let quads = [
            (0, 0, 0, 1.0),
            (0, 0, 1, 1.0),
            (1, 0, 1, 1.0),
            (2, 0, 1, 1.0),
            (0, 1, 0, 1.0),
            (1, 2, 2, 1.0),
            (2, 2, 2, 1.0),
        ];
        let f = SparseTensor3::from_entries((3, 3, 3), &quads).unwrap();
        let cfg = TuckerConfig {
            core_dims: core,
            max_iters: 40,
            fit_tol: 1e-12,
            subspace: SubspaceOptions::default(),
            fused_gram: true,
        };
        tucker_als(&f, &cfg).unwrap()
    }

    #[test]
    fn theorem1_matches_brute_force() {
        // The central correctness claim: the shortcut distances equal the
        // Eq. 17 distances on the materialized F̂.
        let d = figure2_decomposition((3, 3, 2));
        let brute = brute_force_distances(&d).unwrap();
        let z = tag_embedding(&d, SigmaSource::CoreGram).unwrap();
        let fast = pairwise_distances_from_embedding(&z);
        assert!(
            fast.matrix().approx_eq(brute.matrix(), 1e-8),
            "Theorem 1 violated:\nfast {:?}\nbrute {:?}",
            fast.matrix(),
            brute.matrix()
        );
    }

    #[test]
    fn theorem2_matches_theorem1_at_convergence() {
        let d = figure2_decomposition((3, 3, 2));
        let z1 = tag_embedding(&d, SigmaSource::CoreGram).unwrap();
        let z2 = tag_embedding(&d, SigmaSource::Lambda2).unwrap();
        let d1 = pairwise_distances_from_embedding(&z1);
        let d2 = pairwise_distances_from_embedding(&z2);
        assert!(d1.matrix().approx_eq(d2.matrix(), 1e-7));
    }

    #[test]
    fn literal_formula_matches_embedding_path() {
        let d = figure2_decomposition((2, 3, 2));
        let sigma = d.sigma_from_core().unwrap();
        let z = tag_embedding(&d, SigmaSource::CoreGram).unwrap();
        let fast = pairwise_distances_from_embedding(&z);
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let lit = distance_pair_literal(&d, &sigma, i, j);
                assert!(
                    (lit - fast.get(i, j)).abs() < 1e-9,
                    "pair ({i},{j}): literal {lit} vs fast {}",
                    fast.get(i, j)
                );
            }
        }
    }

    #[test]
    fn paper_ordering_folk_people_laptop() {
        // §IV-D: after purification D̂(folk, people) < D̂(people, laptop)
        // and D̂(folk, people) < D̂(folk, laptop) — the inequality the raw
        // distances get wrong. Tag ids: 0 = folk, 1 = people, 2 = laptop.
        let d = figure2_decomposition((3, 3, 2));
        let z = tag_embedding(&d, SigmaSource::CoreGram).unwrap();
        let dist = pairwise_distances_from_embedding(&z);
        let d12 = dist.get(0, 1);
        let d13 = dist.get(0, 2);
        let d23 = dist.get(1, 2);
        assert!(d12 < d23, "D̂12 = {d12} must be < D̂23 = {d23} (Eq. 19)");
        assert!(d12 < d13, "D̂12 = {d12} must be < D̂13 = {d13} (Eq. 18)");
    }

    #[test]
    fn distances_are_a_semimetric() {
        let d = figure2_decomposition((3, 3, 2));
        let z = tag_embedding(&d, SigmaSource::Lambda2).unwrap();
        let dist = pairwise_distances_from_embedding(&z);
        let n = dist.num_tags();
        for i in 0..n {
            assert_eq!(dist.get(i, i), 0.0);
            for j in 0..n {
                assert!(dist.get(i, j) >= 0.0);
                assert_eq!(dist.get(i, j), dist.get(j, i));
            }
        }
        // Triangle inequality holds for Euclidean embeddings.
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    assert!(dist.get(i, j) <= dist.get(i, k) + dist.get(k, j) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn nearest_and_median() {
        let d = figure2_decomposition((3, 3, 2));
        let z = tag_embedding(&d, SigmaSource::CoreGram).unwrap();
        let dist = pairwise_distances_from_embedding(&z);
        // folk's nearest tag is people (they share resources and users).
        let (nearest, _) = dist.nearest(0).unwrap();
        assert_eq!(nearest, 1);
        assert!(dist.median_offdiag() > 0.0);
        // Single-tag corpus has no nearest.
        let lone = TagDistances::from_matrix(Matrix::zeros(1, 1)).unwrap();
        assert!(lone.nearest(0).is_none());
        assert_eq!(lone.median_offdiag(), 0.0);
    }

    #[test]
    fn from_matrix_validates_shape() {
        assert!(TagDistances::from_matrix(Matrix::zeros(2, 3)).is_err());
        assert!(TagDistances::from_matrix(Matrix::zeros(3, 3)).is_ok());
    }

    #[test]
    fn full_rank_embedding_reproduces_raw_slice_distances() {
        // With no trimming at all, F̂ = F, so the purified distances reduce
        // to the raw Frobenius distances of §IV-A: D12 = √3, D13 = √6,
        // D23 = √3 (Eqs. 9, 12, 13).
        let d = figure2_decomposition((3, 3, 3));
        let z = tag_embedding(&d, SigmaSource::CoreGram).unwrap();
        let dist = pairwise_distances_from_embedding(&z);
        assert!((dist.get(0, 1) - 3.0f64.sqrt()).abs() < 1e-6);
        assert!((dist.get(0, 2) - 6.0f64.sqrt()).abs() < 1e-6);
        assert!((dist.get(1, 2) - 3.0f64.sqrt()).abs() < 1e-6);
    }
}
