//! Offline stand-in for the `crossbeam` crate.
//!
//! Two subsets are provided, matching what the workspace actually uses:
//!
//! * [`thread`] — `crossbeam::thread::scope` fork–join over disjoint
//!   slices; since Rust 1.63 the standard library provides scoped
//!   threads natively, so this is a thin adapter that keeps the
//!   crossbeam call sites unchanged while delegating to
//!   [`std::thread::scope`].
//! * [`deque`] — the injector + work-stealing-deque topology behind the
//!   `cubelsi-core` persistent query executor, implemented mutex-based
//!   (and therefore 100 % safe code) rather than lock-free; see the
//!   module docs for the tradeoff.

pub mod deque;

pub mod thread {
    /// A scope for spawning borrowing threads (adapter over
    /// [`std::thread::Scope`]).
    ///
    /// Unlike crossbeam's `&Scope`, this is a `Copy` value; spawn closures
    /// receive it by value, which call sites written as `|_| …` accept
    /// unchanged.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it can
        /// spawn nested work, mirroring crossbeam's signature shape.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(scope)))
        }
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// returns once every spawned thread has finished.
    ///
    /// Panics from unjoined children propagate as a panic here (std
    /// semantics) rather than as an `Err` — every call site in this
    /// workspace immediately `expect`s the result, so the observable
    /// behavior is identical.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1usize, 2, 3, 4];
            let total = AtomicUsize::new(0);
            super::scope(|scope| {
                for chunk in data.chunks(2) {
                    scope.spawn(|_| {
                        total.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                    });
                }
            })
            .unwrap();
            assert_eq!(total.load(Ordering::Relaxed), 10);
        }

        #[test]
        fn handles_return_values() {
            let out = super::scope(|scope| {
                let h1 = scope.spawn(|_| 21);
                let h2 = scope.spawn(|_| 21);
                h1.join().unwrap() + h2.join().unwrap()
            })
            .unwrap();
            assert_eq!(out, 42);
        }
    }
}
