//! Offline stand-in for `crossbeam::deque`.
//!
//! The executor in `cubelsi-core` needs the classic injector +
//! work-stealing-deque topology: batches land in a shared [`Injector`],
//! each pool worker owns a [`Worker`] deque it pops LIFO, and idle
//! workers (or the submitting caller) relieve stragglers through
//! [`Stealer`] handles that take from the opposite (FIFO) end.
//!
//! Unlike the real crate this stand-in is mutex-based rather than
//! lock-free: every queue is a `Mutex<VecDeque<T>>`. That keeps the
//! module 100 % safe code (the vendored tree is excluded from the
//! workspace unsafe audit precisely because it contains none) and is
//! plenty for the executor's granularity — tasks are whole queries or
//! query chunks, microseconds of work each, so a short critical section
//! per transfer is noise. Two API consequences:
//!
//! * [`Steal`] has no `Retry` variant — a mutex never observes the torn
//!   states a lock-free deque has to retry around.
//! * [`Injector::steal_batch_and_pop`] moves a bounded batch under one
//!   lock acquisition, which is the mutex-world analogue of the real
//!   crate's batched steal.
//!
//! Capacity is retained by every `VecDeque` across calls, so a warmed
//! executor pushes and pops without heap allocation (the `cubelsi`
//! zero-alloc integration test measures through this module).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Largest number of tasks one [`Injector::steal_batch_and_pop`] call
/// moves into the destination worker. Bounds how much a single worker
/// can hoard from a freshly submitted batch before its siblings get a
/// chance to pick up the rest.
const MAX_BATCH: usize = 16;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Queue state is a plain VecDeque, valid after any panic elsewhere.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
}

impl<T> Steal<T> {
    /// Converts into `Option`, `Success` → `Some`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            Steal::Empty => None,
        }
    }
}

/// The worker-owned end of a deque: LIFO push/pop for locality (the
/// task most recently made runnable has the hottest footprint).
#[derive(Debug)]
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates an empty worker deque.
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// A new steal handle onto this deque (any number may exist).
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Pushes a task onto the owner's (LIFO) end.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Pops the most recently pushed task.
    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_back()
    }

    /// Whether the deque is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }
}

/// A steal handle onto one worker's deque: takes from the FIFO end,
/// opposite the owner, so thief and owner contend as little as possible.
#[derive(Debug)]
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the victim's FIFO end.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

/// The shared FIFO entry queue every submitted batch lands in; workers
/// drain it in bounded batches into their local deques.
#[derive(Debug, Default)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task at the tail.
    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    /// Takes one task from the head.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Moves up to [`MAX_BATCH`] (but at most half the queue, so other
    /// workers still find work) tasks into `dest`, returning one of them
    /// directly. `Empty` iff the injector held nothing.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut queue = lock(&self.queue);
        let first = match queue.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        let extra = queue.len().div_ceil(2).min(MAX_BATCH - 1);
        if extra > 0 {
            let mut dest_queue = lock(&dest.queue);
            for _ in 0..extra {
                match queue.pop_front() {
                    Some(t) => dest_queue.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// Whether the injector is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    /// Current queue length (racy, advisory only).
    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_batch_steal_bounds_the_grab() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        // First stolen task comes back directly; at most MAX_BATCH - 1
        // and at most half the remainder land in the local deque.
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        let mut local = 0;
        while w.pop().is_some() {
            local += 1;
        }
        assert!(local < MAX_BATCH, "hoarded {local} tasks");
        assert!(!inj.is_empty(), "siblings must still find work");
    }

    #[test]
    fn injector_is_fifo_across_threads() {
        let inj: Injector<usize> = Injector::new();
        for i in 0..64 {
            inj.push(i);
        }
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Steal::Success(t) = inj.steal() {
                        lock(&seen).push(t);
                    }
                });
            }
        });
        let mut seen = seen.into_inner().unwrap_or_else(PoisonError::into_inner);
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
    }
}
