//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros the workspace's
//! property-based tests use: range strategies over numeric types, tuple
//! strategies, [`Just`], `collection::vec`, `prop_map` / `prop_flat_map`,
//! the [`proptest!`] macro with `#![proptest_config(…)]`, and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and deterministic seed instead of a minimized input), and
//! generation is driven by the vendored SplitMix64 `rand`. Each test's RNG
//! stream is seeded from the test name, so runs are fully deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies during generation.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner for the given test name and case index.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Error carried out of a failing property (via `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result alias used by generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.new_value(runner))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u32, u64, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.hi_exclusive > self.size.lo + 1 {
                runner.rng().gen_range(self.size.lo..self.size.hi_exclusive)
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// `proptest::collection::vec(strategy, len)` — `len` may be a `usize`
    /// or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Commonly used items.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with a value-revealing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
}

/// `prop_assert!(a != b)` with a value-revealing message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let left = $a;
        let right = $b;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Declares property tests. Supports the subset
/// `proptest! { #![proptest_config(expr)] #[test] fn name(arg in strategy, …) { … } … }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut runner =
                        $crate::TestRunner::deterministic(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut runner);)*
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut runner = crate::TestRunner::deterministic("bounds", 0);
        for _ in 0..200 {
            let x = Strategy::new_value(&(-3.0f64..3.0), &mut runner);
            assert!((-3.0..3.0).contains(&x));
            let n = Strategy::new_value(&(1usize..=6), &mut runner);
            assert!((1..=6).contains(&n));
            let v = Strategy::new_value(&crate::collection::vec(0usize..5, 0..20), &mut runner);
            assert!(v.len() < 20);
            assert!(v.iter().all(|&e| e < 5));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut runner = crate::TestRunner::deterministic("compose", 1);
        let strat = (1usize..=4, 1usize..=4)
            .prop_flat_map(|(r, c)| (Just((r, c)), crate::collection::vec(0.0f64..1.0, r * c)))
            .prop_map(|((r, c), data)| (r, c, data));
        for _ in 0..100 {
            let (r, c, data) = Strategy::new_value(&strat, &mut runner);
            assert_eq!(data.len(), r * c);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0usize..100, v in crate::collection::vec(0.0f64..1.0, 3)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            @with_config (ProptestConfig::with_cases(4))
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
