//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides exactly the API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range` and `gen_bool`. The generator is SplitMix64 — statistically
//! solid for synthetic-data generation and fully deterministic per seed,
//! which is all the workspace requires (it is *not* cryptographic, and its
//! streams differ from upstream `rand`'s StdRng).

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain (`[0, 1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait StandardSample {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_from(rng) * (hi - lo)
    }
}

/// The user-facing generator interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample over the type's natural domain.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_from(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x5DEECE66D_u64.wrapping_mul(0x9E3779B97F4A7C15),
            };
            let _ = rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5usize..=5);
            assert_eq!(y, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
