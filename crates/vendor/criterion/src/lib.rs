//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple but honest
//! measurement loop: warm-up, then `sample_size` timed samples whose median,
//! mean, and min are reported. Supports the `--test` flag (each benchmark
//! body runs exactly once, for CI smoke runs) and positional name filters,
//! so `cargo bench --bench query -- --test` and
//! `cargo bench -- query_throughput` behave as with real criterion.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation; `Elements` makes the report include ops/sec.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// When true, run the body exactly once and skip measurement.
    test_mode: bool,
    /// Measured mean time per iteration, if a measurement ran.
    measured: Option<Sample>,
    sample_size: usize,
    target_time: Duration,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    median: Duration,
    min: Duration,
}

impl Bencher {
    /// Measures `f`, called repeatedly. In `--test` mode runs once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f());
            return;
        }
        // Warm-up + calibration: find an iteration count whose batch takes
        // long enough for the clock to resolve well.
        let mut iters_per_batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                std_black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_batch >= 1 << 20 {
                break;
            }
            iters_per_batch *= 4;
        }
        // Timed samples.
        let samples = self.sample_size.max(2);
        let per_sample_budget = self.target_time / samples as u32;
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            let mut n = 0u64;
            loop {
                for _ in 0..iters_per_batch {
                    std_black_box(f());
                }
                n += iters_per_batch;
                if t0.elapsed() >= per_sample_budget {
                    break;
                }
            }
            times.push(t0.elapsed() / n as u32);
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        self.measured = Some(Sample { mean, median, min });
    }
}

/// Shared benchmark runner configuration.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    default_sample_size: usize,
    default_target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filters: Vec::new(),
            default_sample_size: 20,
            default_target_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Applies CLI arguments: `--test` → smoke mode; positional arguments
    /// are substring filters; criterion/cargo flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                | "--baseline" | "--profile-time" => {
                    let _ = args.next();
                }
                other if other.starts_with("--") => {}
                filter => self.filters.push(filter.to_owned()),
            }
        }
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            target_time: None,
            throughput: None,
        }
    }

    /// Standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        let target_time = self.default_target_time;
        run_one(self, None, id, None, sample_size, target_time, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    target_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.target_time = Some(t);
        self
    }

    /// Annotates subsequent benchmarks with a throughput unit.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let target_time = self
            .target_time
            .unwrap_or(self.criterion.default_target_time);
        run_one(
            self.criterion,
            Some(&self.name),
            &id.id,
            self.throughput,
            sample_size,
            target_time,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    target_time: Duration,
    mut f: F,
) {
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    if !criterion.selected(&full_id) {
        return;
    }
    let mut bencher = Bencher {
        test_mode: criterion.test_mode,
        measured: None,
        sample_size,
        target_time,
    };
    f(&mut bencher);
    if criterion.test_mode {
        println!("test {full_id} ... ok");
        return;
    }
    match bencher.measured {
        Some(s) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if s.median > Duration::ZERO => {
                    let per_sec = n as f64 / s.median.as_secs_f64();
                    format!("  thrpt: {per_sec:.0} elem/s")
                }
                Some(Throughput::Bytes(n)) if s.median > Duration::ZERO => {
                    let per_sec = n as f64 / s.median.as_secs_f64() / (1024.0 * 1024.0);
                    format!("  thrpt: {per_sec:.1} MiB/s")
                }
                _ => String::new(),
            };
            println!(
                "{full_id:<50} time: [min {:?}  med {:?}  mean {:?}]{rate}",
                s.min, s.median, s.mean
            );
        }
        None => println!("{full_id:<50} (no measurement)"),
    }
}

/// Declares a group-runner function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.bench_function("case", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn filters_select_by_substring() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["wanted".into()],
            ..Criterion::default()
        };
        let mut hit = false;
        let mut miss = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("wanted_case", |b| b.iter(|| hit = true));
        group.bench_function("other", |b| b.iter(|| miss = true));
        group.finish();
        assert!(hit && !miss);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("10x10").id, "10x10");
    }
}
