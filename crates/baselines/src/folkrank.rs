//! The FolkRank baseline (§II, [Hotho et al. 2006]): resources, taggers and
//! tags form an undirected weighted tripartite graph; query-relevant weight
//! is propagated PageRank-style:
//!
//! ```text
//! w ← d·A·w + (1 − d)·p
//! ```
//!
//! where `A` is the row-stochastic adjacency matrix, `p` the preference
//! vector boosting the query's tag vertices, and `d` the damping constant.
//! Resources are ranked by their converged weight.
//!
//! Both the plain propagation described in the paper and the *differential*
//! FolkRank of Hotho et al. (`w = w(p) − w(p₀)`, which subtracts the
//! query-independent popularity baseline) are implemented; the differential
//! variant is the default, matching the original FolkRank publication.

use crate::Ranker;
use cubelsi_core::RankedResource;
use cubelsi_folksonomy::{Folksonomy, ResourceId, TagId};
use std::collections::HashMap;

/// Configuration of the FolkRank ranker.
#[derive(Debug, Clone)]
pub struct FolkRankConfig {
    /// Damping constant `d ∈ [0, 1]` — influence of propagation versus the
    /// random surfer (Hotho et al. use 0.7).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iters: usize,
    /// L1 convergence tolerance on the weight vector.
    pub tol: f64,
    /// Fraction of the preference mass concentrated on query tag vertices
    /// (the rest is spread uniformly).
    pub preference_boost: f64,
    /// Use the differential scheme `w(p) − w(p₀)`.
    pub differential: bool,
}

impl Default for FolkRankConfig {
    fn default() -> Self {
        FolkRankConfig {
            damping: 0.7,
            max_iters: 60,
            tol: 1e-9,
            preference_boost: 0.5,
            differential: true,
        }
    }
}

/// The tripartite-graph ranker.
pub struct FolkRank {
    config: FolkRankConfig,
    /// Adjacency lists with row-stochastic weights. Vertices are laid out
    /// as `[users | tags | resources]`.
    adjacency: Vec<Vec<(u32, f64)>>,
    num_users: usize,
    num_tags: usize,
    num_resources: usize,
    /// Baseline weights under the uniform preference (for differential).
    baseline: Vec<f64>,
}

impl FolkRank {
    /// Builds the tripartite graph. Edge weights are co-occurrence counts:
    /// `w(u,t) = |{r : (u,t,r) ∈ Y}|`, `w(t,r) = |users(t,r)|`,
    /// `w(u,r) = |{t : (u,t,r) ∈ Y}|` — then each row is normalized.
    pub fn build(f: &Folksonomy, config: &FolkRankConfig) -> Self {
        let nu = f.num_users();
        let nt = f.num_tags();
        let nr = f.num_resources();
        let n = nu + nt + nr;

        let mut edge_weights: HashMap<(u32, u32), f64> = HashMap::new();
        for a in f.assignments() {
            let u = a.user.index() as u32;
            let t = (nu + a.tag.index()) as u32;
            let r = (nu + nt + a.resource.index()) as u32;
            *edge_weights.entry((u, t)).or_insert(0.0) += 1.0;
            *edge_weights.entry((t, r)).or_insert(0.0) += 1.0;
            *edge_weights.entry((u, r)).or_insert(0.0) += 1.0;
        }
        let mut adjacency: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for (&(a, b), &w) in &edge_weights {
            adjacency[a as usize].push((b, w));
            adjacency[b as usize].push((a, w));
        }
        // Row-stochastic normalization.
        for row in &mut adjacency {
            let total: f64 = row.iter().map(|&(_, w)| w).sum();
            if total > 0.0 {
                for (_, w) in row.iter_mut() {
                    *w /= total;
                }
            }
            row.sort_unstable_by_key(|&(v, _)| v);
        }

        let mut ranker = FolkRank {
            config: config.clone(),
            adjacency,
            num_users: nu,
            num_tags: nt,
            num_resources: nr,
            baseline: Vec::new(),
        };
        // Query-independent run for the differential scheme.
        let uniform = ranker.uniform_preference();
        ranker.baseline = ranker.propagate(&uniform);
        ranker
    }

    fn num_vertices(&self) -> usize {
        self.num_users + self.num_tags + self.num_resources
    }

    fn uniform_preference(&self) -> Vec<f64> {
        let n = self.num_vertices();
        vec![1.0 / n as f64; n]
    }

    /// Preference vector with `preference_boost` of the mass on the query
    /// tags and the remainder uniform (the paper's "random surfer … giving
    /// a higher weight to those tag vertices that appear in the query").
    fn query_preference(&self, tags: &[TagId]) -> Vec<f64> {
        let n = self.num_vertices();
        let valid: Vec<usize> = tags
            .iter()
            .map(|t| t.index())
            .filter(|&t| t < self.num_tags)
            .collect();
        if valid.is_empty() {
            return self.uniform_preference();
        }
        let boost = self.config.preference_boost.clamp(0.0, 1.0);
        let mut p = vec![(1.0 - boost) / n as f64; n];
        let per_tag = boost / valid.len() as f64;
        for t in valid {
            p[self.num_users + t] += per_tag;
        }
        p
    }

    /// Runs `w ← d·A·w + (1 − d)·p` to convergence.
    fn propagate(&self, preference: &[f64]) -> Vec<f64> {
        let n = self.num_vertices();
        let d = self.config.damping;
        let mut w = preference.to_vec();
        let mut next = vec![0.0f64; n];
        for _ in 0..self.config.max_iters {
            for (i, slot) in next.iter_mut().enumerate() {
                let mut acc = 0.0;
                for &(j, a) in &self.adjacency[i] {
                    acc += a * w[j as usize];
                }
                *slot = d * acc + (1.0 - d) * preference[i];
            }
            let delta: f64 = w.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut w, &mut next);
            if delta < self.config.tol {
                break;
            }
        }
        w
    }

    /// The converged query-independent weights (diagnostics).
    pub fn baseline_weights(&self) -> &[f64] {
        &self.baseline
    }
}

impl Ranker for FolkRank {
    fn name(&self) -> &'static str {
        "FolkRank"
    }

    fn search_ids(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource> {
        let known: Vec<TagId> = tags
            .iter()
            .copied()
            .filter(|t| t.index() < self.num_tags)
            .collect();
        if known.is_empty() {
            return Vec::new();
        }
        let p = self.query_preference(&known);
        let w = self.propagate(&p);
        let offset = self.num_users + self.num_tags;
        let mut ranked: Vec<RankedResource> = (0..self.num_resources)
            .map(|r| {
                let raw = w[offset + r];
                let score = if self.config.differential {
                    raw - self.baseline[offset + r]
                } else {
                    raw
                };
                RankedResource {
                    resource: ResourceId::from_index(r),
                    score,
                }
            })
            .filter(|rr| rr.score > 0.0)
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.resource.cmp(&b.resource))
        });
        if top_k > 0 {
            ranked.truncate(top_k);
        }
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::store::figure2_example;

    #[test]
    fn query_tag_pulls_its_resources_up() {
        let f = figure2_example();
        let fr = FolkRank::build(&f, &FolkRankConfig::default());
        let laptop = f.tag_id("laptop").unwrap();
        let hits = fr.search_ids(&[laptop], 0);
        assert!(!hits.is_empty());
        // r3 is the only laptop-tagged resource: must rank first.
        assert_eq!(f.resource_name(hits[0].resource), "r3");
    }

    #[test]
    fn plain_mode_weights_are_positive_and_sum_bounded() {
        let f = figure2_example();
        let cfg = FolkRankConfig {
            differential: false,
            ..Default::default()
        };
        let fr = FolkRank::build(&f, &cfg);
        let folk = f.tag_id("folk").unwrap();
        let hits = fr.search_ids(&[folk], 0);
        // Plain mode returns every resource with positive weight.
        assert_eq!(hits.len(), f.num_resources());
        for h in &hits {
            assert!(h.score > 0.0);
        }
        // folk resources (r1, r2) outrank r3.
        let names: Vec<&str> = hits.iter().map(|h| f.resource_name(h.resource)).collect();
        assert!(names[0] == "r1" || names[0] == "r2", "got {names:?}");
    }

    #[test]
    fn differential_mode_suppresses_popular_but_irrelevant() {
        let f = figure2_example();
        let fr = FolkRank::build(&f, &FolkRankConfig::default());
        let laptop = f.tag_id("laptop").unwrap();
        let hits = fr.search_ids(&[laptop], 0);
        let names: Vec<&str> = hits.iter().map(|h| f.resource_name(h.resource)).collect();
        // r2 is globally popular (3 taggers) but unrelated to laptop;
        // differential scoring must not rank it above r3.
        let pos_r3 = names.iter().position(|&n| n == "r3").unwrap();
        if let Some(pos_r2) = names.iter().position(|&n| n == "r2") {
            assert!(pos_r3 < pos_r2, "r3 must outrank r2: {names:?}");
        }
    }

    #[test]
    fn baseline_weights_sum_to_about_one() {
        let f = figure2_example();
        let fr = FolkRank::build(&f, &FolkRankConfig::default());
        let total: f64 = fr.baseline_weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total baseline mass {total}");
    }

    #[test]
    fn unknown_or_empty_queries() {
        let f = figure2_example();
        let fr = FolkRank::build(&f, &FolkRankConfig::default());
        assert!(fr.search_ids(&[], 0).is_empty());
        assert!(fr.search_ids(&[TagId::from_index(42)], 0).is_empty());
    }

    #[test]
    fn top_k_truncation_and_order() {
        let f = figure2_example();
        let cfg = FolkRankConfig {
            differential: false,
            ..Default::default()
        };
        let fr = FolkRank::build(&f, &cfg);
        let folk = f.tag_id("folk").unwrap();
        let all = fr.search_ids(&[folk], 0);
        let top1 = fr.search_ids(&[folk], 1);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].resource, all[0].resource);
        for w in all.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn damping_zero_returns_preference_ranking() {
        // d = 0 ⇒ w = p: resources keep only uniform preference, so the
        // differential is 0 everywhere and plain mode ranks all equally.
        let f = figure2_example();
        let cfg = FolkRankConfig {
            damping: 0.0,
            differential: false,
            ..Default::default()
        };
        let fr = FolkRank::build(&f, &cfg);
        let folk = f.tag_id("folk").unwrap();
        let hits = fr.search_ids(&[folk], 0);
        let s0 = hits[0].score;
        assert!(hits.iter().all(|h| (h.score - s0).abs() < 1e-12));
    }
}
