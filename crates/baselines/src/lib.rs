//! The five baseline rankers of the CubeLSI evaluation (§VI-B).
//!
//! | method | tagger-aware? | semantic analysis | module |
//! |---|---|---|---|
//! | Freq | yes | none | [`freq`] |
//! | BOW | no | none (tag-level tf-idf) | [`bow`] |
//! | LSI | no | SVD on the tag×resource matrix | [`lsi`] |
//! | CubeSim | yes | none (raw tensor slice distances) | [`cubesim`] |
//! | FolkRank | yes | graph weight propagation | [`folkrank`] |
//!
//! All rankers implement the [`Ranker`] trait so the evaluation harness can
//! drive them uniformly; [`CubeLsiRanker`] wraps the core engine behind the
//! same interface.

pub mod bow;
pub mod cubesim;
pub mod folkrank;
pub mod freq;
pub mod lsi;

use cubelsi_core::{CubeLsi, RankedResource};
use cubelsi_folksonomy::TagId;

pub use bow::BowRanker;
pub use cubesim::{CubeSim, CubeSimMode, CubeSimReport};
pub use folkrank::{FolkRank, FolkRankConfig};
pub use freq::FreqRanker;
pub use lsi::{LsiConfig, LsiRanker};

/// A uniform interface over all six ranking methods of the evaluation.
pub trait Ranker {
    /// Short method name as used in the paper's tables ("CubeLSI", "BOW"…).
    fn name(&self) -> &'static str;

    /// Ranks resources for a query of tag ids. `top_k = 0` → no truncation.
    fn search_ids(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource>;

    /// Answers a batch of queries, returning ranked lists in query order.
    /// The default runs queries sequentially; engines with a native batch
    /// path (CubeLSI's parallel [`cubelsi_core::QueryEngine`]) override it.
    fn search_batch_ids(&self, queries: &[Vec<TagId>], top_k: usize) -> Vec<Vec<RankedResource>> {
        queries.iter().map(|q| self.search_ids(q, top_k)).collect()
    }
}

/// [`Ranker`] adapter for the core CubeLSI engine, served by the pruned
/// top-k query engine.
pub struct CubeLsiRanker(pub CubeLsi);

impl Ranker for CubeLsiRanker {
    fn name(&self) -> &'static str {
        "CubeLSI"
    }

    fn search_ids(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource> {
        self.0.search_ids(tags, top_k)
    }

    fn search_batch_ids(&self, queries: &[Vec<TagId>], top_k: usize) -> Vec<Vec<RankedResource>> {
        self.0.search_batch(queries, top_k)
    }
}
