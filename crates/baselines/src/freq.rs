//! The Freq baseline (§VI-B):
//!
//! ```text
//! Sim_freq(q, r) = Σ_{t ∈ q ∩ tags(r)} |users(t, r)|  /  Σ_{t ∈ tags(r)} |users(t, r)|
//! ```
//!
//! "If a user tags r, how likely does he use some tags in q to do so?" —
//! tagger-aware but with no semantic analysis at all.

use crate::Ranker;
use cubelsi_core::RankedResource;
use cubelsi_folksonomy::{Folksonomy, ResourceId, TagId};

/// The Freq ranker. Precomputes per-resource assignment totals.
pub struct FreqRanker {
    /// `Σ_{t∈tags(r)} |users(t, r)|` per resource — this equals the number
    /// of assignments of `r` because `Y` is a set.
    totals: Vec<f64>,
    /// Inverted index: tag → `(resource, |users(t, r)|)`.
    postings: Vec<Vec<(u32, f64)>>,
    num_resources: usize,
}

impl FreqRanker {
    /// Builds the ranker from a folksonomy.
    pub fn build(f: &Folksonomy) -> Self {
        let num_resources = f.num_resources();
        let mut totals = vec![0.0; num_resources];
        for (r, total) in totals.iter_mut().enumerate() {
            *total = f.resource_assignments(ResourceId::from_index(r)).len() as f64;
        }
        let mut postings = Vec::with_capacity(f.num_tags());
        for t in 0..f.num_tags() {
            postings.push(
                f.tag_resource_counts(TagId::from_index(t))
                    .into_iter()
                    .map(|(r, c)| (r.index() as u32, c as f64))
                    .collect(),
            );
        }
        FreqRanker {
            totals,
            postings,
            num_resources,
        }
    }
}

impl Ranker for FreqRanker {
    fn name(&self) -> &'static str {
        "Freq"
    }

    fn search_ids(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource> {
        let mut numerator = vec![0.0f64; self.num_resources];
        // q ∩ tags(r): dedupe query tags so a repeated tag is not counted
        // twice (q is a set of tags).
        let mut seen = Vec::new();
        for t in tags {
            if t.index() >= self.postings.len() || seen.contains(&t.index()) {
                continue;
            }
            seen.push(t.index());
            for &(r, c) in &self.postings[t.index()] {
                numerator[r as usize] += c;
            }
        }
        let mut ranked: Vec<RankedResource> = numerator
            .iter()
            .enumerate()
            .filter(|(_, &num)| num > 0.0)
            .map(|(r, &num)| RankedResource {
                resource: ResourceId::from_index(r),
                score: num / self.totals[r],
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.resource.cmp(&b.resource))
        });
        if top_k > 0 {
            ranked.truncate(top_k);
        }
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::store::figure2_example;
    use cubelsi_folksonomy::FolksonomyBuilder;

    #[test]
    fn figure2_scores_match_the_formula() {
        let f = figure2_example();
        let ranker = FreqRanker::build(&f);
        let folk = f.tag_id("folk").unwrap();
        let hits = ranker.search_ids(&[folk], 0);
        // r2: 3 folk assignments of 3 total → 1.0. r1: 1 of 2 → 0.5.
        assert_eq!(hits.len(), 2);
        assert_eq!(f.resource_name(hits[0].resource), "r2");
        assert!((hits[0].score - 1.0).abs() < 1e-12);
        assert_eq!(f.resource_name(hits[1].resource), "r1");
        assert!((hits[1].score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scores_are_within_unit_interval() {
        let f = figure2_example();
        let ranker = FreqRanker::build(&f);
        for t in 0..f.num_tags() {
            for h in ranker.search_ids(&[TagId::from_index(t)], 0) {
                assert!(h.score > 0.0 && h.score <= 1.0);
            }
        }
    }

    #[test]
    fn multi_tag_query_sums_numerators() {
        let f = figure2_example();
        let ranker = FreqRanker::build(&f);
        let folk = f.tag_id("folk").unwrap();
        let people = f.tag_id("people").unwrap();
        let hits = ranker.search_ids(&[folk, people], 0);
        // r1 has folk(1) + people(1) of 2 total → score 1.0.
        let r1 = hits
            .iter()
            .find(|h| f.resource_name(h.resource) == "r1")
            .unwrap();
        assert!((r1.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_query_tags_do_not_double_count() {
        let f = figure2_example();
        let ranker = FreqRanker::build(&f);
        let folk = f.tag_id("folk").unwrap();
        let once = ranker.search_ids(&[folk], 0);
        let twice = ranker.search_ids(&[folk, folk], 0);
        assert_eq!(once.len(), twice.len());
        for (a, b) in once.iter().zip(twice.iter()) {
            assert_eq!(a.score, b.score);
        }
    }

    #[test]
    fn no_match_and_truncation() {
        let f = figure2_example();
        let ranker = FreqRanker::build(&f);
        assert!(ranker.search_ids(&[], 0).is_empty());
        assert!(ranker.search_ids(&[TagId::from_index(99)], 0).is_empty());
        let folk = f.tag_id("folk").unwrap();
        assert_eq!(ranker.search_ids(&[folk], 1).len(), 1);
    }

    #[test]
    fn empty_resource_denominator_is_never_hit() {
        // A resource with zero assignments can never have numerator > 0,
        // so Sim_freq's 0-case is handled by the > 0 filter.
        let mut b = FolksonomyBuilder::new();
        b.intern_resource("ghost");
        b.add("u", "t", "real");
        let f = b.build();
        let ranker = FreqRanker::build(&f);
        let t = f.tag_id("t").unwrap();
        let hits = ranker.search_ids(&[t], 0);
        assert_eq!(hits.len(), 1);
        assert_eq!(f.resource_name(hits[0].resource), "real");
    }
}
