//! The LSI baseline (§VI-B): project the third-order tensor onto the 2D
//! tag×resource matrix (discarding the tagger dimension, Figure 3), apply
//! a truncated SVD, and run the *same* concept-distillation and retrieval
//! stages as CubeLSI.
//!
//! "Essentially, LSI is the same as CubeLSI except that the user (tagger)
//! dimension is ignored" — so everything downstream of the distance matrix
//! is shared code, and any quality gap is attributable to the tagger
//! dimension.

use crate::Ranker;
use cubelsi_core::{
    pairwise_distances_from_embedding, ConceptIndex, ConceptModel, RankedResource, TagDistances,
};
use cubelsi_folksonomy::{Folksonomy, TagId};
use cubelsi_linalg::spectral::{KSelection, SpectralConfig};
use cubelsi_linalg::subspace::SubspaceOptions;
use cubelsi_linalg::svd::truncated_svd;
use cubelsi_linalg::{CsrMatrix, LinAlgError, Matrix};

/// Configuration of the LSI baseline.
#[derive(Debug, Clone)]
pub struct LsiConfig {
    /// Rank of the truncated SVD — the analogue of `J₂ = |T|/c₂`.
    /// `None` derives it from `reduction_ratio`.
    pub rank: Option<usize>,
    /// Reduction ratio used when `rank` is `None` (paper default 50).
    pub reduction_ratio: f64,
    /// Number of concepts (`None` → 95 %-variance rule).
    pub num_concepts: Option<usize>,
    /// Upper bound on concepts for the variance rule.
    pub max_concepts: usize,
    /// Affinity bandwidth σ (`None` → median heuristic).
    pub sigma: Option<f64>,
    /// Seed for the stochastic stages.
    pub seed: u64,
}

impl Default for LsiConfig {
    fn default() -> Self {
        LsiConfig {
            rank: None,
            reduction_ratio: 50.0,
            num_concepts: None,
            max_concepts: 64,
            sigma: None,
            seed: 0x151,
        }
    }
}

/// The LSI ranker: SVD-purified tag distances + shared concept retrieval.
pub struct LsiRanker {
    distances: TagDistances,
    concepts: ConceptModel,
    index: ConceptIndex,
    singular_values: Vec<f64>,
}

impl LsiRanker {
    /// Builds the LSI pipeline on the user-aggregated tag×resource matrix.
    pub fn build(f: &Folksonomy, config: &LsiConfig) -> Result<Self, LinAlgError> {
        let distances = Self::distances_only(f, config)?;
        let (distances, singular_values) = distances;
        let spectral = SpectralConfig {
            sigma: config.sigma,
            k: match config.num_concepts {
                Some(k) => KSelection::Fixed(k),
                None => KSelection::VarianceCovered {
                    fraction: 0.95,
                    max_k: config.max_concepts,
                },
            },
            kmeans: cubelsi_linalg::kmeans::KMeansConfig {
                seed: config.seed ^ 0x6b6d,
                ..Default::default()
            },
            subspace: SubspaceOptions {
                seed: config.seed ^ 0x5bc7,
                ..Default::default()
            },
            solver: cubelsi_linalg::spectral::SpectralSolver::default(),
        };
        let concepts = ConceptModel::distill(&distances, &spectral)?;
        let index = ConceptIndex::build(f, &concepts);
        Ok(LsiRanker {
            distances,
            concepts,
            index,
            singular_values,
        })
    }

    /// Runs only the semantic-analysis stage, returning the tag distance
    /// matrix (used by the Table III accuracy experiment) and the singular
    /// values.
    pub fn distances_only(
        f: &Folksonomy,
        config: &LsiConfig,
    ) -> Result<(TagDistances, Vec<f64>), LinAlgError> {
        let t = f.num_tags();
        let r = f.num_resources();
        let matrix = CsrMatrix::from_triples(t, r, &f.tag_resource_triples())?;
        let rank = config
            .rank
            .unwrap_or_else(|| ((t as f64 / config.reduction_ratio).round() as usize).max(1))
            .clamp(1, t.min(r));
        let svd = truncated_svd(
            &matrix,
            rank,
            &SubspaceOptions {
                seed: config.seed ^ 0x51d,
                ..Default::default()
            },
        )?;
        // Tag embedding in latent space: rows of U scaled by Σ — the exact
        // 2D analogue of the Theorem-1 embedding (distances equal Frobenius
        // distances between rows of the rank-k purified matrix U Σ Vᵀ).
        let mut z = svd.u.clone();
        for i in 0..z.rows() {
            let row = z.row_mut(i);
            for (x, &s) in row.iter_mut().zip(svd.singular_values.iter()) {
                *x *= s;
            }
        }
        Ok((pairwise_distances_from_embedding(&z), svd.singular_values))
    }

    /// The purified tag distance matrix.
    pub fn distances(&self) -> &TagDistances {
        &self.distances
    }

    /// The distilled concept model.
    pub fn concepts(&self) -> &ConceptModel {
        &self.concepts
    }

    /// Retained singular values.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }
}

impl Ranker for LsiRanker {
    fn name(&self) -> &'static str {
        "LSI"
    }

    fn search_ids(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource> {
        self.index.query_tag_ids(&self.concepts, tags, top_k)
    }
}

/// Reference implementation of the purified-matrix distances used in tests:
/// materializes the rank-k approximation `M̂ = U Σ Vᵀ` and measures row
/// distances directly.
pub fn brute_force_lsi_distances(
    f: &Folksonomy,
    rank: usize,
    seed: u64,
) -> Result<Matrix, LinAlgError> {
    let t = f.num_tags();
    let r = f.num_resources();
    let matrix = CsrMatrix::from_triples(t, r, &f.tag_resource_triples())?;
    let svd = truncated_svd(
        &matrix,
        rank.clamp(1, t.min(r)),
        &SubspaceOptions {
            seed: seed ^ 0x51d,
            ..Default::default()
        },
    )?;
    let mhat = svd.reconstruct()?;
    let mut out = Matrix::zeros(t, t);
    for i in 0..t {
        for j in (i + 1)..t {
            let d = mhat.row_distance(i, j);
            out[(i, j)] = d;
            out[(j, i)] = d;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::store::figure2_example;

    fn small_lsi_config(rank: usize, k: usize) -> LsiConfig {
        LsiConfig {
            rank: Some(rank),
            num_concepts: Some(k),
            sigma: Some(1.0),
            ..Default::default()
        }
    }

    #[test]
    fn embedding_distances_match_purified_matrix() {
        let f = figure2_example();
        let (dist, _) = LsiRanker::distances_only(&f, &small_lsi_config(2, 2)).unwrap();
        let brute = brute_force_lsi_distances(&f, 2, 0x151).unwrap();
        assert!(
            dist.matrix().approx_eq(&brute, 1e-7),
            "LSI embedding distances must equal purified-matrix distances"
        );
    }

    #[test]
    fn full_rank_reproduces_raw_matrix_distances() {
        // With no truncation, distances reduce to Eq. 6 on Figure 3:
        // d(folk, people) = √9, d(folk, laptop) = √14, d(people, laptop) = √5.
        let f = figure2_example();
        let (dist, _) = LsiRanker::distances_only(&f, &small_lsi_config(3, 2)).unwrap();
        let folk = f.tag_id("folk").unwrap().index();
        let people = f.tag_id("people").unwrap().index();
        let laptop = f.tag_id("laptop").unwrap().index();
        assert!((dist.get(folk, people) - 3.0).abs() < 1e-6, "d12 = √9");
        assert!(
            (dist.get(folk, laptop) - 14.0f64.sqrt()).abs() < 1e-6,
            "d13 = √14"
        );
        assert!(
            (dist.get(people, laptop) - 5.0f64.sqrt()).abs() < 1e-6,
            "d23 = √5"
        );
        // …and exhibits the counter-intuitive inequality (Eq. 11) the paper
        // blames on ignoring the tagger dimension:
        assert!(dist.get(people, laptop) < dist.get(folk, people));
    }

    #[test]
    fn ranker_end_to_end() {
        let f = figure2_example();
        let lsi = LsiRanker::build(&f, &small_lsi_config(2, 2)).unwrap();
        let folk = f.tag_id("folk").unwrap();
        let hits = lsi.search_ids(&[folk], 0);
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert_eq!(lsi.concepts().num_concepts(), 2);
        assert_eq!(lsi.singular_values().len(), 2);
    }

    #[test]
    fn rank_derived_from_reduction_ratio() {
        let f = figure2_example();
        let cfg = LsiConfig {
            rank: None,
            reduction_ratio: 1.0, // |T|/1 = 3 → full rank
            num_concepts: Some(2),
            sigma: Some(1.0),
            ..Default::default()
        };
        let lsi = LsiRanker::build(&f, &cfg).unwrap();
        assert_eq!(lsi.singular_values().len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let f = figure2_example();
        let a = LsiRanker::build(&f, &small_lsi_config(2, 2)).unwrap();
        let b = LsiRanker::build(&f, &small_lsi_config(2, 2)).unwrap();
        assert!(a
            .distances()
            .matrix()
            .approx_eq(b.distances().matrix(), 0.0));
    }
}
