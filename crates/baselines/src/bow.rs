//! The Bag-of-Words baseline (§VI-B): the traditional vector-space model
//! with tags as words — tf-idf weights and cosine ranking, but **no**
//! semantic analysis (no concept distillation, no tagger dimension).
//!
//! Implementation note: BOW is exactly the concept-space engine of
//! [`cubelsi_core::ConceptIndex`] with the *identity* concept mapping
//! (every tag is its own concept), so it reuses that code path — one
//! engine, two granularities, which also makes the CubeLSI-vs-BOW
//! comparison a pure measure of concept distillation.

use crate::Ranker;
use cubelsi_core::{ConceptIndex, ConceptModel, RankedResource};
use cubelsi_folksonomy::{Folksonomy, TagId};

/// The BOW ranker.
pub struct BowRanker {
    concepts: ConceptModel,
    index: ConceptIndex,
}

impl BowRanker {
    /// Builds the tag-level tf-idf index.
    pub fn build(f: &Folksonomy) -> Self {
        let identity: Vec<usize> = (0..f.num_tags()).collect();
        let concepts = ConceptModel::from_assignments(identity, 0.0);
        let index = ConceptIndex::build(f, &concepts);
        BowRanker { concepts, index }
    }

    /// The underlying index (for diagnostics).
    pub fn index(&self) -> &ConceptIndex {
        &self.index
    }
}

impl Ranker for BowRanker {
    fn name(&self) -> &'static str {
        "BOW"
    }

    fn search_ids(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource> {
        self.index.query_tag_ids(&self.concepts, tags, top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::store::figure2_example;

    #[test]
    fn exact_tag_match_only() {
        let f = figure2_example();
        let bow = BowRanker::build(&f);
        // Unlike CubeLSI, querying "people" must NOT retrieve r2 (tagged
        // only "folk") — BOW has no concepts to bridge synonymy.
        let people = f.tag_id("people").unwrap();
        let hits = bow.search_ids(&[people], 0);
        let names: Vec<&str> = hits.iter().map(|h| f.resource_name(h.resource)).collect();
        assert_eq!(names, vec!["r1"]);
    }

    #[test]
    fn idf_prefers_rare_tags() {
        let f = figure2_example();
        let bow = BowRanker::build(&f);
        // "folk" appears in 2 of 3 resources, "laptop" in 1 of 3: the
        // laptop posting carries higher idf weight.
        let folk_idx = f.tag_id("folk").unwrap().index();
        let laptop_idx = f.tag_id("laptop").unwrap().index();
        assert!(bow.index().idf(laptop_idx) > bow.index().idf(folk_idx));
    }

    #[test]
    fn ranking_is_cosine_based() {
        let f = figure2_example();
        let bow = BowRanker::build(&f);
        let folk = f.tag_id("folk").unwrap();
        let hits = bow.search_ids(&[folk], 0);
        assert_eq!(hits.len(), 2);
        // r2 is 100% folk; r1 splits between folk and people → r2 first.
        assert_eq!(f.resource_name(hits[0].resource), "r2");
        assert!(hits[0].score > hits[1].score);
        assert!(hits[0].score <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_and_truncated_queries() {
        let f = figure2_example();
        let bow = BowRanker::build(&f);
        assert!(bow.search_ids(&[], 0).is_empty());
        let folk = f.tag_id("folk").unwrap();
        assert_eq!(bow.search_ids(&[folk], 1).len(), 1);
    }
}
