//! The CubeSim baseline (§VI-B): tag distances straight from the *raw*
//! tensor — `D(tᵢ, tⱼ) = ‖F₍:,ᵢ,:₎ − F₍:,ⱼ,:₎‖_F` (Eq. 8) — followed by
//! the same concept distillation and retrieval as CubeLSI. No Tucker
//! decomposition, no noise purification.
//!
//! Two computation modes:
//!
//! * [`CubeSimMode::FaithfulDense`] — materializes each pair of dense
//!   user×resource slices, exactly the computation the paper timed (whose
//!   Delicious run exceeded 100 hours, Table V). Supports a wall-clock
//!   budget: when exceeded, the run stops and extrapolates the total cost,
//!   reproducing the paper's "> 100 h" entry honestly.
//! * [`CubeSimMode::SparseOptimized`] — an *extension beyond the paper*:
//!   exploits binary sparsity (`d² = nnz_i + nnz_j − 2·|slice_i ∩ slice_j|`)
//!   with a hash-join. This is what a careful engineer would implement, and
//!   serves as an ablation showing the theorems matter even against a
//!   strong CubeSim.

use crate::Ranker;
use cubelsi_core::{build_tensor, ConceptIndex, ConceptModel, RankedResource, TagDistances};
use cubelsi_folksonomy::{Folksonomy, TagId};
use cubelsi_linalg::spectral::{KSelection, SpectralConfig};
use cubelsi_linalg::subspace::SubspaceOptions;
use cubelsi_linalg::{LinAlgError, Matrix};
use cubelsi_tensor::SparseTensor3;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How CubeSim computes its distance matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CubeSimMode {
    /// Dense per-pair slice subtraction (the paper's costing), with an
    /// optional wall-clock budget.
    FaithfulDense {
        /// Stop (and extrapolate) once this much time has been spent.
        budget: Option<Duration>,
    },
    /// Sparse merge-join distance computation (extension).
    SparseOptimized,
}

/// Outcome of the distance computation, including DNF accounting.
#[derive(Debug, Clone)]
pub struct CubeSimReport {
    /// Wall-clock time spent on distances.
    pub elapsed: Duration,
    /// Whether all pairs were computed (false ⇒ budget exceeded).
    pub completed: bool,
    /// Pairs computed.
    pub pairs_done: usize,
    /// Total pairs required.
    pub pairs_total: usize,
    /// Estimated total time at the observed rate (equals `elapsed` when
    /// completed).
    pub estimated_total: Duration,
}

/// The CubeSim ranker.
pub struct CubeSim {
    distances: TagDistances,
    concepts: ConceptModel,
    index: ConceptIndex,
    report: CubeSimReport,
}

/// Configuration mirroring the CubeLSI clustering knobs.
#[derive(Debug, Clone)]
pub struct CubeSimConfig {
    /// Distance computation mode.
    pub mode: CubeSimMode,
    /// Number of concepts (`None` → 95 %-variance rule).
    pub num_concepts: Option<usize>,
    /// Upper bound for the variance rule.
    pub max_concepts: usize,
    /// Affinity bandwidth (`None` → median heuristic).
    pub sigma: Option<f64>,
    /// Seed.
    pub seed: u64,
}

impl Default for CubeSimConfig {
    fn default() -> Self {
        CubeSimConfig {
            mode: CubeSimMode::SparseOptimized,
            num_concepts: None,
            max_concepts: 64,
            sigma: None,
            seed: 0xc5b,
        }
    }
}

impl CubeSim {
    /// Builds the full CubeSim pipeline. Fails with `NotConverged` when a
    /// `FaithfulDense` budget is exhausted — callers doing Table V timing
    /// should use [`CubeSim::distances_with_report`] directly instead.
    pub fn build(f: &Folksonomy, config: &CubeSimConfig) -> Result<Self, LinAlgError> {
        let tensor = build_tensor(f)?;
        let (distances, report) = Self::distances_with_report(&tensor, config.mode);
        if !report.completed {
            return Err(LinAlgError::NotConverged {
                method: "cubesim_distances",
                iterations: report.pairs_done,
                residual: report.estimated_total.as_secs_f64(),
            });
        }
        let spectral = SpectralConfig {
            sigma: config.sigma,
            k: match config.num_concepts {
                Some(k) => KSelection::Fixed(k),
                None => KSelection::VarianceCovered {
                    fraction: 0.95,
                    max_k: config.max_concepts,
                },
            },
            kmeans: cubelsi_linalg::kmeans::KMeansConfig {
                seed: config.seed ^ 0x6b6d,
                ..Default::default()
            },
            subspace: SubspaceOptions {
                seed: config.seed ^ 0x5bc7,
                ..Default::default()
            },
            solver: cubelsi_linalg::spectral::SpectralSolver::default(),
        };
        let concepts = ConceptModel::distill(&distances, &spectral)?;
        let index = ConceptIndex::build(f, &concepts);
        Ok(CubeSim {
            distances,
            concepts,
            index,
            report,
        })
    }

    /// Computes the raw-slice distance matrix in the requested mode,
    /// always returning whatever was computed plus a [`CubeSimReport`].
    pub fn distances_with_report(
        tensor: &SparseTensor3,
        mode: CubeSimMode,
    ) -> (TagDistances, CubeSimReport) {
        let t = tensor.dims().1;
        let pairs_total = t * (t.saturating_sub(1)) / 2;
        let start = Instant::now();
        let mut matrix = Matrix::zeros(t, t);
        let mut pairs_done = 0usize;
        let mut completed = true;

        match mode {
            CubeSimMode::SparseOptimized => {
                // Each slice as a hash set of packed (user, resource) keys.
                let slices: Vec<HashMap<u64, f64>> = (0..t)
                    .map(|j| {
                        let mut m = HashMap::new();
                        for (u, r, v) in tensor.slice_mode2_csr(j).to_dense_triples() {
                            m.insert(pack(u, r), v);
                        }
                        m
                    })
                    .collect();
                let norms: Vec<f64> = slices
                    .iter()
                    .map(|s| s.values().map(|v| v * v).sum())
                    .collect();
                for i in 0..t {
                    for j in (i + 1)..t {
                        // Join through the smaller slice.
                        let (small, large) = if slices[i].len() <= slices[j].len() {
                            (&slices[i], &slices[j])
                        } else {
                            (&slices[j], &slices[i])
                        };
                        let mut dot = 0.0;
                        for (k, v) in small {
                            if let Some(w) = large.get(k) {
                                dot += v * w;
                            }
                        }
                        let d = (norms[i] + norms[j] - 2.0 * dot).max(0.0).sqrt();
                        matrix[(i, j)] = d;
                        matrix[(j, i)] = d;
                        pairs_done += 1;
                    }
                }
            }
            CubeSimMode::FaithfulDense { budget } => {
                let dense_slices: Vec<Matrix> = (0..t)
                    .map(|j| tensor.slice_mode2_csr(j).to_dense())
                    .collect();
                'outer: for i in 0..t {
                    for j in (i + 1)..t {
                        if let Some(b) = budget {
                            if start.elapsed() > b {
                                completed = false;
                                break 'outer;
                            }
                        }
                        // The paper's literal computation: full dense
                        // subtraction + Frobenius norm, O(I₁·I₃) per pair.
                        let d = dense_slices[i]
                            .sub(&dense_slices[j])
                            .expect("slices share dims")
                            .frobenius_norm();
                        matrix[(i, j)] = d;
                        matrix[(j, i)] = d;
                        pairs_done += 1;
                    }
                }
            }
        }

        let elapsed = start.elapsed();
        let estimated_total = if completed || pairs_done == 0 {
            elapsed
        } else {
            elapsed.mul_f64(pairs_total as f64 / pairs_done as f64)
        };
        (
            TagDistances::from_matrix(matrix).expect("square by construction"),
            CubeSimReport {
                elapsed,
                completed,
                pairs_done,
                pairs_total,
                estimated_total,
            },
        )
    }

    /// The distance matrix.
    pub fn distances(&self) -> &TagDistances {
        &self.distances
    }

    /// The concept model.
    pub fn concepts(&self) -> &ConceptModel {
        &self.concepts
    }

    /// Distance-computation accounting.
    pub fn report(&self) -> &CubeSimReport {
        &self.report
    }
}

impl Ranker for CubeSim {
    fn name(&self) -> &'static str {
        "CubeSim"
    }

    fn search_ids(&self, tags: &[TagId], top_k: usize) -> Vec<RankedResource> {
        self.index.query_tag_ids(&self.concepts, tags, top_k)
    }
}

#[inline]
fn pack(u: usize, r: usize) -> u64 {
    ((u as u64) << 32) | (r as u64)
}

/// Extension trait: iterate a CSR matrix as `(row, col, value)` triples.
trait CsrTriples {
    fn to_dense_triples(&self) -> Vec<(usize, usize, f64)>;
}

impl CsrTriples for cubelsi_linalg::CsrMatrix {
    fn to_dense_triples(&self) -> Vec<(usize, usize, f64)> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubelsi_folksonomy::store::figure2_example;

    fn figure2_tensor() -> SparseTensor3 {
        build_tensor(&figure2_example()).unwrap()
    }

    #[test]
    fn sparse_distances_match_paper_eqs() {
        let (dist, report) =
            CubeSim::distances_with_report(&figure2_tensor(), CubeSimMode::SparseOptimized);
        // Tag order: folk=0, people=1, laptop=2.
        assert!((dist.get(0, 1) - 3.0f64.sqrt()).abs() < 1e-12, "D12 = √3");
        assert!((dist.get(0, 2) - 6.0f64.sqrt()).abs() < 1e-12, "D13 = √6");
        assert!((dist.get(1, 2) - 3.0f64.sqrt()).abs() < 1e-12, "D23 = √3");
        assert!(report.completed);
        assert_eq!(report.pairs_done, 3);
    }

    #[test]
    fn dense_and_sparse_modes_agree() {
        let tensor = figure2_tensor();
        let (a, _) = CubeSim::distances_with_report(&tensor, CubeSimMode::SparseOptimized);
        let (b, rb) =
            CubeSim::distances_with_report(&tensor, CubeSimMode::FaithfulDense { budget: None });
        assert!(a.matrix().approx_eq(b.matrix(), 1e-12));
        assert!(rb.completed);
    }

    #[test]
    fn exhausted_budget_reports_dnf_with_extrapolation() {
        let tensor = figure2_tensor();
        let (_, report) = CubeSim::distances_with_report(
            &tensor,
            CubeSimMode::FaithfulDense {
                budget: Some(Duration::ZERO),
            },
        );
        assert!(!report.completed);
        assert!(report.pairs_done < report.pairs_total);
        assert!(report.estimated_total >= report.elapsed);
    }

    #[test]
    fn build_fails_cleanly_on_budget_exhaustion() {
        let f = figure2_example();
        let cfg = CubeSimConfig {
            mode: CubeSimMode::FaithfulDense {
                budget: Some(Duration::ZERO),
            },
            ..Default::default()
        };
        assert!(CubeSim::build(&f, &cfg).is_err());
    }

    #[test]
    fn end_to_end_ranker() {
        let f = figure2_example();
        let cfg = CubeSimConfig {
            num_concepts: Some(2),
            sigma: Some(1.0),
            ..Default::default()
        };
        let cs = CubeSim::build(&f, &cfg).unwrap();
        let folk = f.tag_id("folk").unwrap();
        let hits = cs.search_ids(&[folk], 0);
        assert!(!hits.is_empty());
        assert_eq!(cs.concepts().num_concepts(), 2);
        // Raw distances give D12 = D23 = √3 (Eq. 13): CubeSim cannot tell
        // that people is closer to folk than to laptop — record the
        // ambiguity that CubeLSI resolves.
        assert_eq!(cs.distances().get(0, 1), cs.distances().get(1, 2));
    }
}
