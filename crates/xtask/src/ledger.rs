//! `UNSAFE_LEDGER.md` cross-check.
//!
//! The ledger is the human-audited inventory of every unsafe site in
//! the workspace: one entry per (file, enclosing fn), stating the
//! invariant that makes the site sound and the test that exercises it.
//! This module parses the ledger and diffs it against the sites the
//! scanner actually finds, failing on drift in either direction:
//!
//! - an unsafe site with no ledger entry (new unsafe slipped in), or a
//!   site count that grew without the entry being re-audited;
//! - a ledger entry whose site vanished or shrank (stale audit text);
//! - an entry missing its `invariant:` or `test:` field, or naming a
//!   test function that does not exist in the tree.
//!
//! Entry format (one per `##` heading):
//!
//! ```markdown
//! ## `crates/core/src/slab.rs` · `as_slice` — 2 sites
//! - invariant: ...prose...
//! - test: `borrowed_views_read_le_values`, `pod_casts_roundtrip`
//! ```

use std::collections::BTreeMap;

use crate::lint::Violation;

/// (repo-relative file, enclosing fn) → number of unsafe sites.
pub type SiteMap = BTreeMap<(String, String), usize>;

/// One parsed `##` heading with its `- field:` lines, shared by this
/// check and the `CONCURRENCY_LEDGER.md` check in `conc.rs` (both
/// ledgers use the same heading grammar, differing only in fields).
#[derive(Debug)]
pub struct RawEntry {
    pub file: String,
    pub func: String,
    pub sites: usize,
    pub line: usize,
    /// `- name: value` lines under the heading, in order.
    pub fields: Vec<(String, String)>,
}

impl RawEntry {
    /// The value of the first `- name:` field, if present.
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

pub(crate) fn backticked(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('`') {
        let Some(close) = rest[open + 1..].find('`') else {
            break;
        };
        out.push(rest[open + 1..open + 1 + close].to_owned());
        rest = &rest[open + 1 + close + 1..];
    }
    out
}

/// Parses every `## `file` · `fn` — N sites` heading and its `- name:
/// value` field lines. Fenced code blocks are skipped, so a ledger's
/// own format documentation cannot masquerade as entries. Malformed
/// headings become violations attributed to `ledger_file`/`rule`.
pub(crate) fn parse_entries(
    ledger: &str,
    ledger_file: &'static str,
    rule: &'static str,
) -> (Vec<RawEntry>, Vec<Violation>) {
    let mut entries: Vec<RawEntry> = Vec::new();
    let mut violations = Vec::new();
    let mut in_fence = false;
    for (idx, raw) in ledger.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if let Some(heading) = line.strip_prefix("## ") {
            let names = backticked(heading);
            let sites = heading
                .rsplit_once('—')
                .map(|(_, tail)| tail.trim())
                .and_then(|tail| tail.split_whitespace().next())
                .and_then(|n| n.parse::<usize>().ok());
            match (names.as_slice(), sites) {
                ([file, func], Some(sites)) => entries.push(RawEntry {
                    file: file.clone(),
                    func: func.clone(),
                    sites,
                    line: idx + 1,
                    fields: Vec::new(),
                }),
                _ => violations.push(Violation {
                    file: ledger_file.into(),
                    line: idx + 1,
                    rule,
                    msg: "malformed heading; expected ## `file` · `fn` — N sites".into(),
                }),
            }
        } else if let Some(entry) = entries.last_mut() {
            if let Some((name, value)) = line
                .strip_prefix("- ")
                .and_then(|field| field.split_once(':'))
            {
                entry
                    .fields
                    .push((name.trim().to_owned(), value.trim().to_owned()));
            }
        }
    }
    (entries, violations)
}

/// Diffs the discovered `sites` against the ledger text. `test_exists`
/// answers whether a named `fn` exists anywhere in the scanned tree.
pub fn check(sites: &SiteMap, ledger: &str, test_exists: impl Fn(&str) -> bool) -> Vec<Violation> {
    let (entries, mut violations) = parse_entries(ledger, "UNSAFE_LEDGER.md", "ledger");
    let mut ledger_map: BTreeMap<(String, String), &RawEntry> = BTreeMap::new();
    for entry in &entries {
        let key = (entry.file.clone(), entry.func.clone());
        if ledger_map.insert(key, entry).is_some() {
            violations.push(Violation {
                file: "UNSAFE_LEDGER.md".into(),
                line: entry.line,
                rule: "ledger",
                msg: format!("duplicate entry for `{}` · `{}`", entry.file, entry.func),
            });
        }
    }

    for ((file, func), &count) in sites {
        match ledger_map.get(&(file.clone(), func.clone())) {
            None => violations.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "ledger",
                msg: format!(
                    "unsafe in `{func}` has no UNSAFE_LEDGER.md entry; audit it and record invariant + test"
                ),
            }),
            Some(entry) if entry.sites != count => violations.push(Violation {
                file: "UNSAFE_LEDGER.md".into(),
                line: entry.line,
                rule: "ledger",
                msg: format!(
                    "`{file}` · `{func}` records {} sites but the source has {count}; re-audit the entry",
                    entry.sites
                ),
            }),
            Some(_) => {}
        }
    }

    for entry in &entries {
        let key = (entry.file.clone(), entry.func.clone());
        if !sites.contains_key(&key) {
            violations.push(Violation {
                file: "UNSAFE_LEDGER.md".into(),
                line: entry.line,
                rule: "ledger",
                msg: format!(
                    "stale entry: no unsafe remains in `{}` · `{}`; delete the entry",
                    entry.file, entry.func
                ),
            });
            continue;
        }
        if entry.field("invariant").unwrap_or("").is_empty() {
            violations.push(Violation {
                file: "UNSAFE_LEDGER.md".into(),
                line: entry.line,
                rule: "ledger",
                msg: format!(
                    "entry `{}` · `{}` is missing `- invariant:`",
                    entry.file, entry.func
                ),
            });
        }
        let tests = backticked(entry.field("test").unwrap_or(""));
        if tests.is_empty() {
            violations.push(Violation {
                file: "UNSAFE_LEDGER.md".into(),
                line: entry.line,
                rule: "ledger",
                msg: format!(
                    "entry `{}` · `{}` is missing `- test:`",
                    entry.file, entry.func
                ),
            });
        }
        for test in &tests {
            if !test_exists(test) {
                violations.push(Violation {
                    file: "UNSAFE_LEDGER.md".into(),
                    line: entry.line,
                    rule: "ledger",
                    msg: format!("named test `{test}` not found as a `fn` anywhere in the tree"),
                });
            }
        }
    }
    violations
}

/// Renders the discovered sites as ledger-heading stubs — used by the
/// `sites` subcommand so drift messages are easy to act on.
pub fn render_stubs(sites: &SiteMap) -> String {
    let mut out = String::new();
    for ((file, func), count) in sites {
        let plural = if *count == 1 { "site" } else { "sites" };
        out.push_str(&format!("## `{file}` · `{func}` — {count} {plural}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site_map(items: &[(&str, &str, usize)]) -> SiteMap {
        items
            .iter()
            .map(|(f, g, n)| ((f.to_string(), g.to_string()), *n))
            .collect()
    }

    const GOOD: &str = "\
# Unsafe ledger

## `a.rs` · `fast_read` — 2 sites
- invariant: index < len checked by caller.
- test: `fast_read_in_bounds`
";

    #[test]
    fn in_sync_ledger_passes() {
        let sites = site_map(&[("a.rs", "fast_read", 2)]);
        assert!(check(&sites, GOOD, |t| t == "fast_read_in_bounds").is_empty());
    }

    #[test]
    fn missing_entry_fires() {
        let sites = site_map(&[("a.rs", "fast_read", 2), ("b.rs", "new_unsafe", 1)]);
        let v = check(&sites, GOOD, |_| true);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("no UNSAFE_LEDGER.md entry"));
    }

    #[test]
    fn stale_entry_and_count_drift_fire() {
        let v = check(&site_map(&[]), GOOD, |_| true);
        assert!(v.iter().any(|v| v.msg.contains("stale entry")));
        let v = check(&site_map(&[("a.rs", "fast_read", 3)]), GOOD, |_| true);
        assert!(v
            .iter()
            .any(|v| v.msg.contains("records 2 sites but the source has 3")));
    }

    #[test]
    fn missing_fields_and_unknown_test_fire() {
        let bare = "## `a.rs` · `fast_read` — 2 sites\n";
        let sites = site_map(&[("a.rs", "fast_read", 2)]);
        let v = check(&sites, bare, |_| true);
        assert!(v.iter().any(|v| v.msg.contains("missing `- invariant:`")));
        assert!(v.iter().any(|v| v.msg.contains("missing `- test:`")));
        let v = check(&sites, GOOD, |_| false);
        assert!(v.iter().any(|v| v.msg.contains("not found as a `fn`")));
    }

    #[test]
    fn malformed_heading_fires() {
        let v = check(&site_map(&[]), "## broken heading\n", |_| true);
        assert!(v.iter().any(|v| v.msg.contains("malformed heading")));
    }
}
