//! A minimal line-oriented Rust source scanner.
//!
//! The lint rules are lexical: they match tokens in *code*, and look for
//! markers (`SAFETY:`, region begin/end) in *comments*. Matching on raw
//! text would misfire constantly — the word "unsafe" appears in doc
//! comments all over the workspace — so this module splits every line
//! into its code text (string/char literal contents blanked) and its
//! comment text. It understands line comments, nested block comments,
//! string/byte-string/raw-string literals, char literals, and lifetimes
//! (a `'` that does not open a char literal).
//!
//! This is not a full lexer, and deliberately so: it has no
//! dependencies, it is ~150 lines, and its failure mode is a lint
//! false positive on pathological token sequences — caught immediately
//! by CI on the offending PR, not silently.

/// One scanned source line.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// The line's code with comments removed and literal contents
    /// replaced by spaces (quotes preserved, so token boundaries hold).
    pub code: String,
    /// The concatenated text of every comment on the line.
    pub comment: String,
}

/// A scanned file: per-line code/comment split.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the repo root, with `/` separators.
    pub rel_path: String,
    /// The scanned lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

enum State {
    Code,
    /// Inside a block comment at the given nesting depth.
    Block(usize),
    /// Inside a normal (escaped) string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(usize),
}

/// Splits `source` into per-line code and comment text.
pub fn scan(rel_path: &str, source: &str) -> SourceFile {
    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw in source.lines() {
        let mut line = Line::default();
        let b: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < b.len() {
            match state {
                State::Block(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(b[i]);
                        i += 1;
                    }
                }
                State::Str => {
                    if b[i] == '\\' {
                        i += 2; // escape: skip the escaped char (or EOL)
                    } else if b[i] == '"' {
                        line.code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if b[i] == '"' && b[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
                    {
                        line.code.push('"');
                        state = State::Code;
                        i += 1 + hashes;
                    } else {
                        line.code.push(' ');
                        i += 1;
                    }
                }
                State::Code => {
                    let c = b[i];
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        line.comment
                            .push_str(&b[i + 2..].iter().collect::<String>());
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = State::Str;
                        i += 1;
                    } else if c == 'r' && is_raw_string_start(&b[i + 1..]) {
                        // r"..." or r#"..."# (including after a `b`
                        // handled below via the plain-ident fallthrough).
                        let hashes = b[i + 1..].iter().take_while(|&&c| c == '#').count();
                        line.code.push('r');
                        line.code.push('"');
                        state = State::RawStr(hashes);
                        i += 2 + hashes;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a char literal is
                        // 'x' or '\..'; anything else is a lifetime.
                        if b.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to closing quote.
                            line.code.push('\'');
                            line.code.push(' ');
                            let mut j = i + 2;
                            if j < b.len() {
                                j += 1; // the escaped character itself
                            }
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            line.code.push('\'');
                            i = (j + 1).min(b.len());
                        } else if b.get(i + 2) == Some(&'\'') {
                            line.code.push_str("' '");
                            i += 3;
                        } else {
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        lines.push(line);
    }
    SourceFile {
        rel_path: rel_path.to_owned(),
        lines,
    }
}

/// After an `r`, does a raw string start here (`#*"` or `"`), given the
/// `r` is not part of a longer identifier? The caller guarantees the
/// char before `r` was consumed as code; identifiers ending in `r`
/// (e.g. `for`, `ptr`) are excluded because the char *after* must be
/// `#` or `"`, which cannot continue an identifier — except for
/// `ident"..."` sequences, which are not valid Rust anyway.
fn is_raw_string_start(rest: &[char]) -> bool {
    let hashes = rest.iter().take_while(|&&c| c == '#').count();
    rest.get(hashes) == Some(&'"')
}

/// True when `text[pos..]` starts with `needle` as a whole word: the
/// characters on both sides are not identifier characters.
pub fn word_at(text: &str, pos: usize, needle: &str) -> bool {
    if !text[pos..].starts_with(needle) {
        return false;
    }
    let before_ok = pos == 0
        || !text[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = pos + needle.len();
    let after_ok = !text[after..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    before_ok && after_ok
}

/// Every position where `needle` occurs as a whole word in `text`.
pub fn word_positions(text: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = text[from..].find(needle) {
        let pos = from + rel;
        if word_at(text, pos, needle) {
            out.push(pos);
        }
        from = pos + needle.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let f = scan(
            "t.rs",
            "let x = \"unsafe in a string\"; // unsafe in a comment\nunsafe { f(); }\n",
        );
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("unsafe in a comment"));
        assert!(f.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let f = scan("t.rs", "/* a\n/* b */ still\ncomment */ code();\n");
        assert!(f.lines[0].code.trim().is_empty());
        assert!(f.lines[1].code.trim().is_empty());
        assert!(f.lines[1].comment.contains("still"));
        assert!(f.lines[2].code.contains("code()"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let f = scan(
            "t.rs",
            "let s = r#\"unsafe \"quoted\" here\"#;\nfn f<'a>(x: &'a str) -> char { 'Z' }\n",
        );
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[1].code.contains("fn f<'a>"));
        assert!(!f.lines[1].code.contains('Z'), "char literal blanked");
    }

    #[test]
    fn escaped_char_literals() {
        let f = scan("t.rs", "let c = '\\n'; let q = '\\''; done();\n");
        assert!(f.lines[0].code.contains("done()"));
    }

    #[test]
    fn word_boundaries() {
        assert!(word_at("unsafe {", 0, "unsafe"));
        assert!(!word_at("unsafe_op_in_unsafe_fn", 0, "unsafe"));
        assert_eq!(
            word_positions("a transmute b transmuted", "transmute"),
            vec![2]
        );
    }
}
