//! Lexical lint rules over scanned source files.
//!
//! Four rules, matching the repo's correctness policy:
//!
//! - **R1 safety-comment** — every `unsafe` token must be covered by a
//!   `// SAFETY:` comment on the same line or immediately above
//!   (attribute lines and doc comments in between are transparent; a
//!   `# Safety` doc section also counts for `unsafe fn` items).
//! - **R2 unchecked-allowlist** — unchecked/raw-memory operations
//!   (`get_unchecked`, `from_raw_parts`, `transmute`, `assume_init`,
//!   ...) may only appear in explicitly allowlisted audited modules.
//! - **R3 hostile-input** — regions fenced by `xtask:hostile-input:`
//!   `begin`/`end` marker comments (spelled unbroken in real code; this
//!   doc splits the token so the linter does not fence itself) must
//!   contain no panicking ops (`unwrap`/`expect`/`panic!`/assert family), no
//!   potentially-truncating `as` casts, and no raw `[...]` indexing.
//!   Files on the required list must contain at least one region, so
//!   deleting the markers is itself a lint failure.
//! - **R4 float-cmp** — no `partial_cmp(..).unwrap()`: NaN panics at
//!   ranking time. Use `total_cmp` or an explicit NaN policy.
//!
//! The concurrency rules (R5 atomic-ordering, R6 lock-discipline, R7
//! no-alloc regions) live in `conc.rs` and share this module's
//! `Violation` type and marker-adjacency convention.

use crate::scan::{word_at, word_positions, Line, SourceFile};

/// A single lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Violation {
    /// One machine-readable JSON object (single line, no trailing
    /// newline) for `xtask check --json`.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":"{}","line":{},"rule":"{}","msg":"{}"}}"#,
            json_escape(&self.file),
            self.line,
            self.rule,
            json_escape(&self.msg)
        )
    }
}

/// Static policy: which files may hold unchecked ops, which files must
/// carry hostile-input regions.
pub struct Policy {
    /// Files (repo-relative) where R2's unchecked ops are permitted.
    pub unchecked_allowlist: &'static [&'static str],
    /// Files that MUST contain at least one hostile-input region.
    pub hostile_required: &'static [&'static str],
}

/// The repo's actual policy, shared by `check` and the selftest.
pub const POLICY: Policy = Policy {
    unchecked_allowlist: &["crates/core/src/slab.rs", "crates/core/src/index.rs"],
    hostile_required: &[
        "crates/core/src/persist.rs",
        "crates/core/src/shard.rs",
        "src/bin/cubelsi-search/serve.rs",
    ],
};

const UNCHECKED_OPS: &[&str] = &[
    "get_unchecked",
    "get_unchecked_mut",
    "from_raw_parts",
    "from_raw_parts_mut",
    "transmute",
    "assume_init",
    "unwrap_unchecked",
    "from_utf8_unchecked",
    "read_unaligned",
    "write_unaligned",
];

/// `as <target>` casts that can silently drop bits on hostile input.
/// (`as u64`/`as f64` widen from every integer type the formats use,
/// so they are not in the set; `usize`/`isize` are, because the policy
/// is "spell out the assumption" — use `widen()` or `try_from`.)
const TRUNCATING_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

const BEGIN_MARKER: &str = "xtask:hostile-input:begin";
const END_MARKER: &str = "xtask:hostile-input:end";

/// Runs every rule over one file.
pub fn lint_file(file: &SourceFile, policy: &Policy) -> Vec<Violation> {
    let mut out = Vec::new();
    rule_safety_comments(file, &mut out);
    rule_unchecked_allowlist(file, policy, &mut out);
    rule_hostile_regions(file, policy, &mut out);
    rule_float_cmp(file, &mut out);
    out
}

fn violation(file: &SourceFile, idx: usize, rule: &'static str, msg: String) -> Violation {
    Violation {
        file: file.rel_path.clone(),
        line: idx + 1,
        rule,
        msg,
    }
}

fn has_safety_text(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

/// A line the upward marker scan (SAFETY:, ORDER:, HOLDS-LOCK:,
/// ALLOC-OK:) may look through: blank, comment-only, or attribute-only
/// code.
pub fn is_transparent(line: &Line) -> bool {
    let code = line.code.trim();
    code.is_empty() || code.starts_with("#[") || code.starts_with("#![")
}

/// R1: every `unsafe` token needs a SAFETY comment on its line or on
/// the contiguous comment/attribute block directly above.
fn rule_safety_comments(file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if word_positions(&line.code, "unsafe").is_empty() {
            continue;
        }
        let mut documented = has_safety_text(&line.comment);
        let mut up = idx;
        while !documented && up > 0 {
            up -= 1;
            let above = &file.lines[up];
            if has_safety_text(&above.comment) {
                documented = true;
            } else if !is_transparent(above) {
                break;
            }
        }
        if !documented {
            out.push(violation(
                file,
                idx,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment on or directly above it".into(),
            ));
        }
    }
}

/// R2: unchecked ops only inside the audited-module allowlist.
fn rule_unchecked_allowlist(file: &SourceFile, policy: &Policy, out: &mut Vec<Violation>) {
    if policy.unchecked_allowlist.contains(&file.rel_path.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        for op in UNCHECKED_OPS {
            if !word_positions(&line.code, op).is_empty() {
                out.push(violation(
                    file,
                    idx,
                    "unchecked-allowlist",
                    format!(
                        "`{op}` outside the audited modules ({}); move the code there or use a checked form",
                        policy.unchecked_allowlist.join(", ")
                    ),
                ));
            }
        }
    }
}

/// R3: hostile-input regions reject panics, truncating casts, and raw
/// indexing; required files must carry at least one region.
fn rule_hostile_regions(file: &SourceFile, policy: &Policy, out: &mut Vec<Violation>) {
    let mut in_region = false;
    let mut saw_region = false;
    for (idx, line) in file.lines.iter().enumerate() {
        if line.comment.contains(BEGIN_MARKER) {
            if in_region {
                out.push(violation(
                    file,
                    idx,
                    "hostile-input",
                    "nested/duplicate hostile-input begin marker".into(),
                ));
            }
            in_region = true;
            saw_region = true;
            continue;
        }
        if line.comment.contains(END_MARKER) {
            if !in_region {
                out.push(violation(
                    file,
                    idx,
                    "hostile-input",
                    "hostile-input end marker without a begin".into(),
                ));
            }
            in_region = false;
            continue;
        }
        if !in_region {
            continue;
        }
        check_hostile_line(file, idx, &line.code, out);
    }
    if in_region {
        out.push(violation(
            file,
            file.lines.len().saturating_sub(1),
            "hostile-input",
            "hostile-input region never closed".into(),
        ));
    }
    if !saw_region && policy.hostile_required.contains(&file.rel_path.as_str()) {
        out.push(Violation {
            file: file.rel_path.clone(),
            line: 0,
            rule: "hostile-input",
            msg: "file must fence its untrusted-byte parsing in an `xtask:hostile-input:begin`/`:end` region".into(),
        });
    }
}

fn check_hostile_line(file: &SourceFile, idx: usize, code: &str, out: &mut Vec<Violation>) {
    for pat in [".unwrap()", ".expect("] {
        if code.contains(pat) {
            out.push(violation(
                file,
                idx,
                "hostile-input",
                format!("`{pat}..` in a hostile-input region; return a typed error instead"),
            ));
        }
    }
    for mac in [
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ] {
        for pos in word_positions(code, mac) {
            if code[pos + mac.len()..].starts_with('!') {
                out.push(violation(
                    file,
                    idx,
                    "hostile-input",
                    format!("`{mac}!` in a hostile-input region; return a typed error instead"),
                ));
            }
        }
    }
    for pos in word_positions(code, "as") {
        let rest = code[pos + 2..].trim_start();
        if TRUNCATING_TARGETS.iter().any(|t| word_at(rest, 0, t)) {
            let target = TRUNCATING_TARGETS
                .iter()
                .find(|t| word_at(rest, 0, t))
                .unwrap_or(&"?");
            out.push(violation(
                file,
                idx,
                "hostile-input",
                format!(
                    "potentially-truncating `as {target}` in a hostile-input region; use `try_from`/`widen()`"
                ),
            ));
        }
    }
    // Raw indexing: `[` immediately after an expression (identifier,
    // `)`, or `]`). Attribute (`#[`), macro (`vec![`), array-literal,
    // and slice-pattern brackets all follow non-expression characters.
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
            out.push(violation(
                file,
                idx,
                "hostile-input",
                "raw `[..]` indexing in a hostile-input region; use `.get(..)` and return a typed error".into(),
            ));
        }
    }
}

/// R4: `partial_cmp(..).unwrap()` — same line, or `.unwrap()` opening
/// the continuation line of a `partial_cmp` chain.
fn rule_float_cmp(file: &SourceFile, out: &mut Vec<Violation>) {
    let mut prev_had_partial_cmp = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let code = &line.code;
        let here = code.contains("partial_cmp") && code.contains(".unwrap()");
        let carried = prev_had_partial_cmp && code.trim_start().starts_with(".unwrap()");
        if here || carried {
            out.push(violation(
                file,
                idx,
                "float-cmp",
                "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp` or handle the None"
                    .into(),
            ));
        }
        if !code.trim().is_empty() {
            prev_had_partial_cmp = code.contains("partial_cmp");
        }
    }
}

/// Finds the name of the item (fn) enclosing `line_idx`, for ledger
/// keys. Lexical upward scan for the nearest `fn <name>` declaration;
/// closures inside a fn resolve to that fn.
pub fn enclosing_fn(file: &SourceFile, line_idx: usize) -> String {
    for idx in (0..=line_idx).rev() {
        let code = &file.lines[idx].code;
        for pos in word_positions(code, "fn") {
            let rest = code[pos + 2..].trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return name;
            }
        }
    }
    "<module>".into()
}

/// Every `unsafe` site in a file, as (enclosing fn, line number).
pub fn unsafe_sites(file: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        for _ in word_positions(&line.code, "unsafe") {
            out.push((enclosing_fn(file, idx), idx + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn rules_fired(src: &str, path: &str, policy: &Policy) -> Vec<&'static str> {
        let f = scan(path, src);
        lint_file(&f, policy).into_iter().map(|v| v.rule).collect()
    }

    const TEST_POLICY: Policy = Policy {
        unchecked_allowlist: &["audited.rs"],
        hostile_required: &["must_fence.rs"],
    };

    #[test]
    fn undocumented_unsafe_fires() {
        let fired = rules_fired("fn f() {\n    unsafe { g(); }\n}\n", "a.rs", &TEST_POLICY);
        assert_eq!(fired, vec!["safety-comment"]);
    }

    #[test]
    fn documented_unsafe_passes() {
        for src in [
            "// SAFETY: g upholds its contract here.\nunsafe { g(); }\n",
            "let x = unsafe { g() }; // SAFETY: same line works\n",
            "// SAFETY: attributes are transparent.\n#[inline]\nunsafe fn g() {}\n",
            "/// # Safety\n/// Caller must...\nunsafe fn g() {}\n",
        ] {
            assert!(rules_fired(src, "a.rs", &TEST_POLICY).is_empty(), "{src}");
        }
    }

    #[test]
    fn unchecked_outside_allowlist_fires() {
        let src = "// SAFETY: in bounds.\nlet v = unsafe { s.get_unchecked(0) };\n";
        assert_eq!(
            rules_fired(src, "elsewhere.rs", &TEST_POLICY),
            vec!["unchecked-allowlist"]
        );
        assert!(rules_fired(src, "audited.rs", &TEST_POLICY).is_empty());
    }

    #[test]
    fn hostile_region_rejects_panics_casts_indexing() {
        let src = "\
// xtask:hostile-input:begin
let a = x.unwrap();
let b = map.get(k).expect(\"present\");
panic!(\"boom\");
assert!(ok);
let c = len as u32;
let d = bytes[0];
let e = f(g)[1];
// xtask:hostile-input:end
";
        let fired = rules_fired(src, "h.rs", &TEST_POLICY);
        assert_eq!(fired.len(), 7, "{fired:?}");
        assert!(fired.iter().all(|r| *r == "hostile-input"));
    }

    #[test]
    fn hostile_region_allows_checked_forms() {
        let src = "\
// xtask:hostile-input:begin
let a = x.ok_or(Error::Malformed)?;
let b = u32::try_from(len).map_err(|_| Error::Malformed)?;
let c = bytes.get(0).copied().ok_or(Error::Malformed)?;
debug_assert!(internal_ok);
let arr = [0u8; 8];
#[derive(Debug)]
let v: &[u8] = &buf;
vec![1, 2]
// xtask:hostile-input:end
";
        assert!(rules_fired(src, "h.rs", &TEST_POLICY).is_empty());
    }

    #[test]
    fn required_file_without_region_fires() {
        assert_eq!(
            rules_fired("fn ok() {}\n", "must_fence.rs", &TEST_POLICY),
            vec!["hostile-input"]
        );
    }

    #[test]
    fn unbalanced_markers_fire() {
        let open = "// xtask:hostile-input:begin\nlet ok = 1;\n";
        assert_eq!(
            rules_fired(open, "h.rs", &TEST_POLICY),
            vec!["hostile-input"]
        );
        let close = "// xtask:hostile-input:end\n";
        assert_eq!(
            rules_fired(close, "h.rs", &TEST_POLICY),
            vec!["hostile-input"]
        );
    }

    #[test]
    fn float_cmp_fires_same_and_next_line() {
        let same = "xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert_eq!(rules_fired(same, "f.rs", &TEST_POLICY), vec!["float-cmp"]);
        let split = "let o = a\n    .partial_cmp(&b)\n    .unwrap();\n";
        assert_eq!(rules_fired(split, "f.rs", &TEST_POLICY), vec!["float-cmp"]);
        let fine = "xs.sort_by(|a, b| a.total_cmp(b));\nlet o = a.partial_cmp(&b).unwrap_or(Ordering::Equal);\n";
        assert!(rules_fired(fine, "f.rs", &TEST_POLICY).is_empty());
    }

    #[test]
    fn enclosing_fn_resolves_through_closures() {
        let f = scan(
            "x.rs",
            "impl T {\n    fn outer(&self) {\n        let c = |i: usize| unsafe { g(i) };\n    }\n}\n",
        );
        assert_eq!(unsafe_sites(&f), vec![("outer".into(), 3)]);
    }
}
