//! Concurrency and hot-path lint rules, plus the
//! `CONCURRENCY_LEDGER.md` cross-check.
//!
//! Three rules, extending the unsafe-audit pass in `lint.rs` to the
//! invariants the TSan lanes and the counting-allocator test can only
//! sample dynamically:
//!
//! - **R5 atomic-ordering** — every `Ordering::{Relaxed,Acquire,
//!   Release,AcqRel,SeqCst}` site must carry an adjacent `// ORDER:`
//!   comment naming the synchronizes-with edge it participates in (or
//!   stating that the site is a statistics counter where `Relaxed` is
//!   the documented default). `SeqCst` is additionally denied outside
//!   an explicit per-file allowlist: a total order is a claim about
//!   *every* other atomic, so it must be a deliberate, named decision.
//! - **R6 lock-discipline** — the repo's lock-acquisition order is
//!   declared in [`CONC_POLICY`]; nested `lock(..)`/`.lock()`
//!   acquisitions that violate it (or involve a lock the policy does
//!   not rank) are flagged, as is any lock guard still live across a
//!   blocking call (`wait`, `accept`, `read_line`, `write_all`, ...)
//!   unless the site carries a `// HOLDS-LOCK:` rationale.
//! - **R7 no-alloc** — regions fenced by `xtask:no-alloc:` `begin`/
//!   `end` marker comments (spelled unbroken in real code; split here
//!   so the linter does not fence its own docs) deny alloc-capable
//!   calls: `vec!`/`format!`, `Vec::new`/`Box::new`/`String::from`
//!   constructor paths, and growth/owning methods (`push`, `extend`,
//!   `collect`, `to_vec`, `clone`, `reserve`, ...). A line that must
//!   allocate (e.g. a grow-only scratch buffer on a cold first
//!   iteration) is escaped with an adjacent `// ALLOC-OK:` rationale.
//!
//! Like the rest of the pass this is lexical, not semantic: `lock`
//! tracking keys off the repo-wide `lock(&mutex)` helper / `.lock()`
//! method spelling and guard liveness is approximated by indentation
//! (a guard bound at indent N is considered live until the first line
//! shallower than N, or an explicit `drop(name)`), and `RwLock`
//! `.read()`/`.write()` guards are out of scope. The failure mode is a
//! false positive answered by an annotation with a rationale — which
//! is exactly the artifact the audit wants to exist.
//!
//! Every non-test atomic/lock site is also enumerated in
//! `CONCURRENCY_LEDGER.md` — one entry per (file, enclosing fn) with
//! the multiset of orderings used and a one-line rationale — and
//! [`check_ledger`] diffs that inventory against the tree, failing on
//! drift in either direction. Because the `kinds:` field records the
//! ordering *names*, silently downgrading an `AcqRel` to `Relaxed` is
//! ledger drift even though the site count is unchanged.

use std::collections::BTreeMap;

use crate::ledger;
use crate::lint::{enclosing_fn, is_transparent, Violation};
use crate::scan::{word_at, word_positions, SourceFile};

/// Static concurrency policy, shared by `check` and the selftest.
pub struct ConcPolicy {
    /// Files (repo-relative) where `Ordering::SeqCst` is permitted.
    pub seqcst_allowlist: &'static [&'static str],
    /// Repo-wide lock acquisition order, outermost first. Nested
    /// acquisitions must move strictly rightward in this list.
    pub lock_order: &'static [&'static str],
    /// Path prefixes exempt from the concurrency rules and the ledger
    /// (test-only code: annotating it would be noise, and test
    /// fixtures churn too fast for a human-audited inventory).
    pub exempt_prefixes: &'static [&'static str],
}

/// The repo's actual policy.
///
/// SeqCst allowlist rationale: the serve pipeline and its counters use
/// SeqCst for the shutdown/admission flags where the simplicity of a
/// single total order is worth more than the fence cost (accept-loop
/// frequency, not per-posting frequency), and `shard.rs` claims
/// generation numbers under a write lock where SeqCst is belt and
/// braces. Everything on the query hot path must justify a weaker
/// ordering instead.
pub const CONC_POLICY: ConcPolicy = ConcPolicy {
    seqcst_allowlist: &[
        "src/bin/cubelsi-search/serve.rs",
        "src/bin/cubelsi-search/stats.rs",
        "crates/core/src/shard.rs",
    ],
    lock_order: &["queue", "latency", "stealers", "park", "done"],
    exempt_prefixes: &["tests/"],
};

const ORDER_MARKER: &str = "ORDER:";
const HOLDS_LOCK_MARKER: &str = "HOLDS-LOCK:";
const ALLOC_OK_MARKER: &str = "ALLOC-OK:";
const NOALLOC_BEGIN: &str = "xtask:no-alloc:begin";
const NOALLOC_END: &str = "xtask:no-alloc:end";

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Method calls that block the calling thread. A live lock guard at
/// one of these is a latency cliff (every contender stalls behind the
/// blocked holder) and, for condvar waits, the one place holding the
/// lock is *required* — hence the `HOLDS-LOCK:` escape.
const BLOCKING_CALLS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "accept",
    "read_line",
    "read_exact",
    "write_all",
    "flush",
    "recv",
    "recv_timeout",
    "join",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// `Type::ctor` paths that allocate (or can, on first use).
const ALLOC_PATHS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "Vec::from",
    "String::new",
    "String::from",
    "String::with_capacity",
    "Box::new",
    "Arc::new",
    "Rc::new",
];

/// Method calls that allocate or can grow their receiver.
const ALLOC_METHODS: &[&str] = &[
    "with_capacity",
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "push",
    "push_str",
    "push_back",
    "push_front",
    "extend",
    "extend_from_slice",
    "append",
    "insert",
    "reserve",
    "reserve_exact",
    "resize",
    "clone",
];

/// Runs every concurrency rule over one file.
pub fn conc_lint_file(file: &SourceFile, policy: &ConcPolicy) -> Vec<Violation> {
    let mut out = Vec::new();
    if is_exempt(file, policy) {
        return out;
    }
    let limit = test_boundary(file);
    rule_atomic_ordering(file, policy, limit, &mut out);
    rule_lock_discipline(file, policy, limit, &mut out);
    rule_no_alloc(file, limit, &mut out);
    out
}

fn is_exempt(file: &SourceFile, policy: &ConcPolicy) -> bool {
    policy
        .exempt_prefixes
        .iter()
        .any(|p| file.rel_path.starts_with(p))
}

fn violation(file: &SourceFile, idx: usize, rule: &'static str, msg: String) -> Violation {
    Violation {
        file: file.rel_path.clone(),
        line: idx + 1,
        rule,
        msg,
    }
}

/// First line of the file's trailing test module, if any: a
/// `#[cfg(test)]` attribute whose next non-transparent line declares a
/// `mod`. Lines at or past it are exempt from the concurrency rules
/// and from ledger site collection. A `#[cfg(test)]` on anything else
/// (a test-only static, say) is NOT a boundary — production code below
/// it stays audited.
fn test_boundary(file: &SourceFile) -> usize {
    for (idx, line) in file.lines.iter().enumerate() {
        if !line.code.trim().starts_with("#[cfg(test)]") {
            continue;
        }
        for next in &file.lines[idx + 1..] {
            if is_transparent(next) {
                continue;
            }
            if !word_positions(&next.code, "mod").is_empty() {
                return idx;
            }
            break;
        }
    }
    file.lines.len()
}

/// True when `marker` appears in a comment on line `idx` or on the
/// contiguous transparent (blank/comment/attribute) block directly
/// above — the same adjacency rule R1 uses for `SAFETY:`.
fn marker_adjacent(file: &SourceFile, idx: usize, marker: &str) -> bool {
    if file.lines[idx].comment.contains(marker) {
        return true;
    }
    let mut up = idx;
    while up > 0 {
        up -= 1;
        let above = &file.lines[up];
        if above.comment.contains(marker) {
            return true;
        }
        if !is_transparent(above) {
            return false;
        }
    }
    false
}

/// Every atomic-ordering token before `limit`, as (line idx, variant).
/// `cmp::Ordering::{Less,Equal,Greater}` never matches: the variant
/// set is the atomic one.
fn atomic_sites(file: &SourceFile, limit: usize) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate().take(limit) {
        for pos in word_positions(&line.code, "Ordering") {
            let rest = &line.code[pos + "Ordering".len()..];
            if let Some(stripped) = rest.strip_prefix("::") {
                if let Some(v) = ATOMIC_ORDERINGS.iter().find(|v| word_at(stripped, 0, v)) {
                    out.push((idx, *v));
                }
            }
        }
    }
    out
}

/// R5: every atomic ordering carries an `ORDER:` justification;
/// SeqCst only on the allowlist.
fn rule_atomic_ordering(
    file: &SourceFile,
    policy: &ConcPolicy,
    limit: usize,
    out: &mut Vec<Violation>,
) {
    for (idx, variant) in atomic_sites(file, limit) {
        if !marker_adjacent(file, idx, ORDER_MARKER) {
            out.push(violation(
                file,
                idx,
                "atomic-ordering",
                format!(
                    "`Ordering::{variant}` without an adjacent `// ORDER:` comment naming the \
                     synchronizes-with edge (or the relaxed-counter default)"
                ),
            ));
        }
        if variant == "SeqCst" && !policy.seqcst_allowlist.contains(&file.rel_path.as_str()) {
            out.push(violation(
                file,
                idx,
                "atomic-ordering",
                format!(
                    "`Ordering::SeqCst` outside the allowlist ({}); use an acquire/release \
                     pair, or add the file to the policy with a rationale",
                    policy.seqcst_allowlist.join(", ")
                ),
            ));
        }
    }
}

/// A lock acquisition found on one line.
struct LockCall {
    /// Byte offset of the `lock` token in the line's code text.
    pos: usize,
    /// The lock's name: the field/variable locked (`queue` for both
    /// `lock(&server.queue)` and `server.queue.lock()`).
    name: String,
    /// Offset just past the call's balanced closing paren.
    end: usize,
}

/// Every `lock(..)` / `.lock()` call on a code line. `fn lock<T>` is
/// skipped (followed by `<`), `RwLock`/`try_lock`/`unlock` never match
/// the whole word.
fn lock_calls(code: &str) -> Vec<LockCall> {
    let mut out = Vec::new();
    for pos in word_positions(code, "lock") {
        let after = &code[pos + 4..];
        if !after.starts_with('(') {
            continue;
        }
        let Some(close) = balanced_close(after) else {
            continue;
        };
        let name = if code[..pos].ends_with('.') {
            last_ident(&code[..pos - 1])
        } else {
            last_ident(after[1..close].trim_end_matches(|c: char| !ident_char(c)))
        };
        out.push(LockCall {
            pos,
            name,
            end: pos + 4 + close + 1,
        });
    }
    out
}

fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Offset of the `)` balancing the `(` that `after` starts with.
fn balanced_close(after: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in after.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// The trailing identifier of `text`, e.g. `queue` for `&server.queue`.
fn last_ident(text: &str) -> String {
    let tail: String = text.chars().rev().take_while(|c| ident_char(*c)).collect();
    tail.chars().rev().collect()
}

/// Does this line bind the lock guard to a local (`let g = lock(&m);`,
/// optionally through an unwrap-style adapter chain ending the
/// statement)? Anything else — `lock(&m).push_back(x);`,
/// `lock(&m).drain(..).collect()` — is a same-statement temporary
/// whose guard dies at the semicolon, so it never enters the held set.
fn binds_guard(code: &str, call: &LockCall) -> bool {
    if !code.trim_start().starts_with("let ") {
        return false;
    }
    let rest = code[call.end..].trim();
    rest == ";" || (rest.starts_with(".unwrap") && rest.ends_with(';'))
}

fn code_indent(code: &str) -> usize {
    code.len() - code.trim_start().len()
}

/// R6: nested acquisitions must follow the declared order; no guard
/// may be live across a blocking call without a `HOLDS-LOCK:` escape.
fn rule_lock_discipline(
    file: &SourceFile,
    policy: &ConcPolicy,
    limit: usize,
    out: &mut Vec<Violation>,
) {
    let rank = |name: &str| policy.lock_order.iter().position(|l| *l == name);
    // Held guards as (name, binding indent); popped when a line
    // dedents past the binding or explicitly `drop(name)`s it.
    let mut held: Vec<(String, usize)> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate().take(limit) {
        let code = &line.code;
        if code.trim().is_empty() {
            continue;
        }
        let indent = code_indent(code);
        held.retain(|(_, bind_indent)| indent >= *bind_indent);
        for pos in word_positions(code, "drop") {
            let after = &code[pos + 4..];
            if let Some(args) = after.strip_prefix('(') {
                let dropped = last_ident(args.trim_end_matches(|c: char| !ident_char(c)));
                held.retain(|(name, _)| *name != dropped);
            }
        }

        let calls = lock_calls(code);
        if !held.is_empty() || !calls.is_empty() {
            check_blocking(file, idx, code, &held, &calls, out);
        }
        for call in calls {
            for (held_name, _) in &held {
                let msg = match (rank(held_name), rank(&call.name)) {
                    (Some(h), Some(n)) if n <= h => format!(
                        "lock `{}` acquired while holding `{held_name}` violates the declared \
                         order ({}); acquire in policy order or restructure",
                        call.name,
                        policy.lock_order.join(" -> ")
                    ),
                    (h, n) if h.is_none() || n.is_none() => format!(
                        "nested acquisition `{held_name}` -> `{}` involves a lock missing from \
                         the declared order ({}); add it to the policy",
                        call.name,
                        policy.lock_order.join(" -> ")
                    ),
                    _ => continue,
                };
                out.push(violation(file, idx, "lock-discipline", msg));
            }
            if binds_guard(code, &call) {
                held.push((call.name, indent));
            }
        }
    }
}

/// Flags blocking calls on a line while any guard is held (or, for a
/// same-line temporary guard, after its acquisition).
fn check_blocking(
    file: &SourceFile,
    idx: usize,
    code: &str,
    held: &[(String, usize)],
    calls: &[LockCall],
    out: &mut Vec<Violation>,
) {
    for blocking in BLOCKING_CALLS {
        for pos in word_positions(code, blocking) {
            if !code[pos + blocking.len()..].starts_with('(')
                || !code[..pos].ends_with('.')
                || marker_adjacent(file, idx, HOLDS_LOCK_MARKER)
            {
                continue;
            }
            let holder = held
                .last()
                .map(|(name, _)| name.as_str())
                .or_else(|| calls.iter().find(|c| c.pos < pos).map(|c| c.name.as_str()));
            if let Some(holder) = holder {
                out.push(violation(
                    file,
                    idx,
                    "lock-discipline",
                    format!(
                        "lock `{holder}` held across blocking `.{blocking}(..)`; drop the guard \
                         first or annotate `// HOLDS-LOCK:` with a rationale"
                    ),
                ));
            }
        }
    }
}

/// R7: no-alloc regions deny alloc-capable macros, constructor paths,
/// and growth methods, with a per-line `ALLOC-OK:` escape.
fn rule_no_alloc(file: &SourceFile, limit: usize, out: &mut Vec<Violation>) {
    let mut in_region = false;
    for (idx, line) in file.lines.iter().enumerate() {
        if line.comment.contains(NOALLOC_BEGIN) {
            if in_region {
                out.push(violation(
                    file,
                    idx,
                    "no-alloc",
                    "nested/duplicate no-alloc begin marker".into(),
                ));
            }
            in_region = true;
            continue;
        }
        if line.comment.contains(NOALLOC_END) {
            if !in_region {
                out.push(violation(
                    file,
                    idx,
                    "no-alloc",
                    "no-alloc end marker without a begin".into(),
                ));
            }
            in_region = false;
            continue;
        }
        if !in_region || idx >= limit {
            continue;
        }
        if marker_adjacent(file, idx, ALLOC_OK_MARKER) {
            continue;
        }
        check_noalloc_line(file, idx, &line.code, out);
    }
    if in_region {
        out.push(violation(
            file,
            file.lines.len().saturating_sub(1),
            "no-alloc",
            "no-alloc region never closed".into(),
        ));
    }
}

fn check_noalloc_line(file: &SourceFile, idx: usize, code: &str, out: &mut Vec<Violation>) {
    for mac in ALLOC_MACROS {
        for pos in word_positions(code, mac) {
            if code[pos + mac.len()..].starts_with('!') {
                out.push(violation(
                    file,
                    idx,
                    "no-alloc",
                    format!("`{mac}!` allocates inside a no-alloc region"),
                ));
            }
        }
    }
    for path in ALLOC_PATHS {
        let (head, tail) = path.split_once("::").unwrap_or((path, ""));
        for pos in word_positions(code, head) {
            let rest = &code[pos + head.len()..];
            if rest
                .strip_prefix("::")
                .is_some_and(|after| word_at(after, 0, tail))
            {
                out.push(violation(
                    file,
                    idx,
                    "no-alloc",
                    format!("`{path}` inside a no-alloc region; preallocate outside it"),
                ));
            }
        }
    }
    for method in ALLOC_METHODS {
        for pos in word_positions(code, method) {
            let rest = &code[pos + method.len()..];
            if rest.starts_with('(') || rest.starts_with("::<") {
                out.push(violation(
                    file,
                    idx,
                    "no-alloc",
                    format!(
                        "`.{method}(..)` can allocate inside a no-alloc region; preallocate \
                         outside it or annotate `// ALLOC-OK:` with a rationale"
                    ),
                ));
            }
        }
    }
}

/// Ordering-name (or `"lock"`) → count, per (file, enclosing fn).
pub type KindCounts = BTreeMap<String, usize>;
/// (repo-relative file, enclosing fn) → kind multiset.
pub type ConcSiteMap = BTreeMap<(String, String), KindCounts>;

/// Collects every non-test atomic/lock site for the ledger.
pub fn collect_conc_sites(files: &[SourceFile], policy: &ConcPolicy) -> ConcSiteMap {
    let mut map = ConcSiteMap::new();
    for file in files {
        if is_exempt(file, policy) {
            continue;
        }
        let limit = test_boundary(file);
        let mut add = |idx: usize, kind: &str| {
            let key = (file.rel_path.clone(), enclosing_fn(file, idx));
            *map.entry(key)
                .or_default()
                .entry(kind.to_owned())
                .or_insert(0) += 1;
        };
        for (idx, variant) in atomic_sites(file, limit) {
            add(idx, variant);
        }
        for (idx, line) in file.lines.iter().enumerate().take(limit) {
            for _ in lock_calls(&line.code) {
                add(idx, "lock");
            }
        }
    }
    map
}

fn format_kinds(kinds: &KindCounts) -> String {
    kinds
        .iter()
        .map(|(kind, n)| format!("{kind} x{n}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn parse_kinds(text: &str) -> Option<KindCounts> {
    let mut out = KindCounts::new();
    for chunk in text.split(',') {
        let (kind, count) = chunk.trim().rsplit_once(" x")?;
        *out.entry(kind.trim().to_owned()).or_insert(0) += count.trim().parse::<usize>().ok()?;
    }
    Some(out)
}

/// Diffs the discovered atomic/lock sites against the
/// `CONCURRENCY_LEDGER.md` text, failing on drift in either direction,
/// on a `kinds:` multiset mismatch (an ordering changed even if the
/// count did not), and on entries missing their `kinds:`/`rationale:`.
pub fn check_ledger(sites: &ConcSiteMap, text: &str) -> Vec<Violation> {
    const LEDGER: &str = "CONCURRENCY_LEDGER.md";
    let (entries, mut violations) = ledger::parse_entries(text, LEDGER, "conc-ledger");
    let mut ledger_map: BTreeMap<(String, String), &ledger::RawEntry> = BTreeMap::new();
    for entry in &entries {
        let key = (entry.file.clone(), entry.func.clone());
        if ledger_map.insert(key, entry).is_some() {
            violations.push(Violation {
                file: LEDGER.into(),
                line: entry.line,
                rule: "conc-ledger",
                msg: format!("duplicate entry for `{}` · `{}`", entry.file, entry.func),
            });
        }
    }

    for ((file, func), kinds) in sites {
        let Some(entry) = ledger_map.get(&(file.clone(), func.clone())) else {
            violations.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "conc-ledger",
                msg: format!(
                    "atomic/lock sites in `{func}` have no CONCURRENCY_LEDGER.md entry; \
                     run `cargo run -p xtask -- sites` and record a rationale"
                ),
            });
            continue;
        };
        let total: usize = kinds.values().sum();
        if entry.sites != total {
            violations.push(Violation {
                file: LEDGER.into(),
                line: entry.line,
                rule: "conc-ledger",
                msg: format!(
                    "`{file}` · `{func}` records {} sites but the source has {total}; \
                     re-audit the entry",
                    entry.sites
                ),
            });
        }
        match entry.field("kinds").and_then(parse_kinds) {
            Some(recorded) if recorded == *kinds => {}
            Some(_) => violations.push(Violation {
                file: LEDGER.into(),
                line: entry.line,
                rule: "conc-ledger",
                msg: format!(
                    "`{file}` · `{func}` kinds drifted: ledger has `{}`, source has `{}`; \
                     an ordering changed — re-audit the entry",
                    entry.field("kinds").unwrap_or("").trim(),
                    format_kinds(kinds)
                ),
            }),
            None => violations.push(Violation {
                file: LEDGER.into(),
                line: entry.line,
                rule: "conc-ledger",
                msg: format!(
                    "entry `{file}` · `{func}` is missing a well-formed `- kinds:` \
                     (e.g. `- kinds: {}`)",
                    format_kinds(kinds)
                ),
            }),
        }
        if entry.field("rationale").unwrap_or("").trim().is_empty() {
            violations.push(Violation {
                file: LEDGER.into(),
                line: entry.line,
                rule: "conc-ledger",
                msg: format!("entry `{file}` · `{func}` is missing `- rationale:`"),
            });
        }
    }

    for entry in &entries {
        let key = (entry.file.clone(), entry.func.clone());
        if !sites.contains_key(&key) {
            violations.push(Violation {
                file: LEDGER.into(),
                line: entry.line,
                rule: "conc-ledger",
                msg: format!(
                    "stale entry: no atomic/lock site remains in `{}` · `{}`; delete the entry",
                    entry.file, entry.func
                ),
            });
        }
    }
    violations
}

/// Renders the discovered sites as ledger stubs for `xtask sites`.
pub fn render_stubs(sites: &ConcSiteMap) -> String {
    let mut out = String::new();
    for ((file, func), kinds) in sites {
        let total: usize = kinds.values().sum();
        let plural = if total == 1 { "site" } else { "sites" };
        out.push_str(&format!("## `{file}` · `{func}` — {total} {plural}\n"));
        out.push_str(&format!("- kinds: {}\n", format_kinds(kinds)));
        out.push_str("- rationale: TODO\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    const TEST_POLICY: ConcPolicy = ConcPolicy {
        seqcst_allowlist: &["allowed.rs"],
        lock_order: &["queue", "park", "done"],
        exempt_prefixes: &["tests/"],
    };

    fn rules_fired(src: &str, path: &str) -> Vec<String> {
        let f = scan(path, src);
        conc_lint_file(&f, &TEST_POLICY)
            .into_iter()
            .map(|v| format!("{}:{}", v.rule, v.line))
            .collect()
    }

    #[test]
    fn undocumented_ordering_fires() {
        let fired = rules_fired("fn f() { x.load(Ordering::Relaxed); }\n", "a.rs");
        assert_eq!(fired, vec!["atomic-ordering:1"]);
    }

    #[test]
    fn documented_ordering_passes() {
        for src in [
            "x.load(Ordering::Acquire); // ORDER: pairs with the Release store in publish().\n",
            "// ORDER: relaxed counter (stats only).\nx.fetch_add(1, Ordering::Relaxed);\n",
            "// ORDER: attributes are transparent.\n#[inline]\nfn f() { x.load(Ordering::Acquire); }\n",
        ] {
            assert_eq!(rules_fired(src, "a.rs"), Vec::<String>::new(), "{src}");
        }
    }

    #[test]
    fn seqcst_denied_outside_allowlist() {
        let src = "x.load(Ordering::SeqCst); // ORDER: total order.\n";
        assert_eq!(rules_fired(src, "a.rs"), vec!["atomic-ordering:1"]);
        assert_eq!(rules_fired(src, "allowed.rs"), Vec::<String>::new());
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let src = "match a.cmp(b) { Ordering::Less => {} _ => {} }\n";
        assert_eq!(rules_fired(src, "a.rs"), Vec::<String>::new());
    }

    #[test]
    fn test_module_is_exempt_but_test_only_static_is_not() {
        let tail = "#[cfg(test)]\nmod tests {\n    fn f() { x.load(Ordering::Relaxed); }\n}\n";
        assert_eq!(rules_fired(tail, "a.rs"), Vec::<String>::new());
        let mid = "#[cfg(test)]\nstatic LOCKED: u8 = 0;\nfn f() { x.load(Ordering::Relaxed); }\n";
        assert_eq!(rules_fired(mid, "a.rs"), vec!["atomic-ordering:3"]);
        assert_eq!(
            rules_fired("fn f() { x.load(Ordering::Relaxed); }\n", "tests/a.rs"),
            Vec::<String>::new()
        );
    }

    #[test]
    fn out_of_order_nested_lock_fires() {
        let src = "\
fn f() {
    let park = lock(&self.park);
    let queue = lock(&self.queue);
}
";
        assert_eq!(rules_fired(src, "a.rs"), vec!["lock-discipline:3"]);
    }

    #[test]
    fn in_order_nested_lock_passes() {
        let src = "\
fn f() {
    let queue = lock(&self.queue);
    let park = lock(&self.park);
}
";
        assert_eq!(rules_fired(src, "a.rs"), Vec::<String>::new());
    }

    #[test]
    fn unranked_nested_lock_fires() {
        let src = "\
fn f() {
    let queue = lock(&self.queue);
    let other = lock(&self.mystery);
}
";
        assert_eq!(rules_fired(src, "a.rs"), vec!["lock-discipline:3"]);
    }

    #[test]
    fn guard_across_wait_fires_and_holds_lock_escapes() {
        let src = "\
fn f() {
    let queue = lock(&self.queue);
    let queue = self.cond.wait(queue);
}
";
        assert_eq!(rules_fired(src, "a.rs"), vec!["lock-discipline:3"]);
        let escaped = "\
fn f() {
    let queue = lock(&self.queue);
    // HOLDS-LOCK: condvar wait atomically releases the mutex.
    let queue = self.cond.wait(queue);
}
";
        assert_eq!(rules_fired(escaped, "a.rs"), Vec::<String>::new());
    }

    #[test]
    fn guard_dies_at_dedent_and_on_explicit_drop() {
        let dedent = "\
fn f() {
    {
        let queue = lock(&self.queue);
    }
    stream.write_all(&buf);
}
";
        assert_eq!(rules_fired(dedent, "a.rs"), Vec::<String>::new());
        let dropped = "\
fn f() {
    let queue = lock(&self.queue);
    drop(queue);
    stream.write_all(&buf);
}
";
        assert_eq!(rules_fired(dropped, "a.rs"), Vec::<String>::new());
    }

    #[test]
    fn method_lock_and_temporary_guards() {
        // A `.lock()` temporary: guard dies at the semicolon, so the
        // write_all on the next line is fine — but a blocking call on
        // the same line after the acquisition is not.
        let ok = "\
fn f() {
    self.queue.lock().push_back(x);
    stream.write_all(&buf);
}
";
        assert_eq!(rules_fired(ok, "a.rs"), Vec::<String>::new());
        let same_line = "fn f() { lock(&self.queue).stream.write_all(&buf); }\n";
        assert_eq!(rules_fired(same_line, "a.rs"), vec!["lock-discipline:1"]);
    }

    #[test]
    fn no_alloc_region_denies_allocs() {
        let src = "\
// xtask:no-alloc:begin
let a = Vec::new();
buf.push(1);
let s = format!(\"x\");
let v = xs.iter().collect::<Vec<_>>();
let w = xs.to_vec();
// xtask:no-alloc:end
";
        let fired = rules_fired(src, "a.rs");
        assert_eq!(fired.len(), 5, "{fired:?}");
        assert!(fired.iter().all(|r| r.starts_with("no-alloc:")));
    }

    #[test]
    fn no_alloc_region_allows_reuse_and_alloc_ok_escape() {
        let src = "\
// xtask:no-alloc:begin
buf.clear();
acc.fill(0.0);
let top = heap.peek();
// ALLOC-OK: grow-only scratch; steady state hits capacity.
scratch.extend_from_slice(&acc);
// xtask:no-alloc:end
";
        assert_eq!(rules_fired(src, "a.rs"), Vec::<String>::new());
    }

    #[test]
    fn unbalanced_no_alloc_markers_fire() {
        assert_eq!(
            rules_fired("// xtask:no-alloc:begin\nlet ok = 1;\n", "a.rs"),
            vec!["no-alloc:2"]
        );
        assert_eq!(
            rules_fired("// xtask:no-alloc:end\n", "a.rs"),
            vec!["no-alloc:1"]
        );
    }

    #[allow(clippy::type_complexity)]
    fn conc_sites(items: &[(&str, &str, &[(&str, usize)])]) -> ConcSiteMap {
        items
            .iter()
            .map(|(f, g, kinds)| {
                (
                    (f.to_string(), g.to_string()),
                    kinds.iter().map(|(k, n)| (k.to_string(), *n)).collect(),
                )
            })
            .collect()
    }

    const GOOD_LEDGER: &str = "\
# Concurrency ledger

## `a.rs` · `publish` — 3 sites
- kinds: Release x1, lock x2
- rationale: Release store pairs with Acquire loads in readers.
";

    #[test]
    fn in_sync_conc_ledger_passes() {
        let sites = conc_sites(&[("a.rs", "publish", &[("Release", 1), ("lock", 2)])]);
        assert!(check_ledger(&sites, GOOD_LEDGER).is_empty());
    }

    #[test]
    fn site_missing_from_ledger_fires() {
        // Both ways a tree-side site can be unrecorded: a brand-new
        // (file, fn) with no entry at all, and an existing entry whose
        // site count no longer matches.
        let sites = conc_sites(&[
            ("a.rs", "publish", &[("Release", 1), ("lock", 2)]),
            ("b.rs", "fresh", &[("Relaxed", 1)]),
        ]);
        let v = check_ledger(&sites, GOOD_LEDGER);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("no CONCURRENCY_LEDGER.md entry"));
        let grown = conc_sites(&[("a.rs", "publish", &[("Release", 2), ("lock", 2)])]);
        let v = check_ledger(&grown, GOOD_LEDGER);
        assert!(v
            .iter()
            .any(|v| v.msg.contains("records 3 sites but the source has 4")));
    }

    #[test]
    fn stale_ledger_entry_fires() {
        let v = check_ledger(&ConcSiteMap::new(), GOOD_LEDGER);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("stale entry"));
    }

    #[test]
    fn kinds_drift_fires_at_same_count() {
        // AcqRel downgraded to Relaxed: count unchanged, kinds differ.
        let sites = conc_sites(&[("a.rs", "publish", &[("Relaxed", 1), ("lock", 2)])]);
        let v = check_ledger(&sites, GOOD_LEDGER);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("kinds drifted"));
    }

    #[test]
    fn missing_fields_fire() {
        let sites = conc_sites(&[("a.rs", "publish", &[("Release", 1), ("lock", 2)])]);
        let bare = "## `a.rs` · `publish` — 3 sites\n";
        let v = check_ledger(&sites, bare);
        assert!(v
            .iter()
            .any(|v| v.msg.contains("missing a well-formed `- kinds:`")));
        assert!(v.iter().any(|v| v.msg.contains("missing `- rationale:`")));
    }

    #[test]
    fn stub_roundtrip_is_in_sync() {
        let f = scan(
            "a.rs",
            "fn publish() {\n    // ORDER: x.\n    x.store(1, Ordering::Release);\n    let queue = lock(&self.queue);\n}\n",
        );
        let sites = collect_conc_sites(&[f], &TEST_POLICY);
        let stubs = render_stubs(&sites).replace("TODO", "why");
        assert!(check_ledger(&sites, &stubs).is_empty());
    }
}
