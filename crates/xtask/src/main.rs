//! Repo-invariant static analysis.
//!
//! ```text
//! cargo run -p xtask -- check      # lints + both ledgers + selftest (CI gate)
//! cargo run -p xtask -- lint      # lint rules only (unsafe + concurrency)
//! cargo run -p xtask -- ledger   # UNSAFE_LEDGER.md + CONCURRENCY_LEDGER.md cross-check
//! cargo run -p xtask -- sites    # print discovered sites as stubs for both ledgers
//! cargo run -p xtask -- selftest # prove the rules fire on seeded violations
//! ```
//!
//! Output flags (any subcommand that reports violations):
//!
//! - `--json` — one machine-readable JSON object per violation on
//!   stdout: `{"file":…,"line":…,"rule":…,"msg":…}`.
//! - `--github` — GitHub Actions annotations
//!   (`::error file=…,line=…::…`) so CI failures render inline on PRs.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//!
//! The pass is deliberately dependency-free and lexical (see
//! `scan.rs`); `lint.rs` documents the unsafe-audit rules (R1–R4),
//! `conc.rs` the concurrency rules (R5 atomic-ordering, R6
//! lock-discipline, R7 no-alloc regions), and `ledger.rs` the
//! ledger drift machinery shared by `UNSAFE_LEDGER.md` and
//! `CONCURRENCY_LEDGER.md`. The `selftest` subcommand — also run as
//! part of `check` — feeds seeded violations through the real engine
//! and fails if any rule does NOT fire, so a regression that silences
//! a rule is itself a CI failure.

mod conc;
mod ledger;
mod lint;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use conc::CONC_POLICY;
use lint::{Violation, POLICY};

/// Directories never scanned: build output, VCS, and the vendored
/// third-party stand-ins (not our code to audit; they contain no
/// unsafe, which `selftest` cheaply re-asserts via the walker anyway).
/// Entries containing `/` match one exact repo-relative path; bare
/// entries match ANY path component, so nested build dirs (e.g. a
/// crate-local `target/`) are skipped wherever they appear.
const SKIP_DIRS: &[&str] = &["target", ".git", "crates/vendor"];

fn skip_dir(rel_str: &str) -> bool {
    SKIP_DIRS.iter().any(|s| {
        if s.contains('/') {
            rel_str == *s
        } else {
            rel_str.split('/').any(|component| component == *s)
        }
    })
}

fn repo_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            if !skip_dir(&rel_str) {
                walk(root, &path, out)?;
            }
        } else if rel_str.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn scan_tree(root: &Path) -> std::io::Result<Vec<scan::SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(scan::scan(&rel, &source));
    }
    Ok(files)
}

fn run_lint(files: &[scan::SourceFile]) -> Vec<Violation> {
    files
        .iter()
        .flat_map(|f| {
            let mut v = lint::lint_file(f, &POLICY);
            v.extend(conc::conc_lint_file(f, &CONC_POLICY));
            v
        })
        .collect()
}

fn collect_sites(files: &[scan::SourceFile]) -> ledger::SiteMap {
    let mut sites = ledger::SiteMap::new();
    for file in files {
        for (func, _line) in lint::unsafe_sites(file) {
            *sites.entry((file.rel_path.clone(), func)).or_insert(0) += 1;
        }
    }
    sites
}

fn fn_exists(files: &[scan::SourceFile], name: &str) -> bool {
    files.iter().any(|f| {
        f.lines.iter().any(|l| {
            scan::word_positions(&l.code, "fn")
                .iter()
                .any(|&pos| scan::word_at(&l.code, pos + 3, name))
        })
    })
}

fn read_ledger(root: &Path, name: &'static str, rule: &'static str) -> Result<String, Violation> {
    std::fs::read_to_string(root.join(name)).map_err(|err| Violation {
        file: name.into(),
        line: 0,
        rule,
        msg: format!("cannot read ledger: {err}"),
    })
}

fn run_ledger(root: &Path, files: &[scan::SourceFile]) -> Vec<Violation> {
    let mut violations = match read_ledger(root, "UNSAFE_LEDGER.md", "ledger") {
        Ok(text) => ledger::check(&collect_sites(files), &text, |name| fn_exists(files, name)),
        Err(v) => vec![v],
    };
    violations.extend(
        match read_ledger(root, "CONCURRENCY_LEDGER.md", "conc-ledger") {
            Ok(text) => conc::check_ledger(&conc::collect_conc_sites(files, &CONC_POLICY), &text),
            Err(v) => vec![v],
        },
    );
    violations
}

/// Feeds seeded violations through the real engine; returns human
/// descriptions of any rule that FAILED to fire (empty = healthy).
fn selftest_failures() -> Vec<String> {
    let mut failures = Vec::new();
    let mut check_fired = |desc: &str, rule: &str, fired: Vec<Violation>| {
        if !fired.iter().any(|v| v.rule == rule) {
            failures.push(format!(
                "rule `{rule}` did not fire on seeded violation: {desc}"
            ));
        }
    };
    let mut expect = |desc: &str, path: &str, src: &str, rule: &str| {
        let file = scan::scan(path, src);
        check_fired(desc, rule, lint::lint_file(&file, &POLICY));
    };
    expect(
        "undocumented unsafe block",
        "seed.rs",
        "fn f() { unsafe { g(); } }\n",
        "safety-comment",
    );
    expect(
        "get_unchecked outside the allowlist",
        "crates/core/src/query.rs",
        "// SAFETY: seeded.\nlet v = unsafe { s.get_unchecked(0) };\n",
        "unchecked-allowlist",
    );
    expect(
        "unwrap inside a hostile-input region",
        "seed.rs",
        "// xtask:hostile-input:begin\nlet v = x.unwrap();\n// xtask:hostile-input:end\n",
        "hostile-input",
    );
    expect(
        "truncating cast inside a hostile-input region",
        "seed.rs",
        "// xtask:hostile-input:begin\nlet v = n as u32;\n// xtask:hostile-input:end\n",
        "hostile-input",
    );
    expect(
        "raw indexing inside a hostile-input region",
        "seed.rs",
        "// xtask:hostile-input:begin\nlet v = buf[8];\n// xtask:hostile-input:end\n",
        "hostile-input",
    );
    expect(
        "required file without a hostile-input region",
        "crates/core/src/persist.rs",
        "fn clean() {}\n",
        "hostile-input",
    );
    expect(
        "partial_cmp().unwrap()",
        "seed.rs",
        "xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());\n",
        "float-cmp",
    );

    // Concurrency rules (R5–R7), through the real engine and policy.
    let mut expect_conc = |desc: &str, path: &str, src: &str, rule: &str| {
        let file = scan::scan(path, src);
        check_fired(desc, rule, conc::conc_lint_file(&file, &CONC_POLICY));
    };
    expect_conc(
        "atomic ordering without an ORDER: justification",
        "seed.rs",
        "fn f() { x.load(Ordering::Relaxed); }\n",
        "atomic-ordering",
    );
    expect_conc(
        "SeqCst outside the allowlist",
        "seed.rs",
        "fn f() { x.load(Ordering::SeqCst); } // ORDER: seeded total order.\n",
        "atomic-ordering",
    );
    expect_conc(
        "nested lock acquisition against the declared order",
        "seed.rs",
        "fn f() {\n    let park = lock(&self.park);\n    let queue = lock(&self.queue);\n}\n",
        "lock-discipline",
    );
    expect_conc(
        "lock guard held across a condvar wait",
        "seed.rs",
        "fn f() {\n    let queue = lock(&self.queue);\n    let queue = cv.wait(queue);\n}\n",
        "lock-discipline",
    );
    expect_conc(
        "allocation inside a no-alloc region",
        "seed.rs",
        "// xtask:no-alloc:begin\nlet v = Vec::new();\n// xtask:no-alloc:end\n",
        "no-alloc",
    );
    expect_conc(
        "container growth inside a no-alloc region",
        "seed.rs",
        "// xtask:no-alloc:begin\nbuf.push(1);\n// xtask:no-alloc:end\n",
        "no-alloc",
    );

    // Ledger drift in both directions, plus count drift.
    let sites: ledger::SiteMap = [(("a.rs".to_string(), "f".to_string()), 1)].into();
    let drift = [
        ("unsafe site missing from ledger", &sites, "# empty\n"),
        (
            "ledger count drift",
            &sites,
            "## `a.rs` · `f` — 2 sites\n- invariant: x\n- test: `t`\n",
        ),
    ];
    for (desc, sites, text) in drift {
        if ledger::check(sites, text, |_| true).is_empty() {
            failures.push(format!("ledger check did not fire on: {desc}"));
        }
    }
    let empty = ledger::SiteMap::new();
    if ledger::check(
        &empty,
        "## `a.rs` · `f` — 1 site\n- invariant: x\n- test: `t`\n",
        |_| true,
    )
    .is_empty()
    {
        failures.push("ledger check did not fire on: stale ledger entry".into());
    }

    // Concurrency-ledger drift in both directions, plus kinds drift.
    let conc_sites: conc::ConcSiteMap = [(
        ("a.rs".to_string(), "f".to_string()),
        [("Relaxed".to_string(), 1usize)].into(),
    )]
    .into();
    let conc_entry = "## `a.rs` · `f` — 1 site\n- kinds: Relaxed x1\n- rationale: x\n";
    let conc_drift = [
        (
            "atomic/lock site missing from concurrency ledger",
            &conc_sites,
            "# empty\n",
        ),
        (
            "concurrency-ledger kinds drift (ordering changed at same count)",
            &conc_sites,
            "## `a.rs` · `f` — 1 site\n- kinds: AcqRel x1\n- rationale: x\n",
        ),
    ];
    for (desc, sites, text) in conc_drift {
        if conc::check_ledger(sites, text).is_empty() {
            failures.push(format!("concurrency-ledger check did not fire on: {desc}"));
        }
    }
    if conc::check_ledger(&conc::ConcSiteMap::new(), conc_entry).is_empty() {
        failures.push("concurrency-ledger check did not fire on: stale entry".into());
    }
    failures
}

#[derive(Clone, Copy, PartialEq)]
enum Output {
    Human,
    Json,
    Github,
}

fn report(violations: &[Violation], output: Output) -> bool {
    for v in violations {
        match output {
            Output::Human => eprintln!("{v}"),
            Output::Json => println!("{}", v.to_json()),
            // `line=0` (whole-file findings) anchors to line 1: GitHub
            // rejects zero.
            Output::Github => println!(
                "::error file={},line={}::[{}] {}",
                v.file,
                v.line.max(1),
                v.rule,
                v.msg
            ),
        }
    }
    violations.is_empty()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut output = Output::Human;
    let mut cmd = String::new();
    for arg in &args {
        match arg.as_str() {
            "--json" => output = Output::Json,
            "--github" => output = Output::Github,
            other if cmd.is_empty() => cmd = other.to_owned(),
            other => {
                eprintln!("xtask: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = repo_root();
    let files = match scan_tree(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("xtask: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let ok = match cmd.as_str() {
        "lint" => report(&run_lint(&files), output),
        "ledger" => report(&run_ledger(&root, &files), output),
        "sites" => {
            print!(
                "# UNSAFE_LEDGER.md stubs\n{}\n# CONCURRENCY_LEDGER.md stubs\n{}",
                ledger::render_stubs(&collect_sites(&files)),
                conc::render_stubs(&conc::collect_conc_sites(&files, &CONC_POLICY))
            );
            true
        }
        "selftest" => {
            let failures = selftest_failures();
            for f in &failures {
                eprintln!("selftest: {f}");
            }
            failures.is_empty()
        }
        "check" => {
            let mut violations = run_lint(&files);
            violations.extend(run_ledger(&root, &files));
            let lint_ok = report(&violations, output);
            let failures = selftest_failures();
            for f in &failures {
                eprintln!("selftest: {f}");
            }
            let n = files.len();
            if lint_ok && failures.is_empty() && output == Output::Human {
                println!(
                    "xtask check: {n} files clean; both ledgers in sync; selftest rules all fire"
                );
            }
            lint_ok && failures.is_empty()
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- <check|lint|ledger|sites|selftest> [--json|--github]"
            );
            return ExitCode::from(2);
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selftest_rules_all_fire() {
        assert_eq!(selftest_failures(), Vec::<String>::new());
    }

    #[test]
    fn repo_root_is_a_workspace() {
        assert!(repo_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn skip_dirs_match_nested_components() {
        // Bare entries skip the dir at any depth, not only top level.
        assert!(skip_dir("target"));
        assert!(skip_dir("crates/core/target"));
        assert!(skip_dir("crates/core/target/debug"));
        assert!(skip_dir(".git"));
        // Path entries are exact: only the vendored tree itself.
        assert!(skip_dir("crates/vendor"));
        assert!(!skip_dir("crates/vendored_formats"));
        // Near-misses stay scanned.
        assert!(!skip_dir("crates/core"));
        assert!(!skip_dir("src/targeting"));
    }

    #[test]
    fn violation_json_is_escaped() {
        let v = Violation {
            file: "a.rs".into(),
            line: 3,
            rule: "atomic-ordering",
            msg: "needs `ORDER:` \"quoted\"".into(),
        };
        assert_eq!(
            v.to_json(),
            r#"{"file":"a.rs","line":3,"rule":"atomic-ordering","msg":"needs `ORDER:` \"quoted\""}"#
        );
    }
}
