//! Repo-invariant static analysis.
//!
//! ```text
//! cargo run -p xtask -- check      # lint + ledger + selftest (CI gate)
//! cargo run -p xtask -- lint      # lint rules only
//! cargo run -p xtask -- ledger   # UNSAFE_LEDGER.md cross-check only
//! cargo run -p xtask -- sites    # print discovered unsafe sites as ledger stubs
//! cargo run -p xtask -- selftest # prove the rules fire on seeded violations
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
//!
//! The pass is deliberately dependency-free and lexical (see
//! `scan.rs`); `lint.rs` documents the rules, `ledger.rs` the
//! `UNSAFE_LEDGER.md` drift check. The `selftest` subcommand — also run
//! as part of `check` — feeds seeded violations through the real engine
//! and fails if any rule does NOT fire, so a regression that silences a
//! rule is itself a CI failure.

mod ledger;
mod lint;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lint::{Violation, POLICY};

/// Directories never scanned: build output, VCS, and the vendored
/// third-party stand-ins (not our code to audit; they contain no
/// unsafe, which `selftest` cheaply re-asserts via the walker anyway).
const SKIP_DIRS: &[&str] = &["target", ".git", "crates/vendor"];

fn repo_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if SKIP_DIRS.iter().any(|s| rel_str == *s) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if rel_str.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn scan_tree(root: &Path) -> std::io::Result<Vec<scan::SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let source = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(scan::scan(&rel, &source));
    }
    Ok(files)
}

fn run_lint(files: &[scan::SourceFile]) -> Vec<Violation> {
    files
        .iter()
        .flat_map(|f| lint::lint_file(f, &POLICY))
        .collect()
}

fn collect_sites(files: &[scan::SourceFile]) -> ledger::SiteMap {
    let mut sites = ledger::SiteMap::new();
    for file in files {
        for (func, _line) in lint::unsafe_sites(file) {
            *sites.entry((file.rel_path.clone(), func)).or_insert(0) += 1;
        }
    }
    sites
}

fn fn_exists(files: &[scan::SourceFile], name: &str) -> bool {
    files.iter().any(|f| {
        f.lines.iter().any(|l| {
            scan::word_positions(&l.code, "fn")
                .iter()
                .any(|&pos| scan::word_at(&l.code, pos + 3, name))
        })
    })
}

fn run_ledger(root: &Path, files: &[scan::SourceFile]) -> Vec<Violation> {
    let path = root.join("UNSAFE_LEDGER.md");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            return vec![Violation {
                file: "UNSAFE_LEDGER.md".into(),
                line: 0,
                rule: "ledger",
                msg: format!("cannot read ledger: {err}"),
            }]
        }
    };
    ledger::check(&collect_sites(files), &text, |name| fn_exists(files, name))
}

/// Feeds seeded violations through the real engine; returns human
/// descriptions of any rule that FAILED to fire (empty = healthy).
fn selftest_failures() -> Vec<String> {
    let mut failures = Vec::new();
    let mut expect = |desc: &str, path: &str, src: &str, rule: &str| {
        let file = scan::scan(path, src);
        let fired = lint::lint_file(&file, &POLICY);
        if !fired.iter().any(|v| v.rule == rule) {
            failures.push(format!(
                "rule `{rule}` did not fire on seeded violation: {desc}"
            ));
        }
    };
    expect(
        "undocumented unsafe block",
        "seed.rs",
        "fn f() { unsafe { g(); } }\n",
        "safety-comment",
    );
    expect(
        "get_unchecked outside the allowlist",
        "crates/core/src/query.rs",
        "// SAFETY: seeded.\nlet v = unsafe { s.get_unchecked(0) };\n",
        "unchecked-allowlist",
    );
    expect(
        "unwrap inside a hostile-input region",
        "seed.rs",
        "// xtask:hostile-input:begin\nlet v = x.unwrap();\n// xtask:hostile-input:end\n",
        "hostile-input",
    );
    expect(
        "truncating cast inside a hostile-input region",
        "seed.rs",
        "// xtask:hostile-input:begin\nlet v = n as u32;\n// xtask:hostile-input:end\n",
        "hostile-input",
    );
    expect(
        "raw indexing inside a hostile-input region",
        "seed.rs",
        "// xtask:hostile-input:begin\nlet v = buf[8];\n// xtask:hostile-input:end\n",
        "hostile-input",
    );
    expect(
        "required file without a hostile-input region",
        "crates/core/src/persist.rs",
        "fn clean() {}\n",
        "hostile-input",
    );
    expect(
        "partial_cmp().unwrap()",
        "seed.rs",
        "xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());\n",
        "float-cmp",
    );

    // Ledger drift in both directions, plus count drift.
    let sites: ledger::SiteMap = [(("a.rs".to_string(), "f".to_string()), 1)].into();
    let drift = [
        ("unsafe site missing from ledger", &sites, "# empty\n"),
        (
            "ledger count drift",
            &sites,
            "## `a.rs` · `f` — 2 sites\n- invariant: x\n- test: `t`\n",
        ),
    ];
    for (desc, sites, text) in drift {
        if ledger::check(sites, text, |_| true).is_empty() {
            failures.push(format!("ledger check did not fire on: {desc}"));
        }
    }
    let empty = ledger::SiteMap::new();
    if ledger::check(
        &empty,
        "## `a.rs` · `f` — 1 site\n- invariant: x\n- test: `t`\n",
        |_| true,
    )
    .is_empty()
    {
        failures.push("ledger check did not fire on: stale ledger entry".into());
    }
    failures
}

fn report(violations: &[Violation]) -> bool {
    for v in violations {
        eprintln!("{v}");
    }
    violations.is_empty()
}

fn main() -> ExitCode {
    let cmd = std::env::args().nth(1).unwrap_or_default();
    let root = repo_root();
    let files = match scan_tree(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("xtask: cannot scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    let ok = match cmd.as_str() {
        "lint" => report(&run_lint(&files)),
        "ledger" => report(&run_ledger(&root, &files)),
        "sites" => {
            print!("{}", ledger::render_stubs(&collect_sites(&files)));
            true
        }
        "selftest" => {
            let failures = selftest_failures();
            for f in &failures {
                eprintln!("selftest: {f}");
            }
            failures.is_empty()
        }
        "check" => {
            let mut violations = run_lint(&files);
            violations.extend(run_ledger(&root, &files));
            let lint_ok = report(&violations);
            let failures = selftest_failures();
            for f in &failures {
                eprintln!("selftest: {f}");
            }
            let n = files.len();
            if lint_ok && failures.is_empty() {
                println!("xtask check: {n} files clean; ledger in sync; selftest rules all fire");
            }
            lint_ok && failures.is_empty()
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- <check|lint|ledger|sites|selftest>");
            return ExitCode::from(2);
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selftest_rules_all_fire() {
        assert_eq!(selftest_failures(), Vec::<String>::new());
    }

    #[test]
    fn repo_root_is_a_workspace() {
        assert!(repo_root().join("Cargo.toml").is_file());
    }
}
