//! The [`Folksonomy`] store: `(U, T, R, Y)` plus the indexes the ranking
//! methods need.
//!
//! Assignments are a *set* (`Y ⊆ U×T×R`, §IV-A) — duplicates collapse. Two
//! sorted posting arrays are maintained:
//!
//! * by resource `(r, t, u)` — drives `tags(r)`, `c(t, r) = |users(t, r)|`
//!   (Eq. 2's occurrence counts) and the Freq baseline;
//! * by tag `(t, r, u)` — drives per-tag posting lists, document frequency
//!   and the inverted index of the retrieval models.
//!
//! Export methods produce the third-order tensor entries of Eq. 5 and the
//! user-aggregated tag×resource matrix of Figure 3.

use crate::ids::{ResourceId, TagId, UserId};
use crate::interner::Interner;

/// One element of `Y`: user `u` annotated resource `r` with tag `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagAssignment {
    /// The tagger.
    pub user: UserId,
    /// The tag.
    pub tag: TagId,
    /// The annotated resource.
    pub resource: ResourceId,
}

/// Summary statistics, as reported in Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FolksonomyStats {
    /// Number of users `|U|`.
    pub users: usize,
    /// Number of tags `|T|`.
    pub tags: usize,
    /// Number of resources `|R|`.
    pub resources: usize,
    /// Number of tag assignments `|Y|`.
    pub assignments: usize,
}

impl std::fmt::Display for FolksonomyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|U|={} |T|={} |R|={} |Y|={}",
            self.users, self.tags, self.resources, self.assignments
        )
    }
}

/// An immutable social-tagging dataset with query-ready indexes.
#[derive(Debug, Clone)]
pub struct Folksonomy {
    users: Interner,
    tags: Interner,
    resources: Interner,
    /// Y sorted by (resource, tag, user); deduplicated.
    by_resource: Vec<TagAssignment>,
    /// Offsets into `by_resource`, one slot per resource + 1.
    resource_ptr: Vec<u32>,
    /// Y sorted by (tag, resource, user); deduplicated.
    by_tag: Vec<TagAssignment>,
    /// Offsets into `by_tag`, one slot per tag + 1.
    tag_ptr: Vec<u32>,
}

impl Folksonomy {
    /// Number of users `|U|`.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of tags `|T|`.
    pub fn num_tags(&self) -> usize {
        self.tags.len()
    }

    /// Number of resources `|R|`.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// Number of tag assignments `|Y|`.
    pub fn num_assignments(&self) -> usize {
        self.by_resource.len()
    }

    /// Table II-style statistics.
    pub fn stats(&self) -> FolksonomyStats {
        FolksonomyStats {
            users: self.num_users(),
            tags: self.num_tags(),
            resources: self.num_resources(),
            assignments: self.num_assignments(),
        }
    }

    /// Name of a user.
    pub fn user_name(&self, id: UserId) -> &str {
        self.users.name(id.index())
    }

    /// Name of a tag.
    pub fn tag_name(&self, id: TagId) -> &str {
        self.tags.name(id.index())
    }

    /// Name of a resource.
    pub fn resource_name(&self, id: ResourceId) -> &str {
        self.resources.name(id.index())
    }

    /// Looks a tag up by name.
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        self.tags.get(name).map(TagId::from_index)
    }

    /// Looks a user up by name.
    pub fn user_id(&self, name: &str) -> Option<UserId> {
        self.users.get(name).map(UserId::from_index)
    }

    /// Looks a resource up by name.
    pub fn resource_id(&self, name: &str) -> Option<ResourceId> {
        self.resources.get(name).map(ResourceId::from_index)
    }

    /// All assignments, sorted by (resource, tag, user).
    pub fn assignments(&self) -> &[TagAssignment] {
        &self.by_resource
    }

    /// The assignments of one resource, sorted by (tag, user).
    pub fn resource_assignments(&self, r: ResourceId) -> &[TagAssignment] {
        let lo = self.resource_ptr[r.index()] as usize;
        let hi = self.resource_ptr[r.index() + 1] as usize;
        &self.by_resource[lo..hi]
    }

    /// The assignments of one tag, sorted by (resource, user).
    pub fn tag_assignments(&self, t: TagId) -> &[TagAssignment] {
        let lo = self.tag_ptr[t.index()] as usize;
        let hi = self.tag_ptr[t.index() + 1] as usize;
        &self.by_tag[lo..hi]
    }

    /// `tags(r)` with occurrence counts: each distinct tag of resource `r`
    /// paired with `c(t, r) = |users(t, r)|` (Eq. 2's raw counts).
    pub fn resource_tag_counts(&self, r: ResourceId) -> Vec<(TagId, usize)> {
        let mut out: Vec<(TagId, usize)> = Vec::new();
        for a in self.resource_assignments(r) {
            match out.last_mut() {
                Some((t, c)) if *t == a.tag => *c += 1,
                _ => out.push((a.tag, 1)),
            }
        }
        out
    }

    /// Posting list of tag `t`: each distinct resource paired with the
    /// number of users who applied `t` to it.
    pub fn tag_resource_counts(&self, t: TagId) -> Vec<(ResourceId, usize)> {
        let mut out: Vec<(ResourceId, usize)> = Vec::new();
        for a in self.tag_assignments(t) {
            match out.last_mut() {
                Some((r, c)) if *r == a.resource => *c += 1,
                _ => out.push((a.resource, 1)),
            }
        }
        out
    }

    /// `|users(t, r)|`: how many users annotated `r` with `t`.
    pub fn user_count(&self, t: TagId, r: ResourceId) -> usize {
        self.resource_assignments(r)
            .iter()
            .filter(|a| a.tag == t)
            .count()
    }

    /// Number of assignments a user participates in.
    pub fn user_assignment_count(&self, u: UserId) -> usize {
        // Users have no dedicated index; this is an O(|Y|) scan used only by
        // the cleaning pipeline, which recomputes all three counts in one
        // pass anyway. Kept for tests and ad-hoc inspection.
        self.by_resource.iter().filter(|a| a.user == u).count()
    }

    /// Document frequency of a tag: number of distinct resources it
    /// annotates (the `n_l` of Eq. 1 at tag granularity).
    pub fn tag_document_frequency(&self, t: TagId) -> usize {
        self.tag_resource_counts(t).len()
    }

    /// Binary tensor entries per Eq. 5: one `(u, t, r, 1.0)` per assignment.
    pub fn tensor_entries(&self) -> Vec<(usize, usize, usize, f64)> {
        self.by_resource
            .iter()
            .map(|a| (a.user.index(), a.tag.index(), a.resource.index(), 1.0))
            .collect()
    }

    /// User-aggregated tag×resource matrix triples (Figure 3): entry
    /// `(t, r)` holds `|users(t, r)|`.
    pub fn tag_resource_triples(&self) -> Vec<(usize, usize, f64)> {
        let mut out: Vec<(usize, usize, f64)> = Vec::new();
        for t in 0..self.num_tags() {
            for (r, c) in self.tag_resource_counts(TagId::from_index(t)) {
                out.push((t, r.index(), c as f64));
            }
        }
        out
    }

    /// Rebuilds a store from raw parts (used by cleaning and generators).
    pub fn from_parts(
        users: Interner,
        tags: Interner,
        resources: Interner,
        mut assignments: Vec<TagAssignment>,
    ) -> Self {
        assignments.sort_unstable_by_key(|a| (a.resource, a.tag, a.user));
        assignments.dedup();
        let by_resource = assignments;
        let resource_ptr = build_ptr(
            resources.len(),
            by_resource.iter().map(|a| a.resource.index()),
        );
        let mut by_tag = by_resource.clone();
        by_tag.sort_unstable_by_key(|a| (a.tag, a.resource, a.user));
        let tag_ptr = build_ptr(tags.len(), by_tag.iter().map(|a| a.tag.index()));
        Folksonomy {
            users,
            tags,
            resources,
            by_resource,
            resource_ptr,
            by_tag,
            tag_ptr,
        }
    }
}

/// Builds the offset array for a pre-sorted key stream.
fn build_ptr(domain: usize, keys: impl Iterator<Item = usize>) -> Vec<u32> {
    let mut ptr = vec![0u32; domain + 1];
    for k in keys {
        ptr[k + 1] += 1;
    }
    for i in 0..domain {
        ptr[i + 1] += ptr[i];
    }
    ptr
}

/// Incrementally assembles a [`Folksonomy`] from named assignments.
#[derive(Debug, Default)]
pub struct FolksonomyBuilder {
    users: Interner,
    tags: Interner,
    resources: Interner,
    assignments: Vec<TagAssignment>,
}

impl FolksonomyBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        FolksonomyBuilder::default()
    }

    /// Records that `user` annotated `resource` with `tag`. Duplicate
    /// triples are collapsed when the store is built.
    pub fn add(&mut self, user: &str, tag: &str, resource: &str) -> &mut Self {
        let u = UserId::from_index(self.users.intern(user));
        let t = TagId::from_index(self.tags.intern(tag));
        let r = ResourceId::from_index(self.resources.intern(resource));
        self.assignments.push(TagAssignment {
            user: u,
            tag: t,
            resource: r,
        });
        self
    }

    /// Records an assignment by pre-interned ids (used by generators).
    pub fn add_ids(&mut self, user: UserId, tag: TagId, resource: ResourceId) -> &mut Self {
        self.assignments.push(TagAssignment {
            user,
            tag,
            resource,
        });
        self
    }

    /// Pre-registers an entity name so ids are stable even for entities
    /// that end up with no assignments.
    pub fn intern_user(&mut self, name: &str) -> UserId {
        UserId::from_index(self.users.intern(name))
    }

    /// See [`Self::intern_user`].
    pub fn intern_tag(&mut self, name: &str) -> TagId {
        TagId::from_index(self.tags.intern(name))
    }

    /// See [`Self::intern_user`].
    pub fn intern_resource(&mut self, name: &str) -> ResourceId {
        ResourceId::from_index(self.resources.intern(name))
    }

    /// Number of assignments recorded so far (duplicates included).
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` when no assignment has been recorded.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Finalizes the store.
    pub fn build(self) -> Folksonomy {
        Folksonomy::from_parts(self.users, self.tags, self.resources, self.assignments)
    }
}

/// Constructs the paper's Figure 2 running example: three users, three tags
/// (folk, people, laptop), three resources, seven assignments.
pub fn figure2_example() -> Folksonomy {
    let mut b = FolksonomyBuilder::new();
    b.add("u1", "folk", "r1");
    b.add("u1", "folk", "r2");
    b.add("u2", "folk", "r2");
    b.add("u3", "folk", "r2");
    b.add("u1", "people", "r1");
    b.add("u2", "laptop", "r3");
    b.add("u3", "laptop", "r3");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_statistics_match_paper() {
        let f = figure2_example();
        let s = f.stats();
        assert_eq!(
            s,
            FolksonomyStats {
                users: 3,
                tags: 3,
                resources: 3,
                assignments: 7
            }
        );
        assert_eq!(s.to_string(), "|U|=3 |T|=3 |R|=3 |Y|=7");
    }

    #[test]
    fn duplicates_collapse() {
        let mut b = FolksonomyBuilder::new();
        b.add("u", "t", "r");
        b.add("u", "t", "r");
        assert_eq!(b.len(), 2);
        let f = b.build();
        assert_eq!(f.num_assignments(), 1);
    }

    #[test]
    fn name_lookup_round_trips() {
        let f = figure2_example();
        let folk = f.tag_id("folk").unwrap();
        assert_eq!(f.tag_name(folk), "folk");
        let u2 = f.user_id("u2").unwrap();
        assert_eq!(f.user_name(u2), "u2");
        let r3 = f.resource_id("r3").unwrap();
        assert_eq!(f.resource_name(r3), "r3");
        assert!(f.tag_id("missing").is_none());
    }

    #[test]
    fn resource_tag_counts_aggregate_users() {
        let f = figure2_example();
        let r2 = f.resource_id("r2").unwrap();
        let counts = f.resource_tag_counts(r2);
        // r2 was tagged "folk" by three users.
        assert_eq!(counts.len(), 1);
        assert_eq!(f.tag_name(counts[0].0), "folk");
        assert_eq!(counts[0].1, 3);

        let r1 = f.resource_id("r1").unwrap();
        let mut names: Vec<(&str, usize)> = f
            .resource_tag_counts(r1)
            .into_iter()
            .map(|(t, c)| (f.tag_name(t), c))
            .collect();
        names.sort();
        assert_eq!(names, vec![("folk", 1), ("people", 1)]);
    }

    #[test]
    fn tag_posting_lists() {
        let f = figure2_example();
        let folk = f.tag_id("folk").unwrap();
        let postings = f.tag_resource_counts(folk);
        let by_name: Vec<(&str, usize)> = postings
            .iter()
            .map(|&(r, c)| (f.resource_name(r), c))
            .collect();
        assert_eq!(by_name, vec![("r1", 1), ("r2", 3)]);
        assert_eq!(f.tag_document_frequency(folk), 2);
        let laptop = f.tag_id("laptop").unwrap();
        assert_eq!(f.tag_document_frequency(laptop), 1);
    }

    #[test]
    fn user_count_matches_figure2() {
        let f = figure2_example();
        let folk = f.tag_id("folk").unwrap();
        let r2 = f.resource_id("r2").unwrap();
        assert_eq!(f.user_count(folk, r2), 3);
        let people = f.tag_id("people").unwrap();
        assert_eq!(f.user_count(people, r2), 0);
    }

    #[test]
    fn user_assignment_counts() {
        let f = figure2_example();
        let u1 = f.user_id("u1").unwrap();
        assert_eq!(f.user_assignment_count(u1), 3);
        let u3 = f.user_id("u3").unwrap();
        assert_eq!(f.user_assignment_count(u3), 2);
    }

    #[test]
    fn tensor_entries_are_binary_and_complete() {
        let f = figure2_example();
        let entries = f.tensor_entries();
        assert_eq!(entries.len(), 7);
        assert!(entries.iter().all(|&(_, _, _, v)| v == 1.0));
        // F[u3, folk, r2] = 1 per Figure 2(b).
        let u3 = f.user_id("u3").unwrap().index();
        let folk = f.tag_id("folk").unwrap().index();
        let r2 = f.resource_id("r2").unwrap().index();
        assert!(entries.contains(&(u3, folk, r2, 1.0)));
    }

    #[test]
    fn tag_resource_triples_match_figure3() {
        let f = figure2_example();
        let triples = f.tag_resource_triples();
        // Figure 3(a): (t1,r1,1), (t1,r2,3), (t2,r1,1), (t3,r3,2).
        let folk = f.tag_id("folk").unwrap().index();
        let people = f.tag_id("people").unwrap().index();
        let laptop = f.tag_id("laptop").unwrap().index();
        let r1 = f.resource_id("r1").unwrap().index();
        let r2 = f.resource_id("r2").unwrap().index();
        let r3 = f.resource_id("r3").unwrap().index();
        let mut expected = vec![
            (folk, r1, 1.0),
            (folk, r2, 3.0),
            (people, r1, 1.0),
            (laptop, r3, 2.0),
        ];
        let mut got = triples;
        let order = |a: &(usize, usize, f64), b: &(usize, usize, f64)| {
            a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.total_cmp(&b.2))
        };
        expected.sort_by(order);
        got.sort_by(order);
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_builder_produces_empty_store() {
        let f = FolksonomyBuilder::new().build();
        assert_eq!(f.num_users(), 0);
        assert_eq!(f.num_assignments(), 0);
        assert!(f.assignments().is_empty());
    }

    #[test]
    fn preregistered_entities_survive_without_assignments() {
        let mut b = FolksonomyBuilder::new();
        let lonely = b.intern_tag("lonely");
        b.add("u", "used", "r");
        let f = b.build();
        assert_eq!(f.num_tags(), 2);
        assert_eq!(f.tag_document_frequency(lonely), 0);
        assert!(f.tag_assignments(lonely).is_empty());
    }

    #[test]
    fn assignments_sorted_by_resource() {
        let f = figure2_example();
        let all = f.assignments();
        for w in all.windows(2) {
            assert!((w[0].resource, w[0].tag, w[0].user) <= (w[1].resource, w[1].tag, w[1].user));
        }
    }
}
