//! A simple string interner: names in, dense `u32` indexes out.
//!
//! Tags arrive as free-text strings from an uncontrolled vocabulary; all
//! algorithms want dense integer indexes. One interner instance backs each
//! of the three entity kinds in a [`crate::Folksonomy`].

use std::collections::HashMap;

/// Maps strings to dense indexes and back.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    names: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `name`, returning its (possibly pre-existing) index.
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(&idx) = self.lookup.get(name) {
            return idx as usize;
        }
        let idx = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), idx);
        idx as usize
    }

    /// Index of `name` if already interned.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.lookup.get(name).map(|&i| i as usize)
    }

    /// Name at `index`.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterator over `(index, name)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().enumerate().map(|(i, s)| (i, s.as_str()))
    }

    /// Builds an interner from a list of unique names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut interner = Interner::new();
        for n in names {
            interner.intern(n.as_ref());
        }
        interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("folk");
        let b = i.intern("people");
        let a2 = i.intern("folk");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_and_name() {
        let mut i = Interner::new();
        i.intern("laptop");
        assert_eq!(i.get("laptop"), Some(0));
        assert_eq!(i.get("missing"), None);
        assert_eq!(i.name(0), "laptop");
    }

    #[test]
    fn from_names_preserves_order() {
        let i = Interner::from_names(["a", "b", "c"]);
        let collected: Vec<&str> = i.iter().map(|(_, n)| n).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
        assert!(!i.is_empty());
    }

    #[test]
    fn duplicate_names_in_from_names_collapse() {
        let i = Interner::from_names(["x", "x", "y"]);
        assert_eq!(i.len(), 2);
    }
}
