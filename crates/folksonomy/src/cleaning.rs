//! Dataset cleaning, reproducing §VI-A of the paper:
//!
//! 1. remove system-generated tags (`system:imported`, `system:unfiled`, …);
//! 2. convert all tag letters to lowercase (merging tags that collide);
//! 3. iteratively delete every user, tag or resource that appears in fewer
//!    than `min_assignments` assignments (the paper uses 5) — deletions
//!    cascade, so the filter repeats until a fixed point.
//!
//! The raw → cleaned statistics this produces are what Table II reports.

use crate::ids::{ResourceId, TagId, UserId};
use crate::interner::Interner;
use crate::store::{Folksonomy, TagAssignment};

/// Options for [`clean`].
#[derive(Debug, Clone)]
pub struct CleaningConfig {
    /// Entities appearing in fewer assignments than this are removed
    /// (the paper uses 5; set to 0 or 1 to disable).
    pub min_assignments: usize,
    /// Remove tags with this prefix (the paper's "system-generated tags").
    /// Matched against the canonicalized name — i.e. *after* lowercasing
    /// when [`Self::lowercase_tags`] is on — so case variants like
    /// `System:imported` are caught too.
    pub system_tag_prefix: Option<String>,
    /// Lowercase all tag names, merging case variants.
    pub lowercase_tags: bool,
    /// Safety bound on fixed-point rounds.
    pub max_rounds: usize,
}

impl Default for CleaningConfig {
    fn default() -> Self {
        CleaningConfig {
            min_assignments: 5,
            system_tag_prefix: Some("system:".to_owned()),
            lowercase_tags: true,
            max_rounds: 64,
        }
    }
}

/// What [`clean`] did, with before/after statistics (Table II rows).
#[derive(Debug, Clone)]
pub struct CleaningReport {
    /// Statistics of the input dataset.
    pub raw: crate::store::FolksonomyStats,
    /// Statistics of the cleaned dataset.
    pub cleaned: crate::store::FolksonomyStats,
    /// Assignments dropped because their tag was system-generated.
    pub system_tag_assignments_removed: usize,
    /// Distinct tag names merged by lowercasing.
    pub tags_merged_by_case: usize,
    /// Fixed-point rounds of rare-entity removal executed.
    pub rounds: usize,
}

/// Runs the §VI-A cleaning pipeline, returning the cleaned dataset and a
/// report of what changed.
pub fn clean(input: &Folksonomy, config: &CleaningConfig) -> (Folksonomy, CleaningReport) {
    let raw_stats = input.stats();

    // Step 1 + 2: filter system tags, lowercase, re-intern tag names.
    let mut system_removed = 0usize;
    let mut tags_interner = Interner::new();
    let mut tag_remap: Vec<Option<TagId>> = Vec::with_capacity(input.num_tags());
    let mut distinct_before = 0usize;
    // With lowercasing on, both sides of the prefix match are
    // canonicalized, so a `System:`-configured prefix still matches.
    let system_prefix = config.system_tag_prefix.as_ref().map(|p| {
        if config.lowercase_tags {
            p.to_lowercase()
        } else {
            p.clone()
        }
    });
    for idx in 0..input.num_tags() {
        let name = input.tag_name(TagId::from_index(idx));
        let canonical = if config.lowercase_tags {
            name.to_lowercase()
        } else {
            name.to_owned()
        };
        // The prefix is matched against the *canonicalized* name: with
        // lowercasing on, `System:imported` / `SYSTEM:unfiled` are the same
        // system-generated tags as `system:imported` and must not survive
        // into the Table II statistics.
        if let Some(prefix) = &system_prefix {
            if canonical.starts_with(prefix.as_str()) {
                tag_remap.push(None);
                continue;
            }
        }
        distinct_before += 1;
        tag_remap.push(Some(TagId::from_index(tags_interner.intern(&canonical))));
    }
    let tags_merged_by_case = distinct_before - tags_interner.len();

    let mut assignments: Vec<TagAssignment> = Vec::with_capacity(input.num_assignments());
    for a in input.assignments() {
        match tag_remap[a.tag.index()] {
            Some(new_tag) => assignments.push(TagAssignment {
                user: a.user,
                tag: new_tag,
                resource: a.resource,
            }),
            None => system_removed += 1,
        }
    }
    // Lowercasing may have created duplicate triples.
    assignments.sort_unstable();
    assignments.dedup();

    // Step 3: iterated rare-entity removal until fixed point.
    let mut rounds = 0usize;
    if config.min_assignments > 1 {
        loop {
            rounds += 1;
            let mut user_counts = vec![0usize; input.num_users()];
            let mut tag_counts = vec![0usize; tags_interner.len()];
            let mut resource_counts = vec![0usize; input.num_resources()];
            for a in &assignments {
                user_counts[a.user.index()] += 1;
                tag_counts[a.tag.index()] += 1;
                resource_counts[a.resource.index()] += 1;
            }
            let before = assignments.len();
            assignments.retain(|a| {
                user_counts[a.user.index()] >= config.min_assignments
                    && tag_counts[a.tag.index()] >= config.min_assignments
                    && resource_counts[a.resource.index()] >= config.min_assignments
            });
            if assignments.len() == before || rounds >= config.max_rounds {
                break;
            }
        }
    }

    // Compact the id spaces: only entities that survive keep ids.
    let mut user_map: Vec<Option<UserId>> = vec![None; input.num_users()];
    let mut tag_map: Vec<Option<TagId>> = vec![None; tags_interner.len()];
    let mut resource_map: Vec<Option<ResourceId>> = vec![None; input.num_resources()];
    let mut users_out = Interner::new();
    let mut tags_out = Interner::new();
    let mut resources_out = Interner::new();
    let mut remapped: Vec<TagAssignment> = Vec::with_capacity(assignments.len());
    for a in &assignments {
        let u = *user_map[a.user.index()]
            .get_or_insert_with(|| UserId::from_index(users_out.intern(input.user_name(a.user))));
        let t = *tag_map[a.tag.index()].get_or_insert_with(|| {
            TagId::from_index(tags_out.intern(tags_interner.name(a.tag.index())))
        });
        let r = *resource_map[a.resource.index()].get_or_insert_with(|| {
            ResourceId::from_index(resources_out.intern(input.resource_name(a.resource)))
        });
        remapped.push(TagAssignment {
            user: u,
            tag: t,
            resource: r,
        });
    }

    let cleaned = Folksonomy::from_parts(users_out, tags_out, resources_out, remapped);
    let report = CleaningReport {
        raw: raw_stats,
        cleaned: cleaned.stats(),
        system_tag_assignments_removed: system_removed,
        tags_merged_by_case,
        rounds,
    };
    (cleaned, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FolksonomyBuilder;

    /// A dataset engineered so each cleaning step has visible work:
    /// a system tag, case variants, and a long tail of rare entities.
    fn noisy_dataset() -> Folksonomy {
        let mut b = FolksonomyBuilder::new();
        // A dense clique: 6 users x 1 tag x 6 resources = 36 assignments,
        // far above any threshold.
        for u in 0..6 {
            for r in 0..6 {
                b.add(&format!("user{u}"), "Music", &format!("res{r}"));
            }
        }
        // The same tag in different case, same clique → merges in.
        for u in 0..6 {
            b.add(&format!("user{u}"), "music", "res0");
        }
        // System tags sprinkled everywhere.
        for u in 0..6 {
            b.add(&format!("user{u}"), "system:imported", "res0");
        }
        // A rare user, tag and resource that must all be deleted.
        b.add("loner", "rare-tag", "rare-res");
        b.build()
    }

    #[test]
    fn default_pipeline_removes_noise() {
        let raw = noisy_dataset();
        let (cleaned, report) = clean(&raw, &CleaningConfig::default());
        // System tag gone.
        assert!(cleaned.tag_id("system:imported").is_none());
        assert_eq!(report.system_tag_assignments_removed, 6);
        // Case variants merged: only lowercase "music" remains.
        assert!(cleaned.tag_id("Music").is_none());
        assert!(cleaned.tag_id("music").is_some());
        assert_eq!(report.tags_merged_by_case, 1);
        // Rare entities removed.
        assert!(cleaned.user_id("loner").is_none());
        assert!(cleaned.tag_id("rare-tag").is_none());
        assert!(cleaned.resource_id("rare-res").is_none());
        // The clique survives.
        assert_eq!(cleaned.num_users(), 6);
        assert_eq!(cleaned.num_resources(), 6);
        assert_eq!(cleaned.num_tags(), 1);
        // Report stats are consistent.
        assert_eq!(report.raw.assignments, raw.num_assignments());
        assert_eq!(report.cleaned.assignments, cleaned.num_assignments());
        assert!(report.cleaned.assignments < report.raw.assignments);
    }

    #[test]
    fn mixed_case_system_tags_are_removed() {
        // Regression: the prefix filter used to run *before* lowercasing,
        // so `System:imported` / `SYSTEM:unfiled` survived the pipeline
        // (as `system:imported` / `system:unfiled`!) and polluted the
        // Table II statistics.
        let mut b = FolksonomyBuilder::new();
        for u in 0..6 {
            for r in 0..6 {
                b.add(&format!("user{u}"), "music", &format!("res{r}"));
            }
            b.add(&format!("user{u}"), "System:imported", "res0");
            b.add(&format!("user{u}"), "SYSTEM:unfiled", "res1");
            b.add(&format!("user{u}"), "system:tagged", "res2");
        }
        let raw = b.build();
        let (cleaned, report) = clean(&raw, &CleaningConfig::default());
        assert_eq!(cleaned.num_tags(), 1, "only `music` may survive");
        assert!(cleaned.tag_id("music").is_some());
        for ghost in ["system:imported", "system:unfiled", "system:tagged"] {
            assert!(
                cleaned.tag_id(ghost).is_none(),
                "{ghost} must not survive cleaning"
            );
        }
        assert_eq!(report.system_tag_assignments_removed, 18);
        // System tags are not "merged case variants".
        assert_eq!(report.tags_merged_by_case, 0);

        // A capitalized prefix *config* is canonicalized too: with
        // lowercasing on, `System:` must behave exactly like `system:`.
        let cfg = CleaningConfig {
            system_tag_prefix: Some("System:".to_owned()),
            ..Default::default()
        };
        let (cleaned2, report2) = clean(&raw, &cfg);
        assert_eq!(cleaned2.num_tags(), 1);
        assert_eq!(report2.system_tag_assignments_removed, 18);
    }

    #[test]
    fn uppercase_system_tags_survive_without_lowercasing() {
        // With lowercasing disabled the canonical name *is* the raw name,
        // so only exact-prefix matches are system tags.
        let mut b = FolksonomyBuilder::new();
        b.add("u", "System:imported", "r");
        b.add("u", "system:imported", "r");
        let raw = b.build();
        let cfg = CleaningConfig {
            min_assignments: 0,
            lowercase_tags: false,
            ..Default::default()
        };
        let (cleaned, report) = clean(&raw, &cfg);
        assert!(cleaned.tag_id("System:imported").is_some());
        assert!(cleaned.tag_id("system:imported").is_none());
        assert_eq!(report.system_tag_assignments_removed, 1);
    }

    #[test]
    fn lowercase_merge_dedupes_assignments() {
        // "Music"/"music" on the same (user, resource) must collapse to one
        // assignment after canonicalization.
        let mut b = FolksonomyBuilder::new();
        for r in 0..5 {
            b.add("u0", "Tag", &format!("r{r}"));
            b.add("u0", "tag", &format!("r{r}"));
        }
        let raw = b.build();
        assert_eq!(raw.num_assignments(), 10);
        let cfg = CleaningConfig {
            min_assignments: 0,
            ..Default::default()
        };
        let (cleaned, _) = clean(&raw, &cfg);
        assert_eq!(cleaned.num_tags(), 1);
        assert_eq!(cleaned.num_assignments(), 5);
    }

    #[test]
    fn cascade_removal_reaches_fixed_point() {
        // A chain where removing one rare entity makes another rare:
        // user "a" has 5 assignments only via resource "x"; resource "x"
        // has 5 assignments only via user "a"; tag "t" is shared and big.
        let mut b = FolksonomyBuilder::new();
        for i in 0..5 {
            b.add("a", &format!("t{i}"), "x");
        }
        // Each t{i} otherwise appears 4 times elsewhere (just below 5 after
        // losing the "a" assignment).
        for i in 0..5 {
            for j in 0..4 {
                b.add(&format!("u{i}-{j}"), &format!("t{i}"), &format!("r{i}-{j}"));
            }
        }
        let raw = b.build();
        let cfg = CleaningConfig {
            min_assignments: 5,
            system_tag_prefix: None,
            lowercase_tags: false,
            max_rounds: 64,
        };
        let (cleaned, report) = clean(&raw, &cfg);
        // Everything unravels: users u* have 1 assignment each, resources
        // r* have 1 each, so the whole long tail disappears, which then
        // drops t{i} below threshold, which kills "a"/"x" too.
        assert_eq!(cleaned.num_assignments(), 0);
        assert!(
            report.rounds >= 2,
            "expected cascading rounds, got {}",
            report.rounds
        );
    }

    #[test]
    fn clean_is_idempotent() {
        let raw = noisy_dataset();
        let (once, _) = clean(&raw, &CleaningConfig::default());
        let (twice, report) = clean(&once, &CleaningConfig::default());
        assert_eq!(once.stats(), twice.stats());
        assert_eq!(report.system_tag_assignments_removed, 0);
        assert_eq!(report.tags_merged_by_case, 0);
    }

    #[test]
    fn disabled_steps_are_noops() {
        let raw = noisy_dataset();
        let cfg = CleaningConfig {
            min_assignments: 0,
            system_tag_prefix: None,
            lowercase_tags: false,
            max_rounds: 8,
        };
        let (cleaned, report) = clean(&raw, &cfg);
        assert_eq!(cleaned.stats(), raw.stats());
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn ids_are_compacted_after_cleaning() {
        let raw = noisy_dataset();
        let (cleaned, _) = clean(&raw, &CleaningConfig::default());
        // Every id in range must resolve to a name and appear in >= 1
        // assignment (no orphan ids).
        for t in 0..cleaned.num_tags() {
            assert!(!cleaned.tag_assignments(TagId::from_index(t)).is_empty());
        }
        for r in 0..cleaned.num_resources() {
            assert!(!cleaned
                .resource_assignments(ResourceId::from_index(r))
                .is_empty());
        }
    }
}
