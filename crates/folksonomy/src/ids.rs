//! Typed entity identifiers.
//!
//! Users, tags and resources live in three unrelated index spaces; newtyped
//! `u32` ids keep them from being mixed up at compile time while staying
//! 4 bytes each — the id-heavy posting lists dominate the store's memory.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs the id from a raw index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a user (tagger) — mode 1 of the tensor.
    UserId,
    "u"
);
define_id!(
    /// Identifier of a tag — mode 2 of the tensor.
    TagId,
    "t"
);
define_id!(
    /// Identifier of a resource — mode 3 of the tensor.
    ResourceId,
    "r"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let u = UserId::from_index(3);
        assert_eq!(u.index(), 3);
        assert_eq!(u.to_string(), "u3");
        assert_eq!(TagId(7).to_string(), "t7");
        assert_eq!(ResourceId(0).to_string(), "r0");
        assert_eq!(usize::from(TagId(9)), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TagId(1) < TagId(2));
        assert_eq!(UserId(5), UserId(5));
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<UserId>(), 4);
        assert_eq!(std::mem::size_of::<TagId>(), 4);
        assert_eq!(std::mem::size_of::<ResourceId>(), 4);
    }
}
