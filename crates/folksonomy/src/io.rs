//! Plain-text import/export of tag assignments.
//!
//! Real social-tagging dumps (the Delicious/Bibsonomy crawls the paper
//! uses, public BibSonomy dumps, Last.fm API exports) are line-oriented
//! `user <TAB> tag <TAB> resource` files. This module reads and writes
//! that format so the library runs on real data, not just the synthetic
//! generator.
//!
//! Format rules:
//! * one assignment per line: `user\ttag\tresource`;
//! * empty lines and lines starting with `#` are skipped;
//! * duplicate triples collapse (assignments form a set, §IV-A);
//! * any extra tab-separated columns (timestamps etc.) are ignored.

use crate::store::{Folksonomy, FolksonomyBuilder};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors raised by the TSV reader.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line had fewer than three columns.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// The offending content (truncated).
        content: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::MalformedLine { line, content } => {
                write!(
                    f,
                    "line {line}: expected 'user<TAB>tag<TAB>resource', got {content:?}"
                )
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a folksonomy from `user\ttag\tresource` lines.
pub fn read_tsv(reader: impl BufRead) -> Result<Folksonomy, IoError> {
    let mut builder = FolksonomyBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (user, tag, resource) = match (parts.next(), parts.next(), parts.next()) {
            (Some(u), Some(t), Some(r)) if !u.is_empty() && !t.is_empty() && !r.is_empty() => {
                (u, t, r)
            }
            _ => {
                return Err(IoError::MalformedLine {
                    line: idx + 1,
                    content: trimmed.chars().take(80).collect(),
                })
            }
        };
        builder.add(user, tag, resource);
    }
    Ok(builder.build())
}

/// Reads a folksonomy from a TSV file on disk.
pub fn read_tsv_file(path: impl AsRef<std::path::Path>) -> Result<Folksonomy, IoError> {
    let file = std::fs::File::open(path)?;
    read_tsv(std::io::BufReader::new(file))
}

/// Writes the assignment set as sorted `user\ttag\tresource` lines.
pub fn write_tsv(f: &Folksonomy, mut writer: impl Write) -> Result<(), IoError> {
    for a in f.assignments() {
        writeln!(
            writer,
            "{}\t{}\t{}",
            f.user_name(a.user),
            f.tag_name(a.tag),
            f.resource_name(a.resource)
        )?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::figure2_example;

    #[test]
    fn round_trip_preserves_the_assignment_set() {
        let original = figure2_example();
        let mut buf = Vec::new();
        write_tsv(&original, &mut buf).unwrap();
        let parsed = read_tsv(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(parsed.stats(), original.stats());
        // Same triples by name.
        for a in original.assignments() {
            let u = parsed.user_id(original.user_name(a.user)).unwrap();
            let t = parsed.tag_id(original.tag_name(a.tag)).unwrap();
            let r = parsed
                .resource_id(original.resource_name(a.resource))
                .unwrap();
            assert!(parsed
                .resource_assignments(r)
                .iter()
                .any(|b| b.user == u && b.tag == t));
        }
    }

    #[test]
    fn comments_blanks_and_extra_columns_are_tolerated() {
        let input = "# a comment\n\
                     u1\tfolk\tr1\textra-col\t2011-04-11\n\
                     \n\
                     u1\tfolk\tr1\n";
        let f = read_tsv(std::io::Cursor::new(input)).unwrap();
        assert_eq!(f.num_assignments(), 1, "duplicates collapse");
        assert_eq!(f.num_users(), 1);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let input = "u1\tfolk\tr1\njust-one-column\n";
        let err = read_tsv(std::io::Cursor::new(input)).unwrap_err();
        match err {
            IoError::MalformedLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
        assert!(read_tsv(std::io::Cursor::new("a\t\tb\n")).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cubelsi_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fixture.tsv");
        let original = figure2_example();
        write_tsv(&original, std::fs::File::create(&path).unwrap()).unwrap();
        let parsed = read_tsv_file(&path).unwrap();
        assert_eq!(parsed.stats(), original.stats());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_tsv_file("/definitely/not/here.tsv").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("I/O error"));
    }
}
