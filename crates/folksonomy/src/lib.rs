//! The social-tagging data model (§IV-A of the CubeLSI paper).
//!
//! A folksonomy is the 4-tuple `(U, T, R, Y)`: a set of users (taggers), a
//! set of tags, a set of resources, and a *set* of tag assignments
//! `Y ⊆ U × T × R`, where `(u, t, r) ∈ Y` means user `u` annotated resource
//! `r` with tag `t`.
//!
//! This crate provides:
//!
//! * typed ids and string interning ([`ids`], [`interner`]);
//! * the [`Folksonomy`] store with the per-entity indexes every ranking
//!   method in the evaluation needs (posting lists, aggregate counts,
//!   tensor/matrix export);
//! * the dataset cleaning pipeline of §VI-A ([`cleaning`]): system-tag
//!   removal, lowercasing, and iterative removal of rare entities —
//!   reproducing the raw → cleaned transition of Table II.

pub mod cleaning;
pub mod ids;
pub mod interner;
pub mod io;
pub mod store;

pub use cleaning::{clean, CleaningConfig, CleaningReport};
pub use ids::{ResourceId, TagId, UserId};
pub use interner::Interner;
pub use io::{read_tsv, read_tsv_file, write_tsv, IoError};
pub use store::{Folksonomy, FolksonomyBuilder, FolksonomyStats, TagAssignment};
