//! Per-query online latency of every ranking method — the microscopic view
//! of Table VI (CubeLSI's cosine matching vs FolkRank's power iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use cubelsi_baselines::{
    BowRanker, CubeSim, CubeSimMode, FolkRank, FolkRankConfig, FreqRanker, LsiConfig, LsiRanker,
    Ranker,
};
use cubelsi_core::{CubeLsi, CubeLsiConfig};
use cubelsi_datagen::{generate, GeneratorConfig};
use cubelsi_folksonomy::TagId;
use std::hint::black_box;

fn bench_query_latency(c: &mut Criterion) {
    let ds = generate(&GeneratorConfig {
        users: 300,
        resources: 250,
        concepts: 12,
        assignments: 15_000,
        seed: 23,
        ..Default::default()
    });
    let f = &ds.folksonomy;

    let cubelsi = CubeLsi::build(
        f,
        &CubeLsiConfig {
            core_dims: Some((16, 16, 16)),
            num_concepts: Some(12),
            max_als_iters: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let folkrank = FolkRank::build(f, &FolkRankConfig::default());
    let freq = FreqRanker::build(f);
    let bow = BowRanker::build(f);
    let lsi = LsiRanker::build(
        f,
        &LsiConfig {
            rank: Some(16),
            num_concepts: Some(12),
            ..Default::default()
        },
    )
    .unwrap();
    let cubesim = CubeSim::build(
        f,
        &cubelsi_baselines::cubesim::CubeSimConfig {
            mode: CubeSimMode::SparseOptimized,
            num_concepts: Some(12),
            ..Default::default()
        },
    )
    .unwrap();

    // A 3-tag query over frequent tags.
    let query: Vec<TagId> = (0..3).map(TagId::from_index).collect();

    let cubelsi_ranker = cubelsi_baselines::CubeLsiRanker(cubelsi);
    let mut group = c.benchmark_group("query_latency");
    let rankers: Vec<(&str, &dyn Ranker)> = vec![
        ("CubeLSI", &cubelsi_ranker),
        ("FolkRank", &folkrank),
        ("Freq", &freq),
        ("BOW", &bow),
        ("LSI", &lsi),
        ("CubeSim", &cubesim),
    ];
    for (name, ranker) in rankers {
        group.bench_function(name, |bencher| {
            bencher.iter(|| black_box(ranker.search_ids(&query, 20)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_latency);
criterion_main!(benches);
